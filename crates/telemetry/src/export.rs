//! Periodic snapshot export.
//!
//! A [`PeriodicExporter`] samples a [`Registry`] on a fixed interval
//! from a background thread and hands each [`TelemetrySnapshot`] to a
//! caller-supplied sink (write a file, append a trajectory, push over
//! a socket). The exporter takes one final snapshot on shutdown, so a
//! short-lived process still exports its end state.

use crate::registry::Registry;
use crate::snapshot::TelemetrySnapshot;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Background snapshot pump. Stops (and flushes a final snapshot) on
/// [`PeriodicExporter::stop`] or drop.
pub struct PeriodicExporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl PeriodicExporter {
    /// Spawns an exporter sampling `registry` every `interval`.
    pub fn spawn(
        registry: Arc<Registry>,
        interval: Duration,
        mut sink: impl FnMut(TelemetrySnapshot) + Send + 'static,
    ) -> PeriodicExporter {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("gp-telemetry-export".into())
            .spawn(move || {
                // Sleep in small slices so stop() returns promptly even
                // with a long interval.
                let slice = interval
                    .min(Duration::from_millis(20))
                    .max(Duration::from_millis(1));
                let mut elapsed = Duration::ZERO;
                while !stop_flag.load(Ordering::Acquire) {
                    std::thread::sleep(slice);
                    elapsed += slice;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        sink(registry.snapshot());
                    }
                }
                sink(registry.snapshot());
            })
            .expect("spawn telemetry exporter thread");
        PeriodicExporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the exporter, flushing one final snapshot to the sink.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PeriodicExporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn exporter_flushes_final_snapshot_on_stop() {
        let registry = Arc::new(Registry::new());
        registry.counter("ticks").add(3);
        let seen: Arc<Mutex<Vec<TelemetrySnapshot>>> = Arc::default();
        let sink = seen.clone();
        let exporter = PeriodicExporter::spawn(
            registry.clone(),
            Duration::from_secs(3600), // never fires on its own
            move |snap| sink.lock().unwrap().push(snap),
        );
        exporter.stop();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1, "exactly the final flush");
        assert_eq!(seen[0].counters.get("ticks"), Some(&3));
    }

    #[test]
    fn exporter_samples_periodically() {
        let registry = Arc::new(Registry::new());
        let seen: Arc<Mutex<usize>> = Arc::default();
        let sink = seen.clone();
        let exporter = PeriodicExporter::spawn(registry, Duration::from_millis(5), move |_| {
            *sink.lock().unwrap() += 1;
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while *seen.lock().unwrap() < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        exporter.stop();
        assert!(*seen.lock().unwrap() >= 3, "periodic ticks fired");
    }
}
