//! Named metric registration.
//!
//! A [`Registry`] hands out `Arc` handles to counters, gauges, and
//! atomic histograms keyed by a dotted name (`"serve.stage.inference"`,
//! `"net.accepted"`, `"pool.jobs"`). Handles are cheap to clone and
//! record through relaxed atomics; the registry itself is only locked
//! at registration and snapshot time, never on the hot path.
//!
//! All GesturePrint subsystems publish into one registry owned by the
//! serve engine: gp-serve registers its stage histograms, gp-net its
//! connection counters, gp-runtime its pool utilization — which is
//! what makes a single [`TelemetrySnapshot`](crate::TelemetrySnapshot)
//! the whole story.

use crate::hist::{AtomicHistogram, Histogram};
use crate::snapshot::TelemetrySnapshot;
use gp_codec::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depths, busy workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Tables {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<AtomicHistogram>>,
    attrs: BTreeMap<String, Value>,
}

/// The shared metric namespace.
#[derive(Default)]
pub struct Registry {
    tables: Mutex<Tables>,
}

// A poisoned registry mutex means a panic mid-registration; the tables
// themselves are always structurally valid, so recording must go on.
fn lock(tables: &Mutex<Tables>) -> MutexGuard<'_, Tables> {
    tables.lock().unwrap_or_else(|p| p.into_inner())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut t = lock(&self.tables);
        t.counters.entry(name.to_owned()).or_default().clone()
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut t = lock(&self.tables);
        t.gauges.entry(name.to_owned()).or_default().clone()
    }

    /// Returns (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        let mut t = lock(&self.tables);
        t.histograms.entry(name.to_owned()).or_default().clone()
    }

    /// Attaches a free-form attribute (workload shape, config echo)
    /// carried verbatim into every snapshot.
    pub fn set_attr(&self, name: &str, value: Value) {
        let mut t = lock(&self.tables);
        t.attrs.insert(name.to_owned(), value);
    }

    /// Materialises the current state of every registered metric.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let t = lock(&self.tables);
        let mut snap = TelemetrySnapshot::new();
        for (name, c) in &t.counters {
            snap.counters.insert(name.clone(), c.get());
        }
        for (name, g) in &t.gauges {
            snap.gauges.insert(name.clone(), g.get());
        }
        for (name, h) in &t.histograms {
            let h: Histogram = h.snapshot();
            snap.histograms.insert(name.clone(), h);
        }
        snap.attrs = t.attrs.clone();
        snap
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = lock(&self.tables);
        f.debug_struct("Registry")
            .field("counters", &t.counters.len())
            .field("gauges", &t.gauges.len())
            .field("histograms", &t.histograms.len())
            .field("attrs", &t.attrs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_carries_all_metric_kinds() {
        let reg = Registry::new();
        reg.counter("c").add(7);
        reg.gauge("g").set(-2);
        reg.histogram("h").record(1500);
        reg.set_attr("shape", Value::Str("8x200".into()));
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("c"), Some(&7));
        assert_eq!(snap.gauges.get("g"), Some(&-2));
        assert_eq!(snap.histograms.get("h").map(|h| h.count()), Some(1));
        assert_eq!(snap.attrs.get("shape"), Some(&Value::Str("8x200".into())));
    }

    #[test]
    fn gauge_add_sub_roundtrip() {
        let g = Gauge::default();
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
    }
}
