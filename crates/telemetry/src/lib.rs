//! # gp-telemetry
//!
//! The unified observability layer for the GesturePrint serving stack:
//! one metric namespace, bounded-memory latency histograms, and a
//! versioned export format — with no dependencies beyond `gp-codec`.
//!
//! Three pieces:
//!
//! - **Metrics** ([`Registry`], [`Counter`], [`Gauge`],
//!   [`AtomicHistogram`]): named registration hands out `Arc` handles
//!   that record through relaxed atomics; the registry is locked only
//!   at registration and snapshot time. [`Histogram`] is the plain
//!   mergeable variant — per-octave log-linear buckets (≤25% relative
//!   error, exact `min`/`max`), exact bucket-wise [`Histogram::merge`],
//!   fixed [`hist::BUCKETS`]-sized memory.
//! - **Spans** ([`SpanId`]): a lightweight id minted at frame ingest
//!   and threaded through the serve pipeline so the per-stage
//!   histograms (`admission_wait → segmentation → queue_wait →
//!   inference → publish`) decompose one result's end-to-end latency.
//! - **Export** ([`TelemetrySnapshot`], [`PeriodicExporter`]): a
//!   versioned, deterministic, sparsely-encoded snapshot of the whole
//!   registry — the payload behind `BENCH_*.json` trajectory
//!   artifacts, the gp-net `StatsQuery` reply, and the soak test's
//!   tier-2 upload.

pub mod export;
pub mod hist;
pub mod registry;
pub mod snapshot;

pub use export::PeriodicExporter;
pub use hist::{AtomicHistogram, Histogram};
pub use registry::{Counter, Gauge, Registry};
pub use snapshot::{TelemetrySnapshot, TELEMETRY_SCHEMA_VERSION};

/// A stage-tracing span id: minted once per admitted frame at ingest,
/// carried through segmentation, the batch queue, inference, and
/// result publish so a result can be correlated back to the frame that
/// triggered it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "span-{}", self.0)
    }
}
