//! Fixed-bucket log-linear latency histograms.
//!
//! Values are microsecond magnitudes (`u64`). The bucket layout is
//! log-linear: each power-of-two octave is split into
//! `2^SUB_BITS = 4` equal sub-buckets, so the bucket upper bound is
//! never more than 25% above the true value. That bound is what makes
//! the histogram a safe percentile source: [`Histogram::percentile`]
//! reports a bucket's *upper* bound, so it never under-reports a
//! latency quantile.
//!
//! Unlike the sample-ring reservoir this replaces, histograms **merge
//! exactly** — merging is bucket-wise addition, so an aggregate over
//! evicted sessions weighs every sample once, regardless of order or
//! volume. Memory is bounded: [`BUCKETS`] counters, no per-sample
//! storage.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS`
/// linear sub-buckets (relative error ≤ `1 / 2^SUB_BITS`).
pub const SUB_BITS: u32 = 2;
const BASE: u64 = 1 << SUB_BITS; // sub-buckets per octave

/// Number of octaves above the exact range before saturation.
const OCTAVES: usize = 36;

/// Total bucket count. Values `0..BASE` get exact buckets; each of the
/// [`OCTAVES`] octaves above that gets `BASE` sub-buckets; everything
/// past the last octave saturates into the top bucket.
pub const BUCKETS: usize = BASE as usize * (OCTAVES + 1);

/// Smallest value that saturates into the top bucket — the top
/// bucket's natural lower bound (~67 hours in µs); everything at or
/// above it shares that bucket.
pub const SATURATION: u64 = (2 * BASE - 1) << (OCTAVES - 1);

/// Maps a microsecond value to its bucket index.
pub fn bucket_index(value: u64) -> usize {
    if value < BASE {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // value >= BASE, so exp >= SUB_BITS
    let octave = (exp - SUB_BITS) as usize;
    let sub = ((value >> (exp - SUB_BITS)) - BASE) as usize;
    let index = BASE as usize * (octave + 1) + sub;
    index.min(BUCKETS - 1)
}

/// Inclusive `[lower, upper]` value range of a bucket. The top bucket's
/// upper bound is `u64::MAX` (it absorbs everything past saturation).
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    let i = index as u64;
    if i < BASE {
        return (i, i);
    }
    let octave = (i - BASE) / BASE;
    let sub = (i - BASE) % BASE;
    let lower = (BASE + sub) << octave;
    if index == BUCKETS - 1 {
        return (lower, u64::MAX);
    }
    (lower, lower + (1 << octave) - 1)
}

/// A mergeable log-linear histogram of microsecond latencies.
///
/// Plain (non-atomic) variant: the right shape for per-session state
/// that already lives behind a lock, and for decoded snapshots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one microsecond value.
    pub fn record(&mut self, micros: u64) {
        self.counts[bucket_index(micros)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(micros);
        self.min = self.min.min(micros);
        self.max = self.max.max(micros);
    }

    /// Records a [`Duration`] at microsecond resolution.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Merges another histogram into this one. Exact: bucket-wise
    /// addition, no sample is reweighed or dropped.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values, µs (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest recorded value, µs.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest recorded value, µs.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values, µs.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`), µs.
    ///
    /// Returns the upper bound of the bucket holding the rank-`r`
    /// sample, `r = round(p/100 · (count-1))` — the same nearest-rank
    /// convention the old sorted-vec reservoir used, so quantiles never
    /// under-report. The exact tracked `max` caps the answer, so the
    /// top of the distribution is reported exactly.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = (p / 100.0 * (self.count - 1) as f64).round() as u64;
        // The extreme ranks are the tracked exact min/max.
        if rank == 0 {
            return Some(self.min);
        }
        if rank == self.count - 1 {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                // The bucket holds >= 1 sample, so `max` >= its lower
                // bound: clamping by the exact max stays in range.
                let (_, upper) = bucket_bounds(i);
                return Some(upper.min(self.max));
            }
        }
        Some(self.max)
    }

    /// [`Histogram::percentile`] as a [`Duration`].
    pub fn percentile_duration(&self, p: f64) -> Option<Duration> {
        self.percentile(p).map(Duration::from_micros)
    }

    /// Iterates non-empty buckets as `(index, count)` pairs (the sparse
    /// wire representation).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Reconstructs a histogram from its sparse parts (decoder side).
    ///
    /// `min`/`max` of an empty histogram are normalised so that
    /// decode(encode(h)) == h holds structurally.
    pub fn from_parts(
        buckets: impl IntoIterator<Item = (usize, u64)>,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Option<Histogram> {
        let mut h = Histogram::new();
        for (i, c) in buckets {
            if i >= BUCKETS {
                return None;
            }
            h.counts[i] += c;
            h.count = h.count.checked_add(c)?;
        }
        if h.count > 0 {
            h.sum = sum;
            h.min = min;
            h.max = max;
        }
        Some(h)
    }
}

/// Lock-free histogram for concurrent recording: the shape handed out
/// by the registry to hot paths. `record` is a few relaxed atomic RMW
/// ops; [`AtomicHistogram::snapshot`] materialises a plain
/// [`Histogram`] for percentile queries and export.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram::default()
    }

    /// Records one microsecond value (relaxed atomics; counts converge
    /// without ordering guarantees between buckets).
    pub fn record(&self, micros: u64) {
        self.counts[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.min.fetch_min(micros, Ordering::Relaxed);
        self.max.fetch_max(micros, Ordering::Relaxed);
    }

    /// Records a [`Duration`] at microsecond resolution.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Materialises a plain [`Histogram`] copy. Concurrent recorders
    /// may land between field loads, so the snapshot is a consistent
    /// *approximation* during writes and exact once writers quiesce.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (dst, src) in h.counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.count = h.counts.iter().sum();
        h.sum = self.sum.load(Ordering::Relaxed);
        h.min = self.min.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        if h.count == 0 {
            h.min = u64::MAX;
            h.max = 0;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_range_buckets_are_exact() {
        for v in 0..BASE {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_tile_the_line() {
        // Every bucket's lower bound is the previous bucket's upper
        // bound + 1: no gaps, no overlaps.
        for i in 1..BUCKETS {
            let (lo, _) = bucket_bounds(i);
            let (_, prev_hi) = bucket_bounds(i - 1);
            assert_eq!(lo, prev_hi + 1, "bucket {i} does not tile");
        }
    }

    #[test]
    fn bounds_contain_their_values() {
        for v in [0, 1, 3, 4, 5, 7, 8, 100, 1000, 999_999, 1 << 30, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Below saturation the bucket upper bound is within 25% of the
        // true value (1 / 2^SUB_BITS).
        for shift in 0..30 {
            for off in [0u64, 1, 17] {
                let v = (1u64 << shift) + off;
                let (_, hi) = bucket_bounds(bucket_index(v));
                assert!((hi - v) as f64 <= 0.25 * v as f64, "error too big at {v}");
            }
        }
    }

    #[test]
    fn saturation_lands_in_top_bucket() {
        assert_eq!(bucket_index(SATURATION), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(SATURATION - 1), BUCKETS - 2);
        let (_, hi) = bucket_bounds(BUCKETS - 1);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn percentile_uses_exact_min_max() {
        let mut h = Histogram::new();
        h.record(999); // bucket upper bound would be 1023
        assert_eq!(h.percentile(0.0), Some(999));
        assert_eq!(h.percentile(100.0), Some(999));
        h.record(1_000_001);
        assert_eq!(h.percentile(100.0), Some(1_000_001));
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1u64, 5, 5, 900, 40_000] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 900, 7_000_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.count(), 8);
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn sparse_roundtrip_preserves_everything() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 4, 77, 1 << 20, SATURATION + 9] {
            h.record(v);
        }
        let parts: Vec<_> = h.nonzero_buckets().collect();
        let back =
            Histogram::from_parts(parts, h.sum(), h.min().unwrap(), h.max().unwrap()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn from_parts_rejects_out_of_range_buckets() {
        assert!(Histogram::from_parts([(BUCKETS, 1)], 0, 0, 0).is_none());
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let a = AtomicHistogram::new();
        let mut p = Histogram::new();
        for v in [9u64, 81, 729, 6561] {
            a.record(v);
            p.record(v);
        }
        assert_eq!(a.snapshot(), p);
        assert_eq!(a.count(), 4);
    }
}
