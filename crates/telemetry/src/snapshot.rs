//! Versioned, exportable snapshots of a [`Registry`](crate::Registry).
//!
//! A [`TelemetrySnapshot`] is the single export format for GesturePrint
//! observability: benches write it (wrapped in the gp-codec `Artifact`
//! envelope) as `BENCH_*.json` trajectory artifacts, the socket server
//! answers `StatsQuery` with it, and the soak test dumps one for CI to
//! upload. The schema is versioned independently of the artifact
//! envelope: decoders accept any snapshot up to their own
//! [`TELEMETRY_SCHEMA_VERSION`] and reject newer ones with a typed
//! error, mirroring the artifact-layer policy.
//!
//! Histograms travel sparsely — `[bucket_index, count]` pairs plus the
//! exact `count/sum/min/max` — so an idle registry costs bytes
//! proportional to what it observed, not to [`crate::hist::BUCKETS`].

use crate::hist::Histogram;
use gp_codec::{Decode, DecodeError, Encode, Value};
use std::collections::BTreeMap;

/// Current snapshot schema version. Bump on any breaking layout
/// change; additive fields ride on the same version (absent fields
/// decode to defaults, the workspace-wide compatibility idiom).
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// A point-in-time export of every registered metric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Schema version the producer wrote ([`TELEMETRY_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous gauges by name.
    pub gauges: BTreeMap<String, i64>,
    /// Latency histograms by name (µs).
    pub histograms: BTreeMap<String, Histogram>,
    /// Free-form producer attributes (workload shape, config echo).
    pub attrs: BTreeMap<String, Value>,
}

impl TelemetrySnapshot {
    /// An empty snapshot stamped with the current schema version.
    pub fn new() -> Self {
        TelemetrySnapshot {
            schema_version: TELEMETRY_SCHEMA_VERSION,
            ..TelemetrySnapshot::default()
        }
    }

    /// Serialises to deterministic gp-codec JSON.
    pub fn to_json(&self) -> String {
        gp_codec::to_json(&self.encode()).expect("snapshots are finite and shallow")
    }

    /// Parses a snapshot from gp-codec JSON.
    pub fn from_json(text: &str) -> Result<Self, DecodeError> {
        gp_codec::decode_from_json(text)
    }

    /// Renders the histograms whose names start with `prefix` as an
    /// aligned `name count p50 p99 max` table (µs→ms formatting), the
    /// shared final-report shape for examples and benches.
    pub fn render_table(&self, prefix: &str) -> String {
        let rows: Vec<(&str, &Histogram)> = self
            .histograms
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(name, h)| (name.as_str(), h))
            .collect();
        let name_w = rows
            .iter()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(5)
            .max("stage".len());
        let ms = |us: Option<u64>| match us {
            Some(us) => format!("{:.3}", us as f64 / 1000.0),
            None => "-".into(),
        };
        let mut out = format!(
            "{:<name_w$}  {:>9}  {:>10}  {:>10}  {:>10}\n",
            "stage", "count", "p50 ms", "p99 ms", "max ms"
        );
        for (name, h) in rows {
            out.push_str(&format!(
                "{:<name_w$}  {:>9}  {:>10}  {:>10}  {:>10}\n",
                name,
                h.count(),
                ms(h.percentile(50.0)),
                ms(h.percentile(99.0)),
                ms(h.max()),
            ));
        }
        out
    }
}

fn encode_histogram(h: &Histogram) -> Value {
    let buckets: Vec<Value> = h
        .nonzero_buckets()
        .map(|(i, c)| Value::Seq(vec![(i as u64).encode(), c.encode()]))
        .collect();
    Value::record([
        ("buckets", Value::Seq(buckets)),
        ("count", h.count().encode()),
        ("sum", h.sum().encode()),
        ("min", h.min().unwrap_or(0).encode()),
        ("max", h.max().unwrap_or(0).encode()),
    ])
}

fn decode_histogram(value: &Value) -> Result<Histogram, DecodeError> {
    let rows = value.field("buckets")?.as_seq()?;
    let mut buckets = Vec::with_capacity(rows.len());
    for row in rows {
        let row = row.as_seq()?;
        if row.len() != 2 {
            return Err(DecodeError::new(
                "histogram bucket rows are [index, count] pairs",
            ));
        }
        let index = u64::decode(&row[0])? as usize;
        let count = u64::decode(&row[1])?;
        buckets.push((index, count));
    }
    let sum: u64 = value.get("sum")?;
    let min: u64 = value.get("min")?;
    let max: u64 = value.get("max")?;
    let h = Histogram::from_parts(buckets, sum, min, max)
        .ok_or_else(|| DecodeError::new("histogram bucket index out of range"))?;
    let count: u64 = value.get("count")?;
    if count != h.count() {
        return Err(DecodeError::new(format!(
            "histogram count {count} disagrees with bucket total {}",
            h.count()
        )));
    }
    Ok(h)
}

fn encode_string_map<F: Fn(&str, &V) -> Value, V>(map: &BTreeMap<String, V>, f: F) -> Value {
    Value::Map(
        map.iter()
            .map(|(name, v)| (name.clone(), f(name, v)))
            .collect(),
    )
}

impl Encode for TelemetrySnapshot {
    fn encode(&self) -> Value {
        Value::record([
            ("schema_version", self.schema_version.encode()),
            (
                "counters",
                encode_string_map(&self.counters, |_, c| c.encode()),
            ),
            ("gauges", encode_string_map(&self.gauges, |_, g| g.encode())),
            (
                "histograms",
                encode_string_map(&self.histograms, |_, h| encode_histogram(h)),
            ),
            ("attrs", Value::Map(self.attrs.clone())),
        ])
    }
}

impl Decode for TelemetrySnapshot {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        let schema_version: u32 = value.get("schema_version")?;
        if schema_version > TELEMETRY_SCHEMA_VERSION {
            return Err(DecodeError::new(format!(
                "telemetry snapshot schema v{schema_version} is newer than supported v{TELEMETRY_SCHEMA_VERSION}"
            )));
        }
        let mut snap = TelemetrySnapshot {
            schema_version,
            ..TelemetrySnapshot::default()
        };
        for (name, v) in value.field("counters")?.as_map()? {
            snap.counters
                .insert(name.clone(), u64::decode(v).map_err(|e| e.in_field(name))?);
        }
        for (name, v) in value.field("gauges")?.as_map()? {
            snap.gauges
                .insert(name.clone(), i64::decode(v).map_err(|e| e.in_field(name))?);
        }
        for (name, v) in value.field("histograms")?.as_map()? {
            snap.histograms.insert(
                name.clone(),
                decode_histogram(v).map_err(|e| e.in_field(name))?,
            );
        }
        snap.attrs = value.field("attrs")?.as_map()?.clone();
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::new();
        snap.counters.insert("net.accepted".into(), 12);
        snap.gauges.insert("serve.gate.depth".into(), 3);
        let mut h = Histogram::new();
        for v in [150u64, 900, 900, 12_000, u64::MAX] {
            h.record(v);
        }
        snap.histograms.insert("serve.stage.inference".into(), h);
        snap.attrs.insert("sessions".into(), Value::Int(8));
        snap
    }

    #[test]
    fn snapshot_roundtrips_bit_exactly() {
        let snap = sample();
        let back = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        // Deterministic serialisation: identical JSON both times.
        assert_eq!(back.to_json(), snap.to_json());
    }

    #[test]
    fn empty_histograms_roundtrip() {
        let mut snap = TelemetrySnapshot::new();
        snap.histograms.insert("idle".into(), Histogram::new());
        let back = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn future_schema_is_rejected() {
        let mut snap = sample();
        snap.schema_version = TELEMETRY_SCHEMA_VERSION + 1;
        let err = TelemetrySnapshot::from_json(&snap.to_json()).unwrap_err();
        assert!(err.to_string().contains("newer than supported"));
    }

    #[test]
    fn corrupt_bucket_count_is_rejected() {
        let mut json = sample().to_json();
        json = json.replace("\"count\":5", "\"count\":6");
        assert!(TelemetrySnapshot::from_json(&json).is_err());
    }

    #[test]
    fn render_table_filters_by_prefix() {
        let mut snap = sample();
        let mut other = Histogram::new();
        other.record(5);
        snap.histograms.insert("net.flush".into(), other);
        let table = snap.render_table("serve.");
        assert!(table.contains("serve.stage.inference"));
        assert!(!table.contains("net.flush"));
    }
}
