//! Histogram correctness: property tests against a sorted-vec oracle
//! (the exact structure the histogram replaced in gp-serve), bucket
//! boundary cases, top-bucket saturation, and a multi-thread hammer
//! checking that no sample is lost.

use gp_telemetry::hist::{bucket_bounds, bucket_index, BUCKETS, SATURATION};
use gp_telemetry::{AtomicHistogram, Histogram};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Exact nearest-rank percentile over raw samples — the oracle. This
/// is what `SessionStats::latency_percentile` computed from its sample
/// ring before histograms replaced it.
fn oracle_percentile(samples: &mut Vec<u64>, p: f64) -> u64 {
    samples.sort_unstable();
    let rank = (p / 100.0 * (samples.len() - 1) as f64).round() as usize;
    samples[rank]
}

/// Samples spanning the interesting ranges: exact buckets, mid-range
/// latencies, and the saturation zone.
fn gen_samples(rng: &mut StdRng, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| match rng.gen_range(0u32..10) {
            0 => rng.gen_range(0u64..4),                   // exact buckets
            1..=6 => rng.gen_range(4u64..2_000_000),       // realistic µs latencies
            7 | 8 => rng.gen_range(2_000_000u64..1 << 35), // long tail
            _ => rng.gen_range(SATURATION - 10..u64::MAX), // saturation zone
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The histogram percentile must bracket the oracle: never below
    /// the true quantile (upper-bound buckets), never more than 25%
    /// above it (sub-bucket resolution), and exact at the endpoints.
    #[test]
    fn percentile_brackets_sorted_vec_oracle(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1usize..200);
        let mut samples = gen_samples(&mut rng, n);
        let mut h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let exact = oracle_percentile(&mut samples, p);
            let approx = h.percentile(p).expect("non-empty");
            prop_assert!(approx >= exact, "p{p} under-reported: {approx} < {exact}");
            if exact < SATURATION {
                // Sub-bucket resolution bounds the error below the
                // top bucket; inside it only `<= max` can hold.
                let slack = exact / 4 + 1;
                prop_assert!(
                    approx <= exact.saturating_add(slack),
                    "p{p} over-reported: {approx} > {exact} + 25%"
                );
            } else {
                prop_assert!(approx <= *samples.last().unwrap());
            }
        }
        prop_assert_eq!(h.percentile(0.0).unwrap(), *samples.first().unwrap());
        prop_assert_eq!(h.percentile(100.0).unwrap(), *samples.last().unwrap());
    }

    /// Merging histograms is exactly recording the concatenation —
    /// unlike the old fixed ring, where merge order could overwrite
    /// arbitrary samples.
    #[test]
    fn merge_equals_recording_concatenation(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let parts: Vec<Vec<u64>> = (0..rng.gen_range(2usize..6))
            .map(|_| {
                let n = rng.gen_range(0usize..60);
                gen_samples(&mut rng, n)
            })
            .collect();
        let mut merged = Histogram::new();
        let mut whole = Histogram::new();
        for part in &parts {
            let mut h = Histogram::new();
            for &v in part {
                h.record(v);
                whole.record(v);
            }
            merged.merge(&h);
        }
        prop_assert_eq!(&merged, &whole);
        let total: usize = parts.iter().map(Vec::len).sum();
        prop_assert_eq!(merged.count(), total as u64);
    }

    /// Sparse encode → decode is the identity, for any sample set.
    #[test]
    fn sparse_parts_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0usize..100);
        let samples = gen_samples(&mut rng, n);
        let mut h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let back = Histogram::from_parts(
            h.nonzero_buckets().collect::<Vec<_>>(),
            h.sum(),
            h.min().unwrap_or(u64::MAX),
            h.max().unwrap_or(0),
        )
        .expect("indices in range");
        prop_assert_eq!(back, h);
    }
}

#[test]
fn bucket_boundaries_are_assigned_consistently() {
    // Walk every bucket edge: the lower bound maps into the bucket,
    // and its predecessor maps into the previous bucket.
    for i in 1..BUCKETS {
        let (lo, _) = bucket_bounds(i);
        assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
        assert_eq!(bucket_index(lo - 1), i - 1, "predecessor of bucket {i}");
    }
}

#[test]
fn top_bucket_saturates_not_panics() {
    let mut h = Histogram::new();
    for v in [SATURATION, SATURATION + 1, u64::MAX, u64::MAX - 1] {
        h.record(v);
    }
    assert_eq!(h.count(), 4);
    // All four landed in the top bucket; p100 is the exact max.
    assert_eq!(h.nonzero_buckets().count(), 1);
    assert_eq!(h.percentile(100.0), Some(u64::MAX));
}

#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 20_000;
    let h = Arc::new(AtomicHistogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = h.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(t as u64);
                for _ in 0..PER_THREAD {
                    h.record(rng.gen_range(0u64..5_000_000));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("recorder thread");
    }
    let snap = h.snapshot();
    let expected = (THREADS * PER_THREAD) as u64;
    assert_eq!(h.count(), expected, "atomic total count");
    assert_eq!(snap.count(), expected, "snapshot bucket total");
    assert_eq!(
        snap.nonzero_buckets().map(|(_, c)| c).sum::<u64>(),
        expected,
        "bucket-wise total"
    );
}
