//! End-to-end determinism: the full path from the dataset builder through
//! `GesturePrint` training and inference must be a pure function of its
//! seeds, regardless of how many worker threads do the building or the
//! training.
//!
//! This extends the builder-level `single_thread_matches_parallel` unit
//! test (`gp-datasets`) across crate boundaries into `gp-core`.

use gestureprint_core::{GesturePrint, GesturePrintConfig, IdentificationMode, TrainConfig};
use gp_datasets::{build, presets, BuildOptions, Dataset, Scale};
use gp_pipeline::LabeledSample;
use gp_testkit::quick_train;

fn build_with_threads(threads: usize) -> Dataset {
    let spec = presets::mtranssee(Scale::Custom { users: 2, reps: 4 }, &[1.2]);
    build(
        &spec,
        &BuildOptions {
            threads,
            ..BuildOptions::default()
        },
    )
}

/// Canonical ordering so thread scheduling cannot leak into comparisons.
fn ordered(ds: &Dataset) -> Vec<&LabeledSample> {
    let mut refs: Vec<_> = ds.samples.iter().collect();
    refs.sort_by_key(|s| (s.labeled.user, s.labeled.gesture, s.rep));
    refs.iter().map(|s| &s.labeled).collect()
}

#[test]
fn dataset_identical_across_thread_counts() {
    let seq = build_with_threads(1);
    let par = build_with_threads(4);
    assert_eq!(
        seq.samples.len(),
        par.samples.len(),
        "sample counts diverge"
    );
    assert_eq!(seq.dropped, par.dropped, "drop counts diverge");
    for (a, b) in ordered(&seq).iter().zip(ordered(&par).iter()) {
        assert_eq!(a, b, "sample contents diverge between 1 and 4 threads");
    }
}

#[test]
fn trained_system_identical_across_thread_counts() {
    let seq = build_with_threads(1);
    let par = build_with_threads(4);
    let train_on = |ds: &Dataset, threads: usize| -> GesturePrint {
        let samples = ordered(ds);
        GesturePrint::train(
            &samples,
            5,
            2,
            &GesturePrintConfig {
                mode: IdentificationMode::Serialized,
                train: TrainConfig {
                    epochs: 4,
                    ..quick_train()
                },
                threads,
            },
        )
    };
    let system_seq = train_on(&seq, 1);
    let system_par = train_on(&par, 4);

    // Identical inference on every probe sample, bit for bit.
    for probe in ordered(&seq) {
        let a = system_seq.infer(probe);
        let b = system_par.infer(probe);
        assert_eq!(a.gesture, b.gesture);
        assert_eq!(a.user, b.user);
        assert_eq!(
            a.gesture_probs, b.gesture_probs,
            "gesture posteriors diverge"
        );
        assert_eq!(a.user_probs, b.user_probs, "user posteriors diverge");
    }

    // And the batched path is bit-identical for every batch size 1..=8,
    // regardless of which thread count trained the system: batch
    // composition must never leak into predictions.
    let probes = ordered(&seq);
    let reference: Vec<_> = probes.iter().map(|p| system_seq.infer(p)).collect();
    for system in [&system_seq, &system_par] {
        for batch in 1..=8usize {
            let mut batched = Vec::with_capacity(probes.len());
            for chunk in probes.chunks(batch) {
                batched.extend(system.infer_batch(chunk));
            }
            assert_eq!(
                batched, reference,
                "batched inference diverges at batch size {batch}"
            );
        }
    }
}
