//! The end-to-end GesturePrint system (paper Fig. 4).
//!
//! This crate glues the preprocessed samples from `gp-pipeline` to the
//! models in `gp-models` and exposes the paper's two-task API:
//!
//! * [`train::train_classifier`] — trains one classifier (GesIDNet or a
//!   baseline) on labeled gesture clouds with the paper's training-time
//!   augmentation,
//! * [`GesturePrint`] — the full system: a gesture-recognition model plus
//!   user-identification model(s), in **serialized** mode (per-gesture
//!   identifiers selected by the recognised gesture — the paper's
//!   default) or **parallel** mode (one identifier across all gestures),
//! * [`report`] — classification reports (accuracy / macro-F1 /
//!   macro-AUC) and verification scores for EER, matching §VI-A3,
//! * [`artifact`] — the versioned persistence layer: models, full
//!   systems and reports travel as self-describing `gp-codec` artifacts
//!   (`save_artifact()` / `load_artifact(bytes)`, no out-of-band
//!   arguments).
//!
//! # Example
//!
//! ```no_run
//! use gestureprint_core::{GesturePrint, GesturePrintConfig, IdentificationMode};
//! use gp_datasets::{presets, BuildOptions, Scale};
//! use gp_radar::Environment;
//!
//! let spec = presets::gestureprint(Environment::Office, Scale::Small);
//! let data = gp_datasets::build(&spec, &BuildOptions::default());
//! let samples: Vec<_> = data.samples.iter().map(|s| &s.labeled).collect();
//! let system = GesturePrint::train(
//!     &samples,
//!     spec.set.gesture_count(),
//!     spec.users,
//!     &GesturePrintConfig::default(),
//! );
//! let out = system.infer(samples[0]);
//! println!("gesture {} by user {}", out.gesture, out.user);
//! ```

pub mod artifact;
pub mod crossval;
pub mod persist;
pub mod report;
pub mod system;
pub mod train;

pub use artifact::{Artifact, ArtifactError, ArtifactFormat, ModelArtifact, SCHEMA_VERSION};
pub use crossval::kfold_reports;
pub use report::{classification_report, ClassificationReport};
pub use system::{GesturePrint, GesturePrintConfig, IdentificationMode, Inference};
pub use train::{
    train_classifier, train_rd_classifier, ModelKind, SampleRef, SensingBackend, TrainConfig,
    TrainedModel,
};
