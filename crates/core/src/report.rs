//! Classification reports matching the paper's metrics (§VI-A3).

use crate::train::TrainedModel;
use gp_eval::metrics::{accuracy, macro_auc, macro_f1};
use gp_eval::roc::{eer, one_vs_rest_scores};
use gp_pipeline::LabeledSample;

/// Accuracy / macro-F1 / macro-AUC over a test set, plus the raw
/// probability vectors for downstream ROC/EER analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationReport {
    /// Plain accuracy (the paper's GRA / UIA).
    pub accuracy: f64,
    /// Macro-averaged F1 (GRF1 / UIF1).
    pub macro_f1: f64,
    /// Macro one-vs-rest AUC (GRAUC / UIAUC).
    pub macro_auc: f64,
    /// Equal error rate from pooled one-vs-rest verification scores.
    pub eer: f64,
    /// Per-sample class probabilities.
    pub probabilities: Vec<Vec<f64>>,
    /// Per-sample predictions.
    pub predictions: Vec<usize>,
    /// Ground-truth labels.
    pub labels: Vec<usize>,
}

impl gp_codec::Encode for ClassificationReport {
    fn encode(&self) -> gp_codec::Value {
        gp_codec::Value::record([
            ("accuracy", self.accuracy.encode()),
            ("macro_f1", self.macro_f1.encode()),
            ("macro_auc", self.macro_auc.encode()),
            ("eer", self.eer.encode()),
            ("probabilities", self.probabilities.encode()),
            ("predictions", self.predictions.encode()),
            ("labels", self.labels.encode()),
        ])
    }
}

impl gp_codec::Decode for ClassificationReport {
    fn decode(value: &gp_codec::Value) -> Result<Self, gp_codec::DecodeError> {
        Ok(ClassificationReport {
            accuracy: value.get("accuracy")?,
            macro_f1: value.get("macro_f1")?,
            macro_auc: value.get("macro_auc")?,
            eer: value.get("eer")?,
            probabilities: value.get("probabilities")?,
            predictions: value.get("predictions")?,
            labels: value.get("labels")?,
        })
    }
}

/// Evaluates `model` on `(sample, label)` pairs.
pub fn classification_report(
    model: &TrainedModel,
    test: &[(&LabeledSample, usize)],
) -> ClassificationReport {
    let mut probabilities = Vec::with_capacity(test.len());
    let mut predictions = Vec::with_capacity(test.len());
    let mut labels = Vec::with_capacity(test.len());
    for (sample, label) in test {
        let p = model.probabilities(sample);
        predictions.push(
            p.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0),
        );
        probabilities.push(p);
        labels.push(*label);
    }
    let classes = model.classes();
    let (scores, positives) = one_vs_rest_scores(&probabilities, &labels, classes);
    ClassificationReport {
        accuracy: accuracy(&predictions, &labels),
        macro_f1: macro_f1(&predictions, &labels, classes),
        macro_auc: macro_auc(&probabilities, &labels, classes),
        eer: eer(&scores, &positives),
        probabilities,
        predictions,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_classifier, ModelKind, TrainConfig};
    use gp_models::features::FeatureConfig;
    use gp_pointcloud::{Point, PointCloud, Vec3};

    fn sample(user: usize, rep: usize) -> LabeledSample {
        let shift = if user == 0 { -0.35 } else { 0.35 };
        let cloud: PointCloud = (0..20)
            .map(|i| {
                let t = i as f64 * 0.33 + rep as f64 * 0.09;
                Point::new(
                    Vec3::new(shift + t.sin() * 0.2, 1.2, 1.0 + t.cos() * 0.2),
                    (t * 1.2).sin(),
                    10.0,
                )
            })
            .collect();
        LabeledSample {
            cloud: cloud.clone(),
            frame_clouds: vec![cloud; 3],
            duration_frames: 18,
            gesture: 0,
            user,
        }
    }

    #[test]
    fn report_on_learnable_task_is_strong() {
        let train: Vec<LabeledSample> = (0..10).map(|r| sample(r % 2, r)).collect();
        let test: Vec<LabeledSample> = (10..16).map(|r| sample(r % 2, r)).collect();
        let pairs: Vec<(&LabeledSample, usize)> = train.iter().map(|s| (s, s.user)).collect();
        let model = train_classifier(
            &pairs,
            2,
            &TrainConfig {
                model: ModelKind::PointNet,
                epochs: 20,
                augment: None,
                feature: FeatureConfig {
                    num_points: 20,
                    ..FeatureConfig::default()
                },
                ..TrainConfig::default()
            },
        );
        let test_pairs: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (s, s.user)).collect();
        let report = classification_report(&model, &test_pairs);
        assert!(report.accuracy >= 0.8, "accuracy {}", report.accuracy);
        assert!(report.macro_auc >= 0.8, "auc {}", report.macro_auc);
        assert!(report.eer <= 0.3, "eer {}", report.eer);
        assert_eq!(report.probabilities.len(), 6);
        assert_eq!(report.predictions.len(), 6);
    }

    #[test]
    fn report_metrics_consistent() {
        let train: Vec<LabeledSample> = (0..8).map(|r| sample(r % 2, r)).collect();
        let pairs: Vec<(&LabeledSample, usize)> = train.iter().map(|s| (s, s.user)).collect();
        let model = train_classifier(
            &pairs,
            2,
            &TrainConfig {
                model: ModelKind::PointNet,
                epochs: 5,
                augment: None,
                feature: FeatureConfig {
                    num_points: 20,
                    ..FeatureConfig::default()
                },
                ..TrainConfig::default()
            },
        );
        let report = classification_report(&model, &pairs);
        // Accuracy must equal fraction of matching predictions.
        let manual = report
            .predictions
            .iter()
            .zip(&report.labels)
            .filter(|(p, l)| p == l)
            .count() as f64
            / report.labels.len() as f64;
        assert!((report.accuracy - manual).abs() < 1e-12);
    }
}
