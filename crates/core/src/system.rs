//! The full GesturePrint system: gesture recognition + user
//! identification in serialized or parallel mode (paper §IV-C).

use crate::train::{
    train_classifier, train_rd_classifier, SensingBackend, TrainConfig, TrainedModel,
};
use gp_pipeline::LabeledSample;
use gp_rd::RdLabeledSample;
use gp_runtime::WorkerPool;

/// Runtime identification mode (paper §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdentificationMode {
    /// One identification model *per gesture*; the recogniser's output
    /// selects which identifier runs. The paper's default (GP-S).
    Serialized,
    /// A single identification model trained across all gestures (GP-P).
    Parallel,
}

/// System configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GesturePrintConfig {
    /// Identification mode.
    pub mode: IdentificationMode,
    /// Training configuration shared by all models.
    pub train: TrainConfig,
    /// Number of worker threads for training the per-gesture identifiers
    /// (`0` = available parallelism).
    pub threads: usize,
}

impl Default for GesturePrintConfig {
    fn default() -> Self {
        GesturePrintConfig {
            mode: IdentificationMode::Serialized,
            train: TrainConfig::default(),
            threads: 0,
        }
    }
}

impl IdentificationMode {
    /// Stable serialization tag (persisted in artifacts; do not rename).
    pub fn tag(self) -> &'static str {
        match self {
            IdentificationMode::Serialized => "serialized",
            IdentificationMode::Parallel => "parallel",
        }
    }
}

impl gp_codec::Encode for IdentificationMode {
    fn encode(&self) -> gp_codec::Value {
        gp_codec::Value::Str(self.tag().to_owned())
    }
}

impl gp_codec::Decode for IdentificationMode {
    fn decode(value: &gp_codec::Value) -> Result<Self, gp_codec::DecodeError> {
        match value.as_str()? {
            "serialized" => Ok(IdentificationMode::Serialized),
            "parallel" => Ok(IdentificationMode::Parallel),
            other => Err(gp_codec::DecodeError::new(format!(
                "unknown identification mode '{other}'"
            ))),
        }
    }
}

impl gp_codec::Encode for GesturePrintConfig {
    fn encode(&self) -> gp_codec::Value {
        gp_codec::Value::record([
            ("mode", self.mode.encode()),
            ("train", self.train.encode()),
            ("threads", self.threads.encode()),
        ])
    }
}

impl gp_codec::Decode for GesturePrintConfig {
    fn decode(value: &gp_codec::Value) -> Result<Self, gp_codec::DecodeError> {
        Ok(GesturePrintConfig {
            mode: value.get("mode")?,
            train: value.get("train")?,
            threads: value.get("threads")?,
        })
    }
}

/// The inference result for one gesture sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Inference {
    /// Recognised gesture class.
    pub gesture: usize,
    /// Identified user.
    pub user: usize,
    /// Gesture class probabilities.
    pub gesture_probs: Vec<f64>,
    /// User class probabilities (from the identifier that ran).
    pub user_probs: Vec<f64>,
}

/// A trained GesturePrint system.
#[derive(Debug)]
pub struct GesturePrint {
    gesture_model: TrainedModel,
    /// Serialized: one per gesture (index = gesture id). Parallel: one.
    identifiers: Vec<TrainedModel>,
    mode: IdentificationMode,
    gestures: usize,
    users: usize,
}

impl GesturePrint {
    /// Trains the system on labeled samples.
    ///
    /// In serialized mode one identifier is trained per gesture (on that
    /// gesture's samples only); gestures with no training samples fall
    /// back to a global identifier. Identifier training runs in parallel
    /// across gestures.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or labels exceed the class counts.
    pub fn train(
        samples: &[&LabeledSample],
        gestures: usize,
        users: usize,
        config: &GesturePrintConfig,
    ) -> Self {
        assert!(!samples.is_empty(), "cannot train on an empty sample set");
        let gesture_pairs: Vec<(&LabeledSample, usize)> =
            samples.iter().map(|s| (*s, s.gesture)).collect();
        let gesture_model = train_classifier(&gesture_pairs, gestures, &config.train);

        let identifiers = match config.mode {
            IdentificationMode::Parallel => {
                let user_pairs: Vec<(&LabeledSample, usize)> =
                    samples.iter().map(|s| (*s, s.user)).collect();
                vec![train_classifier(&user_pairs, users, &config.train)]
            }
            IdentificationMode::Serialized => {
                // Group samples per gesture.
                let mut groups: Vec<Vec<(&LabeledSample, usize)>> = vec![Vec::new(); gestures];
                for s in samples {
                    groups[s.gesture].push((*s, s.user));
                }
                let all_pairs: Vec<(&LabeledSample, usize)> =
                    samples.iter().map(|s| (*s, s.user)).collect();

                // Train per-gesture identifiers in parallel on the
                // shared runtime pool; `scope_map` preserves gesture
                // order, so no re-sorting is needed.
                let train_cfg = &config.train;
                let pool = WorkerPool::new(config.threads);
                pool.scope_map((0..gestures).collect(), |_, g| {
                    let pairs: &[(&LabeledSample, usize)] = if groups[g].is_empty() {
                        &all_pairs
                    } else {
                        &groups[g]
                    };
                    let mut cfg = train_cfg.clone();
                    cfg.seed = cfg.seed.wrapping_add(g as u64 * 0x1009);
                    // Per-gesture identifiers see a fraction of the data;
                    // scale epochs (capped at 3×) so each model gets a
                    // comparable optimisation budget.
                    let ratio = (samples.len() as f64 / pairs.len().max(1) as f64).min(3.0);
                    cfg.epochs = ((cfg.epochs as f64) * ratio).round() as usize;
                    train_classifier(pairs, users, &cfg)
                })
            }
        };

        GesturePrint {
            gesture_model,
            identifiers,
            mode: config.mode,
            gestures,
            users,
        }
    }

    /// Trains a range-Doppler system — the RD counterpart of
    /// [`GesturePrint::train`], with the same serialized/parallel
    /// identifier structure, per-gesture seed offsets, and epoch
    /// scaling, driven by [`train_rd_classifier`].
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, labels exceed the class counts, or
    /// `config.train.model` is not an RD architecture.
    pub fn train_rd(
        samples: &[&RdLabeledSample],
        gestures: usize,
        users: usize,
        config: &GesturePrintConfig,
    ) -> Self {
        assert!(!samples.is_empty(), "cannot train on an empty sample set");
        let gesture_pairs: Vec<(&RdLabeledSample, usize)> =
            samples.iter().map(|s| (*s, s.gesture)).collect();
        let gesture_model = train_rd_classifier(&gesture_pairs, gestures, &config.train);

        let identifiers = match config.mode {
            IdentificationMode::Parallel => {
                let user_pairs: Vec<(&RdLabeledSample, usize)> =
                    samples.iter().map(|s| (*s, s.user)).collect();
                vec![train_rd_classifier(&user_pairs, users, &config.train)]
            }
            IdentificationMode::Serialized => {
                let mut groups: Vec<Vec<(&RdLabeledSample, usize)>> = vec![Vec::new(); gestures];
                for s in samples {
                    groups[s.gesture].push((*s, s.user));
                }
                let all_pairs: Vec<(&RdLabeledSample, usize)> =
                    samples.iter().map(|s| (*s, s.user)).collect();

                let train_cfg = &config.train;
                let pool = WorkerPool::new(config.threads);
                pool.scope_map((0..gestures).collect(), |_, g| {
                    let pairs: &[(&RdLabeledSample, usize)] = if groups[g].is_empty() {
                        &all_pairs
                    } else {
                        &groups[g]
                    };
                    let mut cfg = train_cfg.clone();
                    cfg.seed = cfg.seed.wrapping_add(g as u64 * 0x1009);
                    let ratio = (samples.len() as f64 / pairs.len().max(1) as f64).min(3.0);
                    cfg.epochs = ((cfg.epochs as f64) * ratio).round() as usize;
                    train_rd_classifier(pairs, users, &cfg)
                })
            }
        };

        GesturePrint {
            gesture_model,
            identifiers,
            mode: config.mode,
            gestures,
            users,
        }
    }

    /// Reassembles a system from already-trained parts (the artifact
    /// loader's constructor; see [`crate::artifact`]).
    pub(crate) fn from_parts(
        gesture_model: TrainedModel,
        identifiers: Vec<TrainedModel>,
        mode: IdentificationMode,
        gestures: usize,
        users: usize,
    ) -> Self {
        GesturePrint {
            gesture_model,
            identifiers,
            mode,
            gestures,
            users,
        }
    }

    /// The per-gesture (serialized) or single (parallel) identifiers,
    /// in dispatch order.
    pub(crate) fn identifiers(&self) -> &[TrainedModel] {
        &self.identifiers
    }

    /// The identification mode.
    pub fn mode(&self) -> IdentificationMode {
        self.mode
    }

    /// The sensing representation this system consumes — every model in
    /// the system shares the gesture model's backend.
    pub fn backend(&self) -> SensingBackend {
        self.gesture_model.backend()
    }

    /// Gesture class count.
    pub fn gestures(&self) -> usize {
        self.gestures
    }

    /// User class count.
    pub fn users(&self) -> usize {
        self.users
    }

    /// The gesture-recognition model.
    pub fn gesture_model(&self) -> &TrainedModel {
        &self.gesture_model
    }

    /// Index into `identifiers` of the model that runs for `gesture` —
    /// the single definition of the mode's dispatch rule, shared by
    /// single-sample and batched inference.
    fn identifier_index(&self, gesture: usize) -> usize {
        match self.mode {
            IdentificationMode::Parallel => 0,
            IdentificationMode::Serialized => gesture.min(self.identifiers.len() - 1),
        }
    }

    /// The identifier that runs for `gesture`.
    pub fn identifier_for(&self, gesture: usize) -> &TrainedModel {
        &self.identifiers[self.identifier_index(gesture)]
    }

    /// Recognises the gesture only.
    pub fn recognize(&self, sample: &LabeledSample) -> usize {
        self.gesture_model.predict(sample)
    }

    /// Recognises the gesture of an RD sample only.
    pub fn recognize_rd(&self, sample: &RdLabeledSample) -> usize {
        self.gesture_model.predict_rd(sample)
    }

    /// Full inference: gesture, then user via the mode's identifier.
    pub fn infer(&self, sample: &LabeledSample) -> Inference {
        let gesture_probs = self.gesture_model.probabilities(sample);
        let gesture = argmax_f64(&gesture_probs);
        let identifier = self.identifier_for(gesture);
        let user_probs = identifier.probabilities(sample);
        let user = argmax_f64(&user_probs);
        Inference {
            gesture,
            user,
            gesture_probs,
            user_probs,
        }
    }

    /// Full inference over an RD sample — identical two-stage dispatch
    /// as [`GesturePrint::infer`], on the RD backend.
    pub fn infer_rd(&self, sample: &RdLabeledSample) -> Inference {
        let gesture_probs = self.gesture_model.probabilities_rd(sample);
        let gesture = argmax_f64(&gesture_probs);
        let identifier = self.identifier_for(gesture);
        let user_probs = identifier.probabilities_rd(sample);
        let user = argmax_f64(&user_probs);
        Inference {
            gesture,
            user,
            gesture_probs,
            user_probs,
        }
    }

    /// Batched RD inference. RdNet forwards sample-at-a-time, so this
    /// maps [`GesturePrint::infer_rd`]; it exists so the serving
    /// executor has one batched entry per backend.
    pub fn infer_rd_batch(&self, samples: &[&RdLabeledSample]) -> Vec<Inference> {
        samples.iter().map(|s| self.infer_rd(s)).collect()
    }

    /// Batched inference over many samples — the serving path's entry
    /// point (`gp-serve`'s micro-batching executor calls this per batch).
    ///
    /// Produces exactly the same results as calling
    /// [`GesturePrint::infer`] on each sample: the gesture recogniser
    /// runs batched over the whole set, then samples are grouped by
    /// recognised gesture so each identifier also runs batched over its
    /// group (in serialized mode; parallel mode uses one group).
    pub fn infer_batch(&self, samples: &[&LabeledSample]) -> Vec<Inference> {
        if samples.is_empty() {
            return Vec::new();
        }
        let gesture_probs = self.gesture_model.probabilities_batch(samples);
        let gestures: Vec<usize> = gesture_probs.iter().map(|p| argmax_f64(p)).collect();

        // Group sample indices by the identifier that must run for them.
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, &gesture) in gestures.iter().enumerate() {
            groups
                .entry(self.identifier_index(gesture))
                .or_default()
                .push(i);
        }
        let mut user_probs: Vec<Vec<f64>> = vec![Vec::new(); samples.len()];
        for (identifier, indices) in groups {
            let subset: Vec<&LabeledSample> = indices.iter().map(|&i| samples[i]).collect();
            let probs = self.identifiers[identifier].probabilities_batch(&subset);
            for (&i, p) in indices.iter().zip(probs) {
                user_probs[i] = p;
            }
        }

        gestures
            .into_iter()
            .zip(gesture_probs)
            .zip(user_probs)
            .map(|((gesture, gesture_probs), user_probs)| Inference {
                gesture,
                user: argmax_f64(&user_probs),
                gesture_probs,
                user_probs,
            })
            .collect()
    }

    /// The user-discriminative embedding of a sample: the fused
    /// penultimate feature of the identifier the recognised gesture
    /// dispatches to ([`TrainedModel::embedding`]). This is what
    /// `gp-store` enrolls into a gallery — identification then becomes
    /// nearest-gallery matching instead of a closed-set argmax.
    /// `None` when the identifier architecture has no fusion tap.
    pub fn embedding(&self, sample: &LabeledSample) -> Option<Vec<f32>> {
        self.embedding_for_gesture(sample, self.recognize(sample))
    }

    /// [`GesturePrint::embedding`] for a gesture the caller already
    /// recognised — the serving path has the gesture from the batched
    /// inference and must not run the recogniser twice.
    pub fn embedding_for_gesture(
        &self,
        sample: &LabeledSample,
        gesture: usize,
    ) -> Option<Vec<f32>> {
        self.identifier_for(gesture).embedding(sample)
    }

    /// The RD identification embedding for a caller-recognised gesture —
    /// the RD counterpart of [`GesturePrint::embedding_for_gesture`].
    pub fn embedding_rd_for_gesture(
        &self,
        sample: &RdLabeledSample,
        gesture: usize,
    ) -> Option<Vec<f32>> {
        Some(self.identifier_for(gesture).embedding_rd(sample))
    }

    /// Ensemble inference: runs this (point-cloud) system unless the
    /// segment's cloud is sparse — fewer than `min_points` detected
    /// points, the regime where CFAR detection starves (e.g. near-radial
    /// vertical pats) — in which case the co-trained `rd` system infers
    /// from the raw range-Doppler frames instead. Returns the inference
    /// and the backend that produced it.
    ///
    /// Both systems must be trained on the same label spaces; this is
    /// the fallback policy the serving layer applies per segment.
    pub fn infer_with_rd_fallback(
        &self,
        sample: &LabeledSample,
        rd: &GesturePrint,
        rd_sample: &RdLabeledSample,
        min_points: usize,
    ) -> (Inference, SensingBackend) {
        debug_assert_eq!(self.backend(), SensingBackend::PointCloud);
        debug_assert_eq!(rd.backend(), SensingBackend::RangeDoppler);
        if sample.cloud.len() < min_points {
            (rd.infer_rd(rd_sample), SensingBackend::RangeDoppler)
        } else {
            (self.infer(sample), SensingBackend::PointCloud)
        }
    }

    /// Open-set inference: rejects samples whose identity confidence is
    /// below `threshold` (`None` = unauthorized person or random motion).
    ///
    /// The serialized mode enables exactly this capability — the paper
    /// cites "handling random gestures and unauthorized people" as a
    /// reason serialized is the default (§IV-C): a per-gesture identifier
    /// sees an impostor's style as out-of-distribution and spreads its
    /// probability mass.
    pub fn infer_verified(&self, sample: &LabeledSample, threshold: f64) -> Option<Inference> {
        let out = self.infer(sample);
        let confidence = out.user_probs[out.user];
        (confidence >= threshold).then_some(out)
    }
}

fn argmax_f64(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::ModelKind;
    use gp_models::features::FeatureConfig;
    use gp_pointcloud::{Point, PointCloud, Vec3};

    /// 2 gestures × 2 users toy world: gesture controls motion axis,
    /// user controls lateral offset and Doppler magnitude.
    fn toy_samples(reps: usize) -> Vec<LabeledSample> {
        let mut out = Vec::new();
        for gesture in 0..2usize {
            for user in 0..2usize {
                for rep in 0..reps {
                    let shift = if user == 0 { -0.3 } else { 0.3 };
                    let cloud: PointCloud = (0..24)
                        .map(|i| {
                            let t = i as f64 * 0.3 + rep as f64 * 0.07;
                            let (dx, dz) = if gesture == 0 {
                                (t.sin() * 0.35, 0.02) // lateral sweep
                            } else {
                                (0.02, t.sin() * 0.35) // vertical sweep
                            };
                            Point::new(
                                Vec3::new(shift + dx, 1.2 + t.cos() * 0.1, 1.0 + dz),
                                (t * 1.3).sin() * (0.8 + user as f64 * 0.6),
                                14.0,
                            )
                        })
                        .collect();
                    out.push(LabeledSample {
                        cloud: cloud.clone(),
                        frame_clouds: vec![cloud; 4],
                        duration_frames: 18 + 4 * user,
                        gesture,
                        user,
                    });
                }
            }
        }
        out
    }

    fn quick_config(mode: IdentificationMode) -> GesturePrintConfig {
        GesturePrintConfig {
            mode,
            train: TrainConfig {
                model: ModelKind::GesIdNet,
                epochs: 12,
                augment: None,
                feature: FeatureConfig {
                    num_points: 24,
                    ..FeatureConfig::default()
                },
                ..TrainConfig::default()
            },
            threads: 2,
        }
    }

    #[test]
    fn serialized_system_learns_both_tasks() {
        let samples = toy_samples(6);
        let refs: Vec<&LabeledSample> = samples.iter().collect();
        let system =
            GesturePrint::train(&refs, 2, 2, &quick_config(IdentificationMode::Serialized));
        let mut g_ok = 0;
        let mut u_ok = 0;
        for s in &samples {
            let out = system.infer(s);
            if out.gesture == s.gesture {
                g_ok += 1;
            }
            if out.user == s.user {
                u_ok += 1;
            }
        }
        assert!(g_ok >= 20, "gesture recognition weak: {g_ok}/24");
        assert!(u_ok >= 20, "user identification weak: {u_ok}/24");
    }

    #[test]
    fn parallel_mode_uses_single_identifier() {
        let samples = toy_samples(4);
        let refs: Vec<&LabeledSample> = samples.iter().collect();
        let system = GesturePrint::train(&refs, 2, 2, &quick_config(IdentificationMode::Parallel));
        assert!(std::ptr::eq(
            system.identifier_for(0),
            system.identifier_for(1)
        ));
        let out = system.infer(&samples[0]);
        assert_eq!(out.user_probs.len(), 2);
    }

    #[test]
    fn serialized_mode_has_one_identifier_per_gesture() {
        let samples = toy_samples(4);
        let refs: Vec<&LabeledSample> = samples.iter().collect();
        let system =
            GesturePrint::train(&refs, 2, 2, &quick_config(IdentificationMode::Serialized));
        assert!(!std::ptr::eq(
            system.identifier_for(0),
            system.identifier_for(1)
        ));
    }

    #[test]
    fn inference_probabilities_normalised() {
        let samples = toy_samples(4);
        let refs: Vec<&LabeledSample> = samples.iter().collect();
        let system =
            GesturePrint::train(&refs, 2, 2, &quick_config(IdentificationMode::Serialized));
        let out = system.infer(&samples[0]);
        assert!((out.gesture_probs.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!((out.user_probs.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn batched_inference_matches_sequential() {
        let samples = toy_samples(4);
        let refs: Vec<&LabeledSample> = samples.iter().collect();
        for mode in [IdentificationMode::Serialized, IdentificationMode::Parallel] {
            let system = GesturePrint::train(&refs, 2, 2, &quick_config(mode));
            let batched = system.infer_batch(&refs);
            assert_eq!(batched.len(), samples.len());
            for (i, s) in samples.iter().enumerate() {
                assert_eq!(batched[i], system.infer(s), "sample {i} mode {mode:?}");
            }
            assert!(system.infer_batch(&[]).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn empty_training_rejected() {
        GesturePrint::train(&[], 2, 2, &quick_config(IdentificationMode::Serialized));
    }

    #[test]
    fn embeddings_are_deterministic_and_user_discriminative() {
        let samples = toy_samples(6);
        let refs: Vec<&LabeledSample> = samples.iter().collect();
        let system =
            GesturePrint::train(&refs, 2, 2, &quick_config(IdentificationMode::Serialized));
        let e = system.embedding(&samples[0]).expect("GesIDNet has a tap");
        assert!(!e.is_empty());
        assert_eq!(system.embedding(&samples[0]).unwrap(), e, "deterministic");
        // Same-user embeddings sit closer than cross-user ones on
        // average (the property the gallery matcher relies on).
        let dist = |a: &[f32], b: &[f32]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (f64::from(x - y)).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let embeds: Vec<(usize, Vec<f32>)> = samples
            .iter()
            .map(|s| (s.user, system.embedding(s).unwrap()))
            .collect();
        let (mut same, mut same_n, mut diff, mut diff_n) = (0.0, 0u32, 0.0, 0u32);
        for i in 0..embeds.len() {
            for j in (i + 1)..embeds.len() {
                let d = dist(&embeds[i].1, &embeds[j].1);
                if embeds[i].0 == embeds[j].0 {
                    same += d;
                    same_n += 1;
                } else {
                    diff += d;
                    diff_n += 1;
                }
            }
        }
        assert!(
            same / f64::from(same_n) < diff / f64::from(diff_n),
            "genuine mean {} >= impostor mean {}",
            same / f64::from(same_n),
            diff / f64::from(diff_n)
        );
    }

    #[test]
    fn embedding_is_none_without_a_fusion_tap() {
        let samples = toy_samples(3);
        let refs: Vec<&LabeledSample> = samples.iter().collect();
        let mut config = quick_config(IdentificationMode::Parallel);
        config.train.model = ModelKind::PointNet;
        let system = GesturePrint::train(&refs, 2, 2, &config);
        assert_eq!(system.embedding(&samples[0]), None);
    }

    /// 2 gestures × 2 users RD toy world: gesture controls the range
    /// column band, user controls which side of zero Doppler the energy
    /// sits on.
    fn toy_rd_samples(reps: usize) -> Vec<RdLabeledSample> {
        let cfg = gp_rd::RdConfig::default();
        let mut out = Vec::new();
        for gesture in 0..2usize {
            for user in 0..2usize {
                for rep in 0..reps {
                    let d = if user == 0 { 4 } else { 12 };
                    let r0 = if gesture == 0 { 10 } else { 36 };
                    let frames: Vec<gp_rd::RdFrame> = (0..8)
                        .map(|i| {
                            let mut f = gp_rd::RdFrame::zeros(&cfg, i as f64 * 0.1);
                            let r = r0 + (rep + i) % 4;
                            f.power[d * cfg.range_bins + r] = 40.0 + rep as f64;
                            f.power[(d + 1) * cfg.range_bins + r] = 20.0;
                            f
                        })
                        .collect();
                    out.push(RdLabeledSample {
                        frames,
                        duration_frames: 8,
                        gesture,
                        user,
                    });
                }
            }
        }
        out
    }

    fn quick_rd_config(mode: IdentificationMode) -> GesturePrintConfig {
        GesturePrintConfig {
            mode,
            train: TrainConfig {
                model: ModelKind::RdNet,
                epochs: 12,
                learning_rate: 5e-3,
                augment: None,
                ..TrainConfig::default()
            },
            threads: 2,
        }
    }

    #[test]
    fn rd_system_learns_both_tasks() {
        let samples = toy_rd_samples(6);
        let refs: Vec<&RdLabeledSample> = samples.iter().collect();
        let system = GesturePrint::train_rd(
            &refs,
            2,
            2,
            &quick_rd_config(IdentificationMode::Serialized),
        );
        assert_eq!(system.backend(), crate::train::SensingBackend::RangeDoppler);
        let mut g_ok = 0;
        let mut u_ok = 0;
        for s in &samples {
            let out = system.infer_rd(s);
            if out.gesture == s.gesture {
                g_ok += 1;
            }
            if out.user == s.user {
                u_ok += 1;
            }
        }
        assert!(g_ok >= 20, "RD gesture recognition weak: {g_ok}/24");
        assert!(u_ok >= 20, "RD user identification weak: {u_ok}/24");
        // Embeddings exist on the RD path (RdNet always has a fusion tap).
        let e = system
            .embedding_rd_for_gesture(&samples[0], system.recognize_rd(&samples[0]))
            .unwrap();
        assert_eq!(e.len(), 48);
    }

    #[test]
    fn rd_batched_matches_sequential() {
        let samples = toy_rd_samples(3);
        let refs: Vec<&RdLabeledSample> = samples.iter().collect();
        let system =
            GesturePrint::train_rd(&refs, 2, 2, &quick_rd_config(IdentificationMode::Parallel));
        let batched = system.infer_rd_batch(&refs);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(batched[i], system.infer_rd(s), "sample {i}");
        }
    }

    #[test]
    fn sparse_cloud_recovers_through_rd_fallback() {
        // The acceptance scenario: a near-radial gesture ('table'-like)
        // yields a starved point cloud whose few points carry the wrong
        // user's geometry, while the RD frames keep the user's Doppler
        // signature. Point-cloud-only misses; the ensemble recovers.
        let samples = toy_samples(6);
        let refs: Vec<&LabeledSample> = samples.iter().collect();
        let point_system =
            GesturePrint::train(&refs, 2, 2, &quick_config(IdentificationMode::Serialized));
        let rd_samples = toy_rd_samples(6);
        let rd_refs: Vec<&RdLabeledSample> = rd_samples.iter().collect();
        let rd_system = GesturePrint::train_rd(
            &rd_refs,
            2,
            2,
            &quick_rd_config(IdentificationMode::Serialized),
        );

        // Sparse capture of user 1: detection collapsed to three points
        // that sit at user 0's lateral offset — the identity cue is gone
        // from the cloud but intact in the RD sample.
        let sparse_cloud: PointCloud = (0..3)
            .map(|i| {
                let t = i as f64 * 0.3;
                Point::new(Vec3::new(-0.3 + t.sin() * 0.35, 1.2, 1.0), 0.5, 14.0)
            })
            .collect();
        let sparse = LabeledSample {
            cloud: sparse_cloud.clone(),
            frame_clouds: vec![sparse_cloud; 4],
            duration_frames: 18,
            gesture: 0,
            user: 1,
        };
        let rd_of_sparse = rd_samples
            .iter()
            .find(|s| s.gesture == 0 && s.user == 1)
            .unwrap();

        let point_only = point_system.infer(&sparse);
        assert_ne!(
            point_only.user, 1,
            "sparse cloud should mislead the point path"
        );

        let (ensemble, backend) =
            point_system.infer_with_rd_fallback(&sparse, &rd_system, rd_of_sparse, 10);
        assert_eq!(backend, crate::train::SensingBackend::RangeDoppler);
        assert_eq!(ensemble.user, 1, "RD fallback should recover the user");

        // Dense segments stay on the point path.
        let dense = samples
            .iter()
            .find(|s| s.gesture == 0 && s.user == 1)
            .unwrap();
        let rd_dense = rd_of_sparse;
        let (out, backend) = point_system.infer_with_rd_fallback(dense, &rd_system, rd_dense, 10);
        assert_eq!(backend, crate::train::SensingBackend::PointCloud);
        assert_eq!(out, point_system.infer(dense));
    }

    #[test]
    fn open_set_threshold_rejects_and_accepts() {
        let samples = toy_samples(6);
        let refs: Vec<&LabeledSample> = samples.iter().collect();
        let system =
            GesturePrint::train(&refs, 2, 2, &quick_config(IdentificationMode::Serialized));
        // A permissive threshold accepts enrolled users...
        let accepted = samples
            .iter()
            .filter(|s| system.infer_verified(s, 0.5).is_some())
            .count();
        assert!(accepted > samples.len() / 2, "accepted {accepted}");
        // ...and an impossible threshold rejects everything.
        assert!(samples
            .iter()
            .all(|s| system.infer_verified(s, 1.01).is_none()));
    }
}
