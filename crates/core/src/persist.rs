//! Legacy model persistence: the flat weight stream with out-of-band
//! architecture arguments.
//!
//! Superseded by the self-describing artifact API in [`crate::artifact`]
//! — [`TrainedModel::save_artifact`] / [`TrainedModel::load_artifact`]
//! carry `(kind, classes, feature)` *inside* the bytes, so nothing can
//! drift out of sync. These shims remain for callers holding old flat
//! streams; they delegate to the same `gp_nn::serialize` weight format
//! the artifact payload embeds.

use crate::train::{ModelKind, TrainedModel};
use gp_models::features::FeatureConfig;
use gp_nn::serialize::{load_params, save_params, LoadParamsError};

impl TrainedModel {
    /// Serialises the model parameters into a raw weight stream with no
    /// architecture metadata.
    ///
    /// Note this no longer requires `&mut self`: parameter export reads
    /// weights through [`gp_nn::Parameterized::visit_params`].
    #[deprecated(note = "use save_artifact(): artifacts are self-describing and versioned")]
    pub fn save(&self) -> Vec<u8> {
        save_params(self.model_ref()).to_vec()
    }

    /// Restores a model saved by [`TrainedModel::save`].
    ///
    /// The architecture is rebuilt from the *out-of-band*
    /// `(kind, classes, feature)` arguments; the stream only holds
    /// weights, so supplying different arguments than at save time
    /// silently changes what the weights mean (the reason this API is
    /// deprecated in favour of [`TrainedModel::load_artifact`]).
    ///
    /// # Errors
    ///
    /// Returns [`LoadParamsError`] if the stream is malformed or was
    /// saved from a different architecture.
    #[deprecated(note = "use load_artifact(): artifacts are self-describing and versioned")]
    pub fn load(
        kind: ModelKind,
        classes: usize,
        feature: FeatureConfig,
        bytes: &[u8],
    ) -> Result<TrainedModel, LoadParamsError> {
        let mut model = TrainedModel::untrained(kind, classes, feature);
        load_params(model.model_mut(), bytes)?;
        Ok(model)
    }
}

#[cfg(test)]
#[allow(deprecated)] // the shims' own coverage
mod tests {
    use super::*;
    use crate::train::{train_classifier, TrainConfig};
    use gp_pipeline::LabeledSample;
    use gp_pointcloud::{Point, PointCloud, Vec3};

    fn samples() -> Vec<LabeledSample> {
        (0..8)
            .map(|i| {
                let user = i % 2;
                let shift = if user == 0 { -0.3 } else { 0.3 };
                let cloud: PointCloud = (0..20)
                    .map(|k| {
                        let t = k as f64 * 0.3 + i as f64 * 0.05;
                        Point::new(
                            Vec3::new(shift + t.sin() * 0.2, 1.2, 1.0 + t.cos() * 0.2),
                            (t * 1.2).sin(),
                            10.0,
                        )
                    })
                    .collect();
                LabeledSample {
                    cloud: cloud.clone(),
                    frame_clouds: vec![cloud; 3],
                    duration_frames: 18,
                    gesture: 0,
                    user,
                }
            })
            .collect()
    }

    fn quick() -> TrainConfig {
        TrainConfig {
            epochs: 6,
            augment: None,
            feature: FeatureConfig {
                num_points: 20,
                ..FeatureConfig::default()
            },
            ..TrainConfig::default()
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let data = samples();
        let pairs: Vec<(&LabeledSample, usize)> = data.iter().map(|s| (s, s.user)).collect();
        for kind in [ModelKind::GesIdNet, ModelKind::PointNet, ModelKind::Lstm] {
            let model = train_classifier(
                &pairs,
                2,
                &TrainConfig {
                    model: kind,
                    ..quick()
                },
            );
            let bytes = model.save();
            let restored = TrainedModel::load(kind, 2, quick().feature, &bytes).expect("load");
            for s in &data {
                assert_eq!(
                    model.probabilities(s),
                    restored.probabilities(s),
                    "{} roundtrip mismatch",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn loading_into_wrong_architecture_fails() {
        let data = samples();
        let pairs: Vec<(&LabeledSample, usize)> = data.iter().map(|s| (s, s.user)).collect();
        let model = train_classifier(&pairs, 2, &quick());
        let bytes = model.save();
        assert!(TrainedModel::load(ModelKind::PointNet, 2, quick().feature, &bytes).is_err());
        assert!(TrainedModel::load(ModelKind::GesIdNet, 5, quick().feature, &bytes).is_err());
    }
}
