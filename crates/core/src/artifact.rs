//! Self-describing, versioned artifacts: the persistence layer of the
//! GesturePrint system.
//!
//! Every byte stream this workspace persists — trained models, full
//! two-stage systems, evaluation reports — travels inside one envelope:
//!
//! ```text
//! Artifact {
//!     schema_version,   // readers reject versions from the future
//!     kind,             // "gestureprint.model" | ".system" | ".report" | ...
//!     created_rev,      // crate version that wrote the artifact
//!     payload,          // kind-specific gp_codec::Value
//! }
//! ```
//!
//! serialised as compact [`gp_codec`] JSON. The envelope is what makes
//! artifacts *self-describing*: [`TrainedModel::load_artifact`] and
//! [`GesturePrint::load_artifact`] rebuild a model from bytes alone —
//! architecture kind, class count, feature configuration and the
//! per-sample encode seed all ride inside the payload, so no
//! out-of-band arguments can drift out of sync with the weights.
//!
//! Versioning policy: `schema_version` bumps only on breaking payload
//! changes; additive fields decode from older artifacts via
//! [`gp_codec::Value::get_or`] defaults. A reader accepts any version
//! `<=` its own [`SCHEMA_VERSION`] and fails typed
//! ([`ArtifactError::FutureSchema`]) on newer ones, so old binaries
//! never misread new state silently.

use crate::system::{GesturePrint, IdentificationMode};
use crate::train::{ModelKind, TrainedModel};
use gp_codec::{binary, json, Decode, DecodeError, Encode, Value};
use gp_models::features::FeatureConfig;
use gp_nn::serialize::{load_params, save_params, LoadParamsError};
use gp_rd::RdFeatureConfig;

/// The envelope schema version this build reads and writes.
pub const SCHEMA_VERSION: u32 = 1;

/// Magic prefix of binary-format artifacts. The first byte is not a
/// legal UTF-8 start byte, so no JSON artifact can collide with it —
/// [`Artifact::from_bytes`] sniffs this prefix to route between the
/// two byte backends.
pub const BINARY_MAGIC: [u8; 4] = [0x8F, b'G', b'P', b'B'];

/// Byte backend an artifact is serialised with. Readers accept both
/// regardless of what was written; the format is a storage choice, not
/// a schema difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArtifactFormat {
    /// Compact [`gp_codec::json`] text (the historical default; weight
    /// streams ride as base64).
    #[default]
    Json,
    /// [`BINARY_MAGIC`] + the canonical [`gp_codec::binary`] encoding —
    /// weight streams ride as raw bytes, ~25-30% smaller end to end.
    Binary,
}

/// Well-known artifact kinds.
pub mod kinds {
    /// A single trained classifier ([`super::ModelArtifact`]).
    pub const MODEL: &str = "gestureprint.model";
    /// A full two-stage system (gesture model + identifiers + config).
    pub const SYSTEM: &str = "gestureprint.system";
    /// An evaluation report (metrics, figure data).
    pub const REPORT: &str = "gestureprint.report";
    /// A telemetry snapshot (`gp-telemetry` registry export).
    pub const TELEMETRY: &str = "gestureprint.telemetry";
    /// An enrollment gallery (`gp-store` per-user embedding centroids).
    pub const GALLERY: &str = "gestureprint.gallery";
}

/// Errors from reading an artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// The bytes were not valid UTF-8 / JSON / envelope shape.
    Malformed(String),
    /// The artifact is a different kind than the caller asked for.
    WrongKind {
        /// Kind the caller expected.
        expected: String,
        /// Kind stored in the envelope.
        found: String,
    },
    /// The artifact was written by a newer schema than this build reads.
    FutureSchema {
        /// Version stored in the envelope.
        stored: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// The payload decoded, but its weight stream does not match the
    /// declared architecture.
    Params(LoadParamsError),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Malformed(m) => write!(f, "malformed artifact: {m}"),
            ArtifactError::WrongKind { expected, found } => {
                write!(
                    f,
                    "artifact kind mismatch: expected '{expected}', found '{found}'"
                )
            }
            ArtifactError::FutureSchema { stored, supported } => write!(
                f,
                "artifact schema v{stored} is newer than this build's v{supported}"
            ),
            ArtifactError::Params(e) => write!(f, "weight stream mismatch: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<DecodeError> for ArtifactError {
    fn from(e: DecodeError) -> Self {
        ArtifactError::Malformed(e.to_string())
    }
}

impl From<LoadParamsError> for ArtifactError {
    fn from(e: LoadParamsError) -> Self {
        ArtifactError::Params(e)
    }
}

/// The versioned envelope wrapping every persisted payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Envelope schema version at write time.
    pub schema_version: u32,
    /// What the payload is (see [`kinds`]).
    pub kind: String,
    /// The crate version that wrote the artifact (informational; not
    /// validated on load).
    pub created_rev: String,
    /// Kind-specific payload.
    pub payload: Value,
}

impl Artifact {
    /// Wraps `payload` in a current-version envelope.
    pub fn new(kind: &str, payload: Value) -> Artifact {
        Artifact {
            schema_version: SCHEMA_VERSION,
            kind: kind.to_owned(),
            created_rev: env!("CARGO_PKG_VERSION").to_owned(),
            payload,
        }
    }

    /// Serialises the envelope as compact JSON bytes.
    ///
    /// # Panics
    ///
    /// Panics if the payload contains non-finite floats or nesting past
    /// the codec limit — both are producer bugs, not data conditions
    /// (use [`gp_codec::json::to_json`] directly to handle them as
    /// errors).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.clone().into_bytes()
    }

    /// Consuming form of [`Artifact::to_bytes`]: serialises without
    /// cloning the payload — the save paths use this, since model
    /// payloads carry multi-megabyte weight streams.
    ///
    /// # Panics
    ///
    /// Same contract as [`Artifact::to_bytes`].
    pub fn into_bytes(self) -> Vec<u8> {
        self.into_bytes_with(ArtifactFormat::Json)
    }

    /// Serialises the envelope in the chosen byte format.
    ///
    /// # Panics
    ///
    /// Panics on payloads past the codec nesting limit; additionally,
    /// JSON cannot carry non-finite floats (the binary format can).
    pub fn into_bytes_with(self, format: ArtifactFormat) -> Vec<u8> {
        let envelope = Value::record([
            ("schema_version", self.schema_version.encode()),
            ("kind", self.kind.encode()),
            ("created_rev", self.created_rev.encode()),
            ("payload", self.payload),
        ]);
        match format {
            ArtifactFormat::Json => json::to_json(&envelope)
                .expect("artifact payloads are finite and bounded")
                .into_bytes(),
            ArtifactFormat::Binary => {
                let body = binary::to_binary(&envelope).expect("artifact payloads are bounded");
                let mut out = Vec::with_capacity(BINARY_MAGIC.len() + body.len());
                out.extend_from_slice(&BINARY_MAGIC);
                out.extend_from_slice(&body);
                out
            }
        }
    }

    /// The byte format `bytes` was serialised with, if recognisable.
    pub fn sniff_format(bytes: &[u8]) -> Option<ArtifactFormat> {
        if bytes.starts_with(&BINARY_MAGIC) {
            Some(ArtifactFormat::Binary)
        } else if bytes.first() == Some(&b'{') {
            Some(ArtifactFormat::Json)
        } else {
            None
        }
    }

    /// Parses an envelope from bytes, enforcing the version policy.
    /// Both byte formats load through here — the [`BINARY_MAGIC`]
    /// prefix routes to the binary decoder, everything else is treated
    /// as JSON text.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Malformed`] for bytes that are not a valid
    /// envelope, [`ArtifactError::FutureSchema`] for artifacts written
    /// by a newer schema.
    pub fn from_bytes(bytes: &[u8]) -> Result<Artifact, ArtifactError> {
        let value = if let Some(body) = bytes.strip_prefix(&BINARY_MAGIC[..]) {
            binary::from_binary(body)
                .map_err(|e| ArtifactError::Malformed(format!("bad binary envelope: {e}")))?
        } else {
            let text = std::str::from_utf8(bytes)
                .map_err(|e| ArtifactError::Malformed(format!("not UTF-8: {e}")))?;
            json::from_json(text).map_err(|e| ArtifactError::Malformed(format!("bad JSON: {e}")))?
        };
        let schema_version: u32 = value.get("schema_version")?;
        if schema_version > SCHEMA_VERSION {
            return Err(ArtifactError::FutureSchema {
                stored: schema_version,
                supported: SCHEMA_VERSION,
            });
        }
        Ok(Artifact {
            schema_version,
            kind: value.get("kind")?,
            created_rev: value.get("created_rev")?,
            payload: value.field("payload")?.clone(),
        })
    }

    /// Fails with [`ArtifactError::WrongKind`] unless the envelope
    /// carries `kind`.
    ///
    /// # Errors
    ///
    /// See above.
    pub fn expect_kind(&self, kind: &str) -> Result<(), ArtifactError> {
        if self.kind == kind {
            Ok(())
        } else {
            Err(ArtifactError::WrongKind {
                expected: kind.to_owned(),
                found: self.kind.clone(),
            })
        }
    }
}

/// The payload of a [`kinds::MODEL`] artifact: everything needed to
/// rebuild a [`TrainedModel`] — architecture kind, class count, feature
/// configuration, the deterministic encode seed, and the flat weight
/// stream of [`gp_nn::serialize`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// Architecture to rebuild.
    pub kind: ModelKind,
    /// Class count of the head.
    pub classes: usize,
    /// Feature encoding the model was trained with.
    pub feature: FeatureConfig,
    /// RD feature encoding (meaningful for RD architectures; emitted
    /// only for them, so point-cloud artifacts stay byte-identical to
    /// the pre-RD schema).
    pub rd_feature: RdFeatureConfig,
    /// Seed of the deterministic per-sample encoding.
    pub encode_seed: u64,
    /// `gp_nn::serialize` flat weight stream.
    pub weights: Vec<u8>,
}

impl ModelArtifact {
    /// Snapshots a trained model's architecture + weights.
    pub fn from_model(model: &TrainedModel) -> ModelArtifact {
        ModelArtifact {
            kind: model.kind(),
            classes: model.classes(),
            feature: model.feature().clone(),
            rd_feature: model.rd_feature().clone(),
            encode_seed: model.encode_seed(),
            weights: save_params(model.model_ref()).to_vec(),
        }
    }

    /// Rebuilds the model: architecture from the declared
    /// `(kind, classes, feature)`, weights from the stream. RD kinds
    /// rebuild through the RD shell ([`TrainedModel::untrained_rd`]);
    /// everything else through the point-cloud shell.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Params`] when the stream does not match the
    /// declared architecture (truncated, corrupt, or mislabeled).
    pub fn into_model(&self) -> Result<TrainedModel, ArtifactError> {
        let mut model = if self.kind.is_rd() {
            TrainedModel::untrained_rd(self.classes, self.rd_feature.clone())
        } else {
            TrainedModel::untrained(self.kind, self.classes, self.feature.clone())
        };
        model.set_encode_seed(self.encode_seed);
        load_params(model.model_mut(), &self.weights)?;
        Ok(model)
    }
}

impl ModelArtifact {
    /// Consuming form of [`Encode::encode`]: moves the weight stream
    /// into the value instead of cloning it.
    pub fn into_value(self) -> Value {
        let mut fields = vec![
            ("kind", self.kind.encode()),
            ("classes", self.classes.encode()),
            ("feature", self.feature.encode()),
            ("encode_seed", self.encode_seed.encode()),
            ("weights", Value::Bytes(self.weights)),
        ];
        if self.kind.is_rd() {
            fields.push(("rd_feature", self.rd_feature.encode()));
        }
        Value::record(fields)
    }
}

impl Encode for ModelArtifact {
    fn encode(&self) -> Value {
        self.clone().into_value()
    }
}

impl Decode for ModelArtifact {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        Ok(ModelArtifact {
            kind: value.get("kind")?,
            classes: value.get("classes")?,
            feature: value.get("feature")?,
            rd_feature: value.get_or("rd_feature", RdFeatureConfig::default())?,
            encode_seed: value.get("encode_seed")?,
            weights: value.field("weights")?.as_bytes()?.to_vec(),
        })
    }
}

impl TrainedModel {
    /// Serialises the model as a self-describing [`kinds::MODEL`]
    /// artifact. Unlike the deprecated flat [`TrainedModel::save`], the
    /// result carries its own architecture metadata and needs no
    /// out-of-band arguments to load.
    pub fn save_artifact(&self) -> Vec<u8> {
        self.save_artifact_with(ArtifactFormat::Json)
    }

    /// [`TrainedModel::save_artifact`] in the chosen byte format; both
    /// load through the same [`TrainedModel::load_artifact`].
    pub fn save_artifact_with(&self, format: ArtifactFormat) -> Vec<u8> {
        Artifact::new(kinds::MODEL, ModelArtifact::from_model(self).into_value())
            .into_bytes_with(format)
    }

    /// Rebuilds a model from [`TrainedModel::save_artifact`] bytes
    /// alone.
    ///
    /// # Errors
    ///
    /// See [`ArtifactError`]: malformed bytes, wrong artifact kind, a
    /// future schema version, or a weight/architecture mismatch all
    /// fail typed — never with a panic.
    pub fn load_artifact(bytes: &[u8]) -> Result<TrainedModel, ArtifactError> {
        let artifact = Artifact::from_bytes(bytes)?;
        artifact.expect_kind(kinds::MODEL)?;
        ModelArtifact::decode(&artifact.payload)?.into_model()
    }
}

impl GesturePrint {
    /// Serialises the full two-stage system — gesture model, every
    /// identifier, mode and class counts — as one [`kinds::SYSTEM`]
    /// artifact.
    pub fn save_artifact(&self) -> Vec<u8> {
        self.save_artifact_with(ArtifactFormat::Json)
    }

    /// [`GesturePrint::save_artifact`] in the chosen byte format; both
    /// load through the same [`GesturePrint::load_artifact`].
    pub fn save_artifact_with(&self, format: ArtifactFormat) -> Vec<u8> {
        let identifiers: Vec<Value> = self
            .identifiers()
            .iter()
            .map(|m| ModelArtifact::from_model(m).into_value())
            .collect();
        let payload = Value::record([
            ("mode", self.mode().encode()),
            ("gestures", self.gestures().encode()),
            ("users", self.users().encode()),
            (
                "gesture_model",
                ModelArtifact::from_model(self.gesture_model()).into_value(),
            ),
            ("identifiers", Value::Seq(identifiers)),
        ]);
        Artifact::new(kinds::SYSTEM, payload).into_bytes_with(format)
    }

    /// Reconstructs a trained system from
    /// [`GesturePrint::save_artifact`] bytes alone, with bit-identical
    /// [`GesturePrint::infer`] results.
    ///
    /// # Errors
    ///
    /// See [`ArtifactError`]; additionally fails as
    /// [`ArtifactError::Malformed`] when the payload's parts disagree
    /// (identifier count vs mode, class counts vs declared sizes).
    pub fn load_artifact(bytes: &[u8]) -> Result<GesturePrint, ArtifactError> {
        let artifact = Artifact::from_bytes(bytes)?;
        artifact.expect_kind(kinds::SYSTEM)?;
        let payload = &artifact.payload;
        let mode: IdentificationMode = payload.get("mode")?;
        let gestures: usize = payload.get("gestures")?;
        let users: usize = payload.get("users")?;
        let gesture_model = ModelArtifact::decode(payload.field("gesture_model")?)?.into_model()?;
        let identifiers: Vec<TrainedModel> = payload
            .field("identifiers")?
            .as_seq()
            .map_err(ArtifactError::from)?
            .iter()
            .map(|v| ModelArtifact::decode(v)?.into_model())
            .collect::<Result<_, _>>()?;

        let expected_identifiers = match mode {
            IdentificationMode::Parallel => 1,
            IdentificationMode::Serialized => gestures,
        };
        if identifiers.len() != expected_identifiers {
            return Err(ArtifactError::Malformed(format!(
                "{} mode expects {expected_identifiers} identifier(s), artifact has {}",
                mode.tag(),
                identifiers.len()
            )));
        }
        if gesture_model.classes() != gestures {
            return Err(ArtifactError::Malformed(format!(
                "gesture model has {} classes, system declares {gestures} gestures",
                gesture_model.classes()
            )));
        }
        if let Some(bad) = identifiers.iter().find(|m| m.classes() != users) {
            return Err(ArtifactError::Malformed(format!(
                "identifier has {} classes, system declares {users} users",
                bad.classes()
            )));
        }
        if let Some(bad) = identifiers
            .iter()
            .find(|m| m.backend() != gesture_model.backend())
        {
            return Err(ArtifactError::Malformed(format!(
                "identifier backend {:?} disagrees with gesture model backend {:?}",
                bad.backend(),
                gesture_model.backend()
            )));
        }
        Ok(GesturePrint::from_parts(
            gesture_model,
            identifiers,
            mode,
            gestures,
            users,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::GesturePrintConfig;
    use crate::train::{train_classifier, TrainConfig};
    use gp_pipeline::LabeledSample;
    use gp_pointcloud::{Point, PointCloud, Vec3};

    /// 2 gestures × 2 users toy world (mirrors the system tests).
    fn toy_samples(reps: usize) -> Vec<LabeledSample> {
        let mut out = Vec::new();
        for gesture in 0..2usize {
            for user in 0..2usize {
                for rep in 0..reps {
                    let shift = if user == 0 { -0.3 } else { 0.3 };
                    let cloud: PointCloud = (0..24)
                        .map(|i| {
                            let t = i as f64 * 0.3 + rep as f64 * 0.07;
                            let (dx, dz) = if gesture == 0 {
                                (t.sin() * 0.35, 0.02)
                            } else {
                                (0.02, t.sin() * 0.35)
                            };
                            Point::new(
                                Vec3::new(shift + dx, 1.2 + t.cos() * 0.1, 1.0 + dz),
                                (t * 1.3).sin() * (0.8 + user as f64 * 0.6),
                                14.0,
                            )
                        })
                        .collect();
                    out.push(LabeledSample {
                        cloud: cloud.clone(),
                        frame_clouds: vec![cloud; 4],
                        duration_frames: 18 + 4 * user,
                        gesture,
                        user,
                    });
                }
            }
        }
        out
    }

    fn quick(kind: ModelKind) -> TrainConfig {
        TrainConfig {
            model: kind,
            epochs: 6,
            augment: None,
            feature: gp_models::features::FeatureConfig {
                num_points: 24,
                ..Default::default()
            },
            // Non-default seed: the artifact must carry the encode seed
            // for predictions to survive the round trip bit-exactly.
            seed: 1234,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn model_artifact_roundtrips_all_kinds_from_bytes_alone() {
        let samples = toy_samples(3);
        let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        for kind in ModelKind::ALL.into_iter().filter(|k| !k.is_rd()) {
            let model = train_classifier(&pairs, 2, &quick(kind));
            let bytes = model.save_artifact();
            let restored = TrainedModel::load_artifact(&bytes)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert_eq!(restored.kind(), kind);
            assert_eq!(restored.classes(), 2);
            for s in &samples {
                assert_eq!(
                    model.probabilities(s),
                    restored.probabilities(s),
                    "{} prediction drifted across the artifact round trip",
                    kind.name()
                );
            }
        }
    }

    /// RD toy world mirroring the system tests.
    fn toy_rd_samples(reps: usize) -> Vec<gp_rd::RdLabeledSample> {
        let cfg = gp_rd::RdConfig::default();
        let mut out = Vec::new();
        for gesture in 0..2usize {
            for user in 0..2usize {
                for rep in 0..reps {
                    let d = if user == 0 { 4 } else { 12 };
                    let r0 = if gesture == 0 { 10 } else { 36 };
                    let frames: Vec<gp_rd::RdFrame> = (0..6)
                        .map(|i| {
                            let mut f = gp_rd::RdFrame::zeros(&cfg, i as f64 * 0.1);
                            f.power[d * cfg.range_bins + r0 + (rep + i) % 4] = 40.0 + rep as f64;
                            f
                        })
                        .collect();
                    out.push(gp_rd::RdLabeledSample {
                        frames,
                        duration_frames: 6,
                        gesture,
                        user,
                    });
                }
            }
        }
        out
    }

    fn quick_rd() -> TrainConfig {
        TrainConfig {
            model: ModelKind::RdNet,
            epochs: 4,
            augment: None,
            seed: 1234,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn rd_model_artifact_roundtrips_both_formats() {
        use crate::train::train_rd_classifier;
        let samples = toy_rd_samples(3);
        let pairs: Vec<(&gp_rd::RdLabeledSample, usize)> =
            samples.iter().map(|s| (s, s.user)).collect();
        let model = train_rd_classifier(&pairs, 2, &quick_rd());
        for format in [ArtifactFormat::Json, ArtifactFormat::Binary] {
            let bytes = model.save_artifact_with(format);
            let restored =
                TrainedModel::load_artifact(&bytes).unwrap_or_else(|e| panic!("{format:?}: {e}"));
            assert_eq!(restored.kind(), ModelKind::RdNet);
            assert_eq!(restored.rd_feature(), model.rd_feature());
            for s in &samples {
                assert_eq!(
                    model.probabilities_rd(s),
                    restored.probabilities_rd(s),
                    "{format:?} RD prediction drifted across the round trip"
                );
            }
        }
    }

    #[test]
    fn rd_artifact_carries_its_feature_config() {
        use crate::train::train_rd_classifier;
        let samples = toy_rd_samples(2);
        let pairs: Vec<(&gp_rd::RdLabeledSample, usize)> =
            samples.iter().map(|s| (s, s.user)).collect();
        let cfg = TrainConfig {
            rd_feature: Some(RdFeatureConfig {
                max_frames: 12,
                ..RdFeatureConfig::default()
            }),
            ..quick_rd()
        };
        let model = train_rd_classifier(&pairs, 2, &cfg);
        let restored = TrainedModel::load_artifact(&model.save_artifact()).unwrap();
        assert_eq!(restored.rd_feature().max_frames, 12);
        // Point-cloud artifacts must not grow the new field: the
        // golden-fixture compat gate depends on byte-stable payloads.
        let samples = toy_samples(2);
        let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        let point = train_classifier(&pairs, 2, &quick(ModelKind::PointNet));
        let payload = ModelArtifact::from_model(&point).into_value();
        assert!(payload
            .as_map()
            .unwrap()
            .iter()
            .all(|(k, _)| k != "rd_feature"));
    }

    #[test]
    fn rd_system_artifact_roundtrips() {
        let samples = toy_rd_samples(3);
        let refs: Vec<&gp_rd::RdLabeledSample> = samples.iter().collect();
        for mode in [IdentificationMode::Serialized, IdentificationMode::Parallel] {
            let system = GesturePrint::train_rd(
                &refs,
                2,
                2,
                &GesturePrintConfig {
                    mode,
                    train: quick_rd(),
                    threads: 2,
                },
            );
            let bytes = system.save_artifact_with(ArtifactFormat::Binary);
            let restored = GesturePrint::load_artifact(&bytes).expect("load RD system");
            assert_eq!(
                restored.backend(),
                crate::train::SensingBackend::RangeDoppler
            );
            for s in &samples {
                assert_eq!(system.infer_rd(s), restored.infer_rd(s), "{mode:?}");
            }
        }
    }

    #[test]
    fn system_artifact_roundtrips_both_modes() {
        let samples = toy_samples(4);
        let refs: Vec<&LabeledSample> = samples.iter().collect();
        // Both identification modes, and — in serialized mode — every
        // classic architecture: a system must reconstruct from bytes
        // alone with bit-identical inference for each ModelKind.
        let cases = [
            (IdentificationMode::Serialized, ModelKind::GesIdNet),
            (IdentificationMode::Serialized, ModelKind::PointNet),
            (IdentificationMode::Serialized, ModelKind::Lstm),
            (IdentificationMode::Parallel, ModelKind::GesIdNet),
        ];
        for (mode, kind) in cases {
            let system = GesturePrint::train(
                &refs,
                2,
                2,
                &GesturePrintConfig {
                    mode,
                    train: quick(kind),
                    threads: 2,
                },
            );
            let bytes = system.save_artifact();
            let restored = GesturePrint::load_artifact(&bytes).expect("load");
            assert_eq!(restored.mode(), mode);
            assert_eq!(restored.gestures(), 2);
            assert_eq!(restored.users(), 2);
            for s in &samples {
                assert_eq!(system.infer(s), restored.infer(s), "{mode:?} {kind:?}");
            }
            // The batched path goes through the same restored weights.
            assert_eq!(system.infer_batch(&refs), restored.infer_batch(&refs));
        }
    }

    #[test]
    fn wrong_kind_fails_typed() {
        let samples = toy_samples(2);
        let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        let model = train_classifier(&pairs, 2, &quick(ModelKind::PointNet));
        let bytes = model.save_artifact();
        match GesturePrint::load_artifact(&bytes) {
            Err(ArtifactError::WrongKind { expected, found }) => {
                assert_eq!(expected, kinds::SYSTEM);
                assert_eq!(found, kinds::MODEL);
            }
            other => panic!("expected WrongKind, got {other:?}"),
        }
    }

    #[test]
    fn future_schema_fails_typed() {
        let artifact = Artifact {
            schema_version: SCHEMA_VERSION + 1,
            kind: kinds::MODEL.into(),
            created_rev: "test".into(),
            payload: Value::Null,
        };
        match Artifact::from_bytes(&artifact.to_bytes()) {
            Err(ArtifactError::FutureSchema { stored, supported }) => {
                assert_eq!(stored, SCHEMA_VERSION + 1);
                assert_eq!(supported, SCHEMA_VERSION);
            }
            other => panic!("expected FutureSchema, got {other:?}"),
        }
    }

    #[test]
    fn malformed_bytes_fail_typed_never_panic() {
        for bytes in [
            &b""[..],
            b"garbage",
            b"{}",
            b"{\"schema_version\":1}",
            &[0xFF, 0xFE, 0x00],
        ] {
            assert!(
                matches!(
                    TrainedModel::load_artifact(bytes),
                    Err(ArtifactError::Malformed(_))
                ),
                "{bytes:?}"
            );
        }
    }

    #[test]
    fn truncated_and_corrupt_weight_streams_fail_typed() {
        let samples = toy_samples(2);
        let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        let model = train_classifier(&pairs, 2, &quick(ModelKind::PointNet));

        // Truncate the weight stream inside an otherwise valid payload.
        let mut snapshot = ModelArtifact::from_model(&model);
        snapshot.weights.truncate(snapshot.weights.len() / 2);
        let bytes = Artifact::new(kinds::MODEL, snapshot.encode()).to_bytes();
        assert!(matches!(
            TrainedModel::load_artifact(&bytes),
            Err(ArtifactError::Params(_))
        ));

        // Mislabel the architecture: weights no longer fit the kind.
        let mut mislabeled = ModelArtifact::from_model(&model);
        mislabeled.kind = ModelKind::Lstm;
        let bytes = Artifact::new(kinds::MODEL, mislabeled.encode()).to_bytes();
        assert!(matches!(
            TrainedModel::load_artifact(&bytes),
            Err(ArtifactError::Params(_))
        ));
    }

    #[test]
    fn system_artifact_consistency_checks() {
        let samples = toy_samples(2);
        let refs: Vec<&LabeledSample> = samples.iter().collect();
        let system = GesturePrint::train(
            &refs,
            2,
            2,
            &GesturePrintConfig {
                mode: IdentificationMode::Serialized,
                train: quick(ModelKind::PointNet),
                threads: 1,
            },
        );
        let artifact = Artifact::from_bytes(&system.save_artifact()).unwrap();

        // Drop one identifier: count no longer matches serialized mode.
        let mut map = artifact.payload.as_map().unwrap().clone();
        if let Some(Value::Seq(ids)) = map.get_mut("identifiers") {
            ids.pop();
        }
        let bytes = Artifact::new(kinds::SYSTEM, Value::Map(map)).to_bytes();
        assert!(matches!(
            GesturePrint::load_artifact(&bytes),
            Err(ArtifactError::Malformed(m)) if m.contains("identifier")
        ));

        // Declare a different gesture count than the model's head.
        let mut map = artifact.payload.as_map().unwrap().clone();
        map.insert("gestures".into(), Value::Int(5));
        let bytes = Artifact::new(kinds::SYSTEM, Value::Map(map)).to_bytes();
        assert!(GesturePrint::load_artifact(&bytes).is_err());
    }

    #[test]
    fn binary_artifacts_decode_bit_identical_to_json() {
        let samples = toy_samples(3);
        let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        let model = train_classifier(&pairs, 2, &quick(ModelKind::GesIdNet));
        let json_bytes = model.save_artifact();
        let bin_bytes = model.save_artifact_with(ArtifactFormat::Binary);
        assert_eq!(
            Artifact::sniff_format(&json_bytes),
            Some(ArtifactFormat::Json)
        );
        assert_eq!(
            Artifact::sniff_format(&bin_bytes),
            Some(ArtifactFormat::Binary)
        );
        // Same envelope, either byte backend.
        assert_eq!(
            Artifact::from_bytes(&bin_bytes).unwrap(),
            Artifact::from_bytes(&json_bytes).unwrap()
        );
        let from_json = TrainedModel::load_artifact(&json_bytes).unwrap();
        let from_bin = TrainedModel::load_artifact(&bin_bytes).unwrap();
        for s in &samples {
            assert_eq!(from_json.probabilities(s), from_bin.probabilities(s));
            assert_eq!(model.probabilities(s), from_bin.probabilities(s));
        }
    }

    #[test]
    fn binary_model_artifacts_are_at_least_25_percent_smaller() {
        // The size-regression gate: killing the base64 tax on the
        // weight stream must hold ≥25% end to end, not just on paper.
        let samples = toy_samples(2);
        let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        let model = train_classifier(&pairs, 2, &quick(ModelKind::GesIdNet));
        let json_len = model.save_artifact().len();
        let bin_len = model.save_artifact_with(ArtifactFormat::Binary).len();
        assert!(
            (bin_len as f64) <= (json_len as f64) * 0.75,
            "binary model artifact regressed: {bin_len} vs {json_len} JSON bytes"
        );
    }

    #[test]
    fn binary_system_artifact_roundtrips() {
        let samples = toy_samples(3);
        let refs: Vec<&LabeledSample> = samples.iter().collect();
        let system = GesturePrint::train(
            &refs,
            2,
            2,
            &GesturePrintConfig {
                mode: IdentificationMode::Serialized,
                train: quick(ModelKind::PointNet),
                threads: 2,
            },
        );
        let bytes = system.save_artifact_with(ArtifactFormat::Binary);
        let restored = GesturePrint::load_artifact(&bytes).expect("load binary system");
        for s in &samples {
            assert_eq!(system.infer(s), restored.infer(s));
        }
    }

    #[test]
    fn truncated_binary_artifacts_fail_typed() {
        let artifact = Artifact::new(kinds::REPORT, Value::record([("x", Value::Int(1))]));
        let bytes = artifact.into_bytes_with(ArtifactFormat::Binary);
        for cut in [BINARY_MAGIC.len(), BINARY_MAGIC.len() + 1, bytes.len() - 1] {
            assert!(matches!(
                Artifact::from_bytes(&bytes[..cut]),
                Err(ArtifactError::Malformed(_))
            ));
        }
        // Bare magic-less binary body is not UTF-8 → Malformed, no panic.
        assert!(matches!(
            Artifact::from_bytes(&bytes[BINARY_MAGIC.len()..]),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn envelope_fields_survive() {
        let artifact = Artifact::new(kinds::REPORT, Value::record([("x", Value::Int(1))]));
        let back = Artifact::from_bytes(&artifact.to_bytes()).unwrap();
        assert_eq!(back, artifact);
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.created_rev, env!("CARGO_PKG_VERSION"));
        assert!(back.expect_kind(kinds::REPORT).is_ok());
    }
}
