//! Classifier training with the paper's augmentation scheme.

use gp_models::features::{encode, FeatureConfig, ModelInput};
use gp_models::{GesIDNet, GesIDNetConfig, LstmNet, PointModel, PointNet, ProfileCnn};
use gp_nn::{softmax, Adam, Parameterized};
use gp_pipeline::{Augmenter, AugmenterConfig, LabeledSample};
use gp_rd::{
    extract_sample as rd_extract_sample, RdFeatureConfig, RdInput, RdLabeledSample, RdNet,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The sensing representation a model (or a whole system) consumes.
///
/// GesturePrint's two-stage classify-then-identify structure is
/// representation-agnostic: the same [`TrainedModel`] /
/// [`crate::GesturePrint`] machinery dispatches on this enum, so a
/// point-cloud system and a range-Doppler system differ only in which
/// encoder and network run behind the shared surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensingBackend {
    /// Detected point clouds (`gp-pipeline` samples, the paper's path).
    PointCloud,
    /// Complex range-Doppler maps (`gp-rd` samples).
    RangeDoppler,
}

impl SensingBackend {
    /// Stable serialization tag (persisted in artifacts; do not rename).
    pub fn tag(self) -> &'static str {
        match self {
            SensingBackend::PointCloud => "point_cloud",
            SensingBackend::RangeDoppler => "range_doppler",
        }
    }
}

/// A borrowed sample of either sensing representation — the argument
/// type of the backend-agnostic inference surface
/// ([`TrainedModel::probabilities_of`] and friends).
#[derive(Debug, Clone, Copy)]
pub enum SampleRef<'a> {
    /// A point-cloud sample.
    Cloud(&'a LabeledSample),
    /// A range-Doppler sample.
    Rd(&'a RdLabeledSample),
}

impl SampleRef<'_> {
    /// The backend this sample belongs to.
    pub fn backend(&self) -> SensingBackend {
        match self {
            SampleRef::Cloud(_) => SensingBackend::PointCloud,
            SampleRef::Rd(_) => SensingBackend::RangeDoppler,
        }
    }
}

impl<'a> From<&'a LabeledSample> for SampleRef<'a> {
    fn from(s: &'a LabeledSample) -> Self {
        SampleRef::Cloud(s)
    }
}

impl<'a> From<&'a RdLabeledSample> for SampleRef<'a> {
    fn from(s: &'a RdLabeledSample) -> Self {
        SampleRef::Rd(s)
    }
}

/// Which architecture to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The paper's GesIDNet.
    GesIdNet,
    /// GesIDNet with the attention fusion disabled (ablation arm).
    GesIdNetNoFusion,
    /// PointNet-style baseline.
    PointNet,
    /// Position–Doppler profile CNN baseline.
    ProfileCnn,
    /// Temporal LSTM baseline.
    Lstm,
    /// Conv+recurrent range-Doppler classifier (`gp-rd` backend).
    RdNet,
}

impl ModelKind {
    /// Every architecture, in declaration order.
    pub const ALL: [ModelKind; 6] = [
        ModelKind::GesIdNet,
        ModelKind::GesIdNetNoFusion,
        ModelKind::PointNet,
        ModelKind::ProfileCnn,
        ModelKind::Lstm,
        ModelKind::RdNet,
    ];

    /// Stable serialization tag (persisted in artifacts; do not rename).
    pub fn tag(self) -> &'static str {
        match self {
            ModelKind::GesIdNet => "gesidnet",
            ModelKind::GesIdNetNoFusion => "gesidnet_no_fusion",
            ModelKind::PointNet => "pointnet",
            ModelKind::ProfileCnn => "profile_cnn",
            ModelKind::Lstm => "lstm",
            ModelKind::RdNet => "rdnet",
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::GesIdNet => "GesIDNet",
            ModelKind::GesIdNetNoFusion => "GesIDNet w/o fusion",
            ModelKind::PointNet => "PointNet",
            ModelKind::ProfileCnn => "ProfileCNN",
            ModelKind::Lstm => "LSTM",
            ModelKind::RdNet => "RdNet",
        }
    }

    /// The sensing representation this architecture consumes.
    pub fn backend(self) -> SensingBackend {
        match self {
            ModelKind::RdNet => SensingBackend::RangeDoppler,
            _ => SensingBackend::PointCloud,
        }
    }

    /// Whether this is a range-Doppler architecture.
    pub fn is_rd(self) -> bool {
        self.backend() == SensingBackend::RangeDoppler
    }
}

impl gp_codec::Encode for ModelKind {
    fn encode(&self) -> gp_codec::Value {
        gp_codec::Value::Str(self.tag().to_owned())
    }
}

impl gp_codec::Decode for ModelKind {
    fn decode(value: &gp_codec::Value) -> Result<Self, gp_codec::DecodeError> {
        let tag = value.as_str()?;
        ModelKind::ALL
            .into_iter()
            .find(|k| k.tag() == tag)
            .ok_or_else(|| gp_codec::DecodeError::new(format!("unknown model kind '{tag}'")))
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Architecture.
    pub model: ModelKind,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Mini-batch size (gradients accumulate across the batch before the
    /// optimizer step).
    pub batch_size: usize,
    /// Training-time augmentation (paper: ×3 copies, σ = 0.02); `None`
    /// for the "w/o DA" ablation arm.
    pub augment: Option<AugmenterConfig>,
    /// Feature encoding options.
    pub feature: FeatureConfig,
    /// RD feature encoding options; only consulted by RD architectures.
    /// `None` means [`RdFeatureConfig::default`] — and keeps the encoded
    /// form byte-identical to pre-RD configs (the field is emitted only
    /// when set, mirroring `ServeConfig`'s additive-field pattern).
    pub rd_feature: Option<RdFeatureConfig>,
    /// Master seed (initialisation, shuffling, augmentation, resampling).
    pub seed: u64,
}

impl TrainConfig {
    /// The RD feature configuration in effect (explicit or default).
    pub fn rd_feature(&self) -> RdFeatureConfig {
        self.rd_feature.clone().unwrap_or_default()
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            model: ModelKind::GesIdNet,
            epochs: 24,
            learning_rate: 2e-3,
            batch_size: 8,
            augment: Some(AugmenterConfig::default()),
            feature: FeatureConfig::default(),
            rd_feature: None,
            seed: 7,
        }
    }
}

impl gp_codec::Encode for TrainConfig {
    fn encode(&self) -> gp_codec::Value {
        let mut fields = vec![
            ("model", self.model.encode()),
            ("epochs", self.epochs.encode()),
            ("learning_rate", self.learning_rate.encode()),
            ("batch_size", self.batch_size.encode()),
            ("augment", self.augment.encode()),
            ("feature", self.feature.encode()),
            ("seed", self.seed.encode()),
        ];
        if let Some(rd) = &self.rd_feature {
            fields.push(("rd_feature", rd.encode()));
        }
        gp_codec::Value::record(fields)
    }
}

impl gp_codec::Decode for TrainConfig {
    fn decode(value: &gp_codec::Value) -> Result<Self, gp_codec::DecodeError> {
        Ok(TrainConfig {
            model: value.get("model")?,
            epochs: value.get("epochs")?,
            learning_rate: value.get("learning_rate")?,
            batch_size: value.get("batch_size")?,
            augment: value.get("augment")?,
            feature: value.get("feature")?,
            rd_feature: value.get_or("rd_feature", None)?,
            seed: value.get("seed")?,
        })
    }
}

/// The network behind a [`TrainedModel`], one variant per
/// [`SensingBackend`].
enum BackendModel {
    Point(Box<dyn PointModel>),
    Rd(RdNet),
}

impl BackendModel {
    fn point(&self) -> &dyn PointModel {
        match self {
            BackendModel::Point(m) => &**m,
            BackendModel::Rd(_) => panic!("point-cloud inference on a range-Doppler model"),
        }
    }

    fn rd(&self) -> &RdNet {
        match self {
            BackendModel::Rd(m) => m,
            BackendModel::Point(_) => panic!("range-Doppler inference on a point-cloud model"),
        }
    }
}

/// A trained classifier bundled with its encoding configuration.
pub struct TrainedModel {
    model: BackendModel,
    feature: FeatureConfig,
    rd_feature: RdFeatureConfig,
    kind: ModelKind,
    classes: usize,
    encode_seed: u64,
}

impl std::fmt::Debug for TrainedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedModel")
            .field("kind", &self.kind)
            .field("classes", &self.classes)
            .finish()
    }
}

impl TrainedModel {
    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The architecture kind.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The sensing representation this model consumes.
    pub fn backend(&self) -> SensingBackend {
        self.kind.backend()
    }

    /// Encodes a sample with the model's feature configuration
    /// (deterministic).
    pub fn encode_input(&self, sample: &LabeledSample) -> ModelInput {
        let mut rng = StdRng::seed_from_u64(self.encode_seed);
        encode(&sample.cloud, &sample.frame_clouds, &self.feature, &mut rng)
    }

    /// Encodes an RD sample with the model's RD feature configuration
    /// (deterministic — RD extraction draws no randomness).
    pub fn encode_rd_input(&self, sample: &RdLabeledSample) -> RdInput {
        rd_extract_sample(sample, &self.rd_feature)
    }

    /// Class probabilities for a sample.
    pub fn probabilities(&self, sample: &LabeledSample) -> Vec<f64> {
        let input = self.encode_input(sample);
        softmax(&self.model.point().logits(&input))
            .into_iter()
            .map(|v| v as f64)
            .collect()
    }

    /// Predicted class for a sample.
    pub fn predict(&self, sample: &LabeledSample) -> usize {
        let input = self.encode_input(sample);
        gp_nn::argmax(&self.model.point().logits(&input))
    }

    /// Class probabilities for an RD sample.
    pub fn probabilities_rd(&self, sample: &RdLabeledSample) -> Vec<f64> {
        let input = self.encode_rd_input(sample);
        softmax(&self.model.rd().logits(&input))
            .into_iter()
            .map(|v| v as f64)
            .collect()
    }

    /// Predicted class for an RD sample.
    pub fn predict_rd(&self, sample: &RdLabeledSample) -> usize {
        let input = self.encode_rd_input(sample);
        gp_nn::argmax(&self.model.rd().logits(&input))
    }

    /// The fused RD embedding (RdNet's 48-wide fusion tap).
    pub fn embedding_rd(&self, sample: &RdLabeledSample) -> Vec<f32> {
        let input = self.encode_rd_input(sample);
        self.model.rd().embedding(&input)
    }

    /// Backend-agnostic class probabilities: dispatches on the sample's
    /// representation.
    ///
    /// # Panics
    ///
    /// Panics if the sample's backend does not match
    /// [`TrainedModel::backend`].
    pub fn probabilities_of(&self, sample: SampleRef<'_>) -> Vec<f64> {
        match sample {
            SampleRef::Cloud(s) => self.probabilities(s),
            SampleRef::Rd(s) => self.probabilities_rd(s),
        }
    }

    /// Backend-agnostic predicted class (see
    /// [`TrainedModel::probabilities_of`]).
    pub fn predict_of(&self, sample: SampleRef<'_>) -> usize {
        match sample {
            SampleRef::Cloud(s) => self.predict(s),
            SampleRef::Rd(s) => self.predict_rd(s),
        }
    }

    /// Backend-agnostic embedding: the fusion tap of either backend
    /// (`None` for point architectures without one).
    pub fn embedding_of(&self, sample: SampleRef<'_>) -> Option<Vec<f32>> {
        match sample {
            SampleRef::Cloud(s) => self.embedding(s),
            SampleRef::Rd(s) => Some(self.embedding_rd(s)),
        }
    }

    /// Class probabilities for a batch of samples, one row per sample,
    /// through the model's batched forward ([`gp_models::PointModel::logits_batch`]).
    ///
    /// Equivalent to mapping [`TrainedModel::probabilities`] — encoding
    /// is per-sample deterministic — but lets batch-capable backends
    /// amortise work across the batch.
    pub fn probabilities_batch(&self, samples: &[&LabeledSample]) -> Vec<Vec<f64>> {
        let inputs: Vec<ModelInput> = samples.iter().map(|s| self.encode_input(s)).collect();
        let probs = gp_nn::softmax_rows(&self.model.point().logits_batch(&inputs));
        (0..probs.rows())
            .map(|r| probs.row(r).iter().map(|&v| v as f64).collect())
            .collect()
    }

    /// Predicted classes for a batch of samples.
    pub fn predict_batch(&self, samples: &[&LabeledSample]) -> Vec<usize> {
        let inputs: Vec<ModelInput> = samples.iter().map(|s| self.encode_input(s)).collect();
        let logits = self.model.point().logits_batch(&inputs);
        (0..logits.rows())
            .map(|r| gp_nn::argmax(logits.row(r)))
            .collect()
    }

    /// Class probabilities for a batch of RD samples. RdNet has no
    /// batched forward, so this maps [`TrainedModel::probabilities_rd`]
    /// — kept as the batch entry so the serving executor is
    /// backend-agnostic.
    pub fn probabilities_rd_batch(&self, samples: &[&RdLabeledSample]) -> Vec<Vec<f64>> {
        samples.iter().map(|s| self.probabilities_rd(s)).collect()
    }

    /// Feature taps for visualisation (GesIDNet only).
    pub fn feature_taps(&self, sample: &LabeledSample) -> Option<(Vec<f32>, Vec<f32>, Vec<f32>)> {
        let input = self.encode_input(sample);
        self.model.point().feature_taps(&input)
    }

    /// The fused penultimate representation (GesIDNet's `Y^k`, the
    /// attention-fusion output feeding the classification head) — the
    /// enrollment embedding `gp-store` galleries are built from.
    /// `None` for architectures without a fusion tap.
    pub fn embedding(&self, sample: &LabeledSample) -> Option<Vec<f32>> {
        self.feature_taps(sample).map(|(_, _, fused)| fused)
    }

    /// Builds an untrained point-cloud model shell (used when loading
    /// saved weights).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is an RD architecture — use
    /// [`TrainedModel::untrained_rd`].
    pub fn untrained(kind: ModelKind, classes: usize, feature: FeatureConfig) -> Self {
        assert!(
            !kind.is_rd(),
            "untrained() builds point-cloud shells; use untrained_rd() for {kind:?}"
        );
        let mut rng = StdRng::seed_from_u64(0);
        TrainedModel {
            model: BackendModel::Point(make_model(kind, classes, &feature, &mut rng)),
            feature,
            rd_feature: RdFeatureConfig::default(),
            kind,
            classes,
            encode_seed: TrainConfig::default().seed ^ 0xEEC0DE,
        }
    }

    /// Builds an untrained range-Doppler model shell (used when loading
    /// saved weights).
    pub fn untrained_rd(classes: usize, rd_feature: RdFeatureConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(0);
        TrainedModel {
            model: BackendModel::Rd(RdNet::new(classes, rd_feature.map_shape, &mut rng)),
            feature: FeatureConfig::default(),
            rd_feature,
            kind: ModelKind::RdNet,
            classes,
            encode_seed: TrainConfig::default().seed ^ 0xEEC0DE,
        }
    }

    pub(crate) fn model_mut(&mut self) -> &mut dyn gp_nn::Parameterized {
        match &mut self.model {
            BackendModel::Point(m) => &mut **m,
            BackendModel::Rd(m) => m,
        }
    }

    pub(crate) fn model_ref(&self) -> &dyn gp_nn::Parameterized {
        match &self.model {
            BackendModel::Point(m) => &**m,
            BackendModel::Rd(m) => m,
        }
    }

    /// The feature-encoding configuration the model was trained with.
    pub fn feature(&self) -> &FeatureConfig {
        &self.feature
    }

    /// The RD feature-encoding configuration (meaningful for RD models;
    /// the default placeholder otherwise).
    pub fn rd_feature(&self) -> &RdFeatureConfig {
        &self.rd_feature
    }

    pub(crate) fn encode_seed(&self) -> u64 {
        self.encode_seed
    }

    pub(crate) fn set_encode_seed(&mut self, seed: u64) {
        self.encode_seed = seed;
    }
}

fn make_model(
    kind: ModelKind,
    classes: usize,
    feature: &FeatureConfig,
    rng: &mut StdRng,
) -> Box<dyn PointModel> {
    match kind {
        ModelKind::GesIdNet => Box::new(GesIDNet::new(GesIDNetConfig::for_classes(classes), rng)),
        ModelKind::GesIdNetNoFusion => Box::new(GesIDNet::new(
            GesIDNetConfig {
                fusion: false,
                ..GesIDNetConfig::for_classes(classes)
            },
            rng,
        )),
        ModelKind::PointNet => Box::new(PointNet::new(classes, rng)),
        ModelKind::ProfileCnn => Box::new(ProfileCnn::new(classes, feature.profile_shape, rng)),
        ModelKind::Lstm => Box::new(LstmNet::new(classes, rng)),
        ModelKind::RdNet => panic!("RdNet is not a point-cloud model; use the RD training path"),
    }
}

/// Trains a classifier on `(sample, label)` pairs.
///
/// Labels need not equal `sample.gesture`/`sample.user` — the caller
/// chooses the task by supplying the label (this is exactly how the
/// paper trains the same architecture for both tasks on the same data).
///
/// # Panics
///
/// Panics if `samples` is empty or any label is `>= classes`.
pub fn train_classifier(
    samples: &[(&LabeledSample, usize)],
    classes: usize,
    config: &TrainConfig,
) -> TrainedModel {
    train_classifier_instrumented(samples, classes, config, None)
}

/// [`train_classifier`] with optional telemetry: when a registry is
/// given, per-epoch wall time lands in the `train.stage.epoch`
/// histogram and per-mini-batch step time (forward + backward +
/// optimizer update) in `train.stage.batch_step`, alongside
/// `train.samples` / `train.batches` counters — the same registry and
/// naming scheme the serving stack exports, so training runs can emit
/// `BENCH_*.json` artifacts through the identical snapshot path.
///
/// # Panics
///
/// Panics if `samples` is empty or any label is `>= classes`.
pub fn train_classifier_instrumented(
    samples: &[(&LabeledSample, usize)],
    classes: usize,
    config: &TrainConfig,
    telemetry: Option<&gp_telemetry::Registry>,
) -> TrainedModel {
    assert!(!samples.is_empty(), "cannot train on an empty sample set");
    assert!(
        samples.iter().all(|(_, l)| *l < classes),
        "label out of range"
    );
    assert!(
        !config.model.is_rd(),
        "train_classifier takes point-cloud samples; use train_rd_classifier for {:?}",
        config.model
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut model = make_model(config.model, classes, &config.feature, &mut rng);

    // Encode the training set once: original + augmented copies.
    let mut encoded: Vec<(ModelInput, usize)> = Vec::new();
    for (i, (sample, label)) in samples.iter().enumerate() {
        let mut enc_rng = StdRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E37));
        encoded.push((
            encode(
                &sample.cloud,
                &sample.frame_clouds,
                &config.feature,
                &mut enc_rng,
            ),
            *label,
        ));
        if let Some(aug_cfg) = config.augment {
            let augmenter = Augmenter::new(aug_cfg);
            for copy in augmenter.augment(&sample.cloud, &mut enc_rng) {
                encoded.push((
                    encode(&copy, &sample.frame_clouds, &config.feature, &mut enc_rng),
                    *label,
                ));
            }
        }
    }

    let epoch_hist = telemetry.map(|t| t.histogram("train.stage.epoch"));
    let step_hist = telemetry.map(|t| t.histogram("train.stage.batch_step"));
    let sample_counter = telemetry.map(|t| t.counter("train.samples"));
    let batch_counter = telemetry.map(|t| t.counter("train.batches"));

    let mut adam = Adam::new(config.learning_rate);
    let mut order: Vec<usize> = (0..encoded.len()).collect();
    for _epoch in 0..config.epochs {
        let epoch_start = std::time::Instant::now();
        order.shuffle(&mut rng);
        // Mini-batch loop: each chunk goes through the model's batched
        // step (gradients accumulate across the chunk), then one
        // optimizer step — the same step cadence as the historical
        // sample-at-a-time loop, including the short tail chunk.
        for chunk in order.chunks(config.batch_size.max(1)) {
            let step_start = std::time::Instant::now();
            let inputs: Vec<&ModelInput> = chunk.iter().map(|&i| &encoded[i].0).collect();
            let labels: Vec<usize> = chunk.iter().map(|&i| encoded[i].1).collect();
            model.train_step_batch(&inputs, &labels);
            adam.begin_step();
            model.for_each_param(&mut |p, g| adam.update(p, g));
            if let Some(h) = &step_hist {
                h.record_duration(step_start.elapsed());
            }
            if let Some(c) = &sample_counter {
                c.add(chunk.len() as u64);
            }
            if let Some(c) = &batch_counter {
                c.inc();
            }
        }
        if let Some(h) = &epoch_hist {
            h.record_duration(epoch_start.elapsed());
        }
    }

    TrainedModel {
        model: BackendModel::Point(model),
        feature: config.feature.clone(),
        rd_feature: RdFeatureConfig::default(),
        kind: config.model,
        classes,
        encode_seed: config.seed ^ 0xEEC0DE,
    }
}

/// Trains a range-Doppler classifier on `(sample, label)` pairs —
/// the RD counterpart of [`train_classifier`], with the same
/// deterministic shuffle/mini-batch/Adam loop. RD extraction is
/// deterministic and the synthesizer already injects thermal noise, so
/// there is no augmentation stage.
///
/// # Panics
///
/// Panics if `samples` is empty, any label is `>= classes`, or
/// `config.model` is not an RD architecture.
pub fn train_rd_classifier(
    samples: &[(&RdLabeledSample, usize)],
    classes: usize,
    config: &TrainConfig,
) -> TrainedModel {
    train_rd_classifier_instrumented(samples, classes, config, None)
}

/// [`train_rd_classifier`] with optional telemetry, recording into the
/// same `train.stage.*` histograms and `train.*` counters as the
/// point-cloud trainer.
///
/// # Panics
///
/// See [`train_rd_classifier`].
pub fn train_rd_classifier_instrumented(
    samples: &[(&RdLabeledSample, usize)],
    classes: usize,
    config: &TrainConfig,
    telemetry: Option<&gp_telemetry::Registry>,
) -> TrainedModel {
    assert!(!samples.is_empty(), "cannot train on an empty sample set");
    assert!(
        samples.iter().all(|(_, l)| *l < classes),
        "label out of range"
    );
    assert!(
        config.model.is_rd(),
        "train_rd_classifier requires an RD architecture, got {:?}",
        config.model
    );
    let rd_feature = config.rd_feature();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut model = RdNet::new(classes, rd_feature.map_shape, &mut rng);

    let encoded: Vec<(RdInput, usize)> = samples
        .iter()
        .map(|(s, l)| (rd_extract_sample(s, &rd_feature), *l))
        .collect();

    let epoch_hist = telemetry.map(|t| t.histogram("train.stage.epoch"));
    let step_hist = telemetry.map(|t| t.histogram("train.stage.batch_step"));
    let sample_counter = telemetry.map(|t| t.counter("train.samples"));
    let batch_counter = telemetry.map(|t| t.counter("train.batches"));

    let mut adam = Adam::new(config.learning_rate);
    let mut order: Vec<usize> = (0..encoded.len()).collect();
    for _epoch in 0..config.epochs {
        let epoch_start = std::time::Instant::now();
        order.shuffle(&mut rng);
        for chunk in order.chunks(config.batch_size.max(1)) {
            let step_start = std::time::Instant::now();
            // Gradients accumulate across the chunk, then one optimizer
            // step — the same cadence as the point-cloud trainer.
            for &i in chunk {
                let (input, label) = &encoded[i];
                model.train_step(input, *label);
            }
            adam.begin_step();
            model.for_each_param(&mut |p, g| adam.update(p, g));
            if let Some(h) = &step_hist {
                h.record_duration(step_start.elapsed());
            }
            if let Some(c) = &sample_counter {
                c.add(chunk.len() as u64);
            }
            if let Some(c) = &batch_counter {
                c.inc();
            }
        }
        if let Some(h) = &epoch_hist {
            h.record_duration(epoch_start.elapsed());
        }
    }

    TrainedModel {
        model: BackendModel::Rd(model),
        feature: config.feature.clone(),
        rd_feature,
        kind: config.model,
        classes,
        encode_seed: config.seed ^ 0xEEC0DE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_pointcloud::{Point, PointCloud, Vec3};

    /// Two synthetic "users": one gestures left of centre, one right.
    fn toy_samples() -> Vec<LabeledSample> {
        let mut out = Vec::new();
        for user in 0..2usize {
            for rep in 0..6usize {
                let shift = if user == 0 { -0.3 } else { 0.3 };
                let cloud: PointCloud = (0..24)
                    .map(|i| {
                        let t = i as f64 * 0.35 + rep as f64 * 0.1;
                        Point::new(
                            Vec3::new(shift + t.sin() * 0.2, 1.2 + t.cos() * 0.15, 1.0),
                            (t * 1.1).sin() * (1.0 + user as f64 * 0.4),
                            14.0,
                        )
                    })
                    .collect();
                out.push(LabeledSample {
                    cloud: cloud.clone(),
                    frame_clouds: vec![cloud; 4],
                    duration_frames: 20,
                    gesture: 0,
                    user,
                });
            }
        }
        out
    }

    fn quick_config(model: ModelKind) -> TrainConfig {
        TrainConfig {
            model,
            epochs: 12,
            augment: None,
            feature: FeatureConfig {
                num_points: 24,
                ..FeatureConfig::default()
            },
            ..TrainConfig::default()
        }
    }

    #[test]
    fn trains_and_separates_users() {
        let samples = toy_samples();
        let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        let model = train_classifier(&pairs, 2, &quick_config(ModelKind::GesIdNet));
        let correct = samples
            .iter()
            .filter(|s| model.predict(s) == s.user)
            .count();
        assert!(correct >= 10, "GesIDNet user split failed: {correct}/12");
    }

    #[test]
    fn probabilities_are_normalised() {
        let samples = toy_samples();
        let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        let model = train_classifier(&pairs, 2, &quick_config(ModelKind::PointNet));
        let p = model.probabilities(&samples[0]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn augmentation_inflates_training_set_without_breaking() {
        let samples = toy_samples();
        let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        let config = TrainConfig {
            augment: Some(AugmenterConfig::default()),
            ..quick_config(ModelKind::GesIdNet)
        };
        let model = train_classifier(&pairs, 2, &config);
        let correct = samples
            .iter()
            .filter(|s| model.predict(s) == s.user)
            .count();
        assert!(correct >= 10, "augmented training failed: {correct}/12");
    }

    #[test]
    fn batched_probabilities_match_sequential() {
        let samples = toy_samples();
        let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        let model = train_classifier(&pairs, 2, &quick_config(ModelKind::GesIdNet));
        let refs: Vec<&LabeledSample> = samples.iter().collect();
        let batched = model.probabilities_batch(&refs);
        let predicted = model.predict_batch(&refs);
        assert_eq!(batched.len(), samples.len());
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(batched[i], model.probabilities(s), "sample {i}");
            assert_eq!(predicted[i], model.predict(s), "sample {i}");
        }
        assert!(model.probabilities_batch(&[]).is_empty());
    }

    #[test]
    fn instrumented_training_records_stage_histograms() {
        let samples = toy_samples();
        let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        let cfg = quick_config(ModelKind::PointNet);
        let registry = gp_telemetry::Registry::new();
        let _ = train_classifier_instrumented(&pairs, 2, &cfg, Some(&registry));
        let snap = registry.snapshot();
        let epochs = snap.histograms["train.stage.epoch"].count();
        assert_eq!(epochs, cfg.epochs as u64);
        let batches_per_epoch = samples.len().div_ceil(cfg.batch_size) as u64;
        assert_eq!(
            snap.histograms["train.stage.batch_step"].count(),
            epochs * batches_per_epoch
        );
        assert_eq!(
            snap.counters["train.samples"],
            (samples.len() * cfg.epochs) as u64
        );
        assert_eq!(snap.counters["train.batches"], epochs * batches_per_epoch);
    }

    #[test]
    fn instrumented_and_plain_training_agree() {
        // Telemetry is observation only: the trained weights must be
        // identical with and without a registry attached.
        let samples = toy_samples();
        let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        let cfg = quick_config(ModelKind::GesIdNet);
        let registry = gp_telemetry::Registry::new();
        let a = train_classifier(&pairs, 2, &cfg);
        let b = train_classifier_instrumented(&pairs, 2, &cfg, Some(&registry));
        for s in &samples {
            assert_eq!(a.probabilities(s), b.probabilities(s));
        }
    }

    #[test]
    fn deterministic_training() {
        let samples = toy_samples();
        let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        let cfg = quick_config(ModelKind::PointNet);
        let a = train_classifier(&pairs, 2, &cfg);
        let b = train_classifier(&pairs, 2, &cfg);
        for s in &samples {
            assert_eq!(a.probabilities(s), b.probabilities(s));
        }
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn empty_training_panics() {
        train_classifier(&[], 2, &TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_range_checked() {
        let samples = toy_samples();
        let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, 5)).collect();
        train_classifier(&pairs, 2, &TrainConfig::default());
    }

    /// Hand-built RD samples: the user's energy blob sits above or
    /// below the zero-Doppler row.
    fn toy_rd_samples(reps: usize) -> Vec<RdLabeledSample> {
        let cfg = gp_rd::RdConfig::default();
        let mut out = Vec::new();
        for user in 0..2usize {
            for rep in 0..reps {
                let d = if user == 0 { 4 } else { 12 };
                let frames: Vec<gp_rd::RdFrame> = (0..8)
                    .map(|i| {
                        let mut f = gp_rd::RdFrame::zeros(&cfg, i as f64 * 0.1);
                        let r = 18 + (rep + i) % 3;
                        f.power[d * cfg.range_bins + r] = 40.0 + rep as f64;
                        f.power[(d + 1) * cfg.range_bins + r] = 25.0;
                        f
                    })
                    .collect();
                out.push(RdLabeledSample {
                    frames,
                    duration_frames: 8,
                    gesture: 0,
                    user,
                });
            }
        }
        out
    }

    fn rd_config() -> TrainConfig {
        TrainConfig {
            model: ModelKind::RdNet,
            epochs: 16,
            learning_rate: 5e-3,
            augment: None,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn rd_training_learns_toy_split() {
        let samples = toy_rd_samples(6);
        let pairs: Vec<(&RdLabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        let model = train_rd_classifier(&pairs, 2, &rd_config());
        assert_eq!(model.backend(), SensingBackend::RangeDoppler);
        let correct = samples
            .iter()
            .filter(|s| model.predict_rd(s) == s.user)
            .count();
        assert!(correct >= 10, "RdNet user split failed: {correct}/12");
        // The dispatching surface agrees with the direct RD entry.
        let via_ref = model.predict_of(SampleRef::from(&samples[0]));
        assert_eq!(via_ref, model.predict_rd(&samples[0]));
        assert_eq!(model.embedding_rd(&samples[0]).len(), 48);
    }

    #[test]
    fn rd_training_is_deterministic() {
        let samples = toy_rd_samples(4);
        let pairs: Vec<(&RdLabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        let a = train_rd_classifier(&pairs, 2, &rd_config());
        let b = train_rd_classifier(&pairs, 2, &rd_config());
        for s in &samples {
            assert_eq!(a.probabilities_rd(s), b.probabilities_rd(s));
        }
        let batched = a.probabilities_rd_batch(&pairs.iter().map(|(s, _)| *s).collect::<Vec<_>>());
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(batched[i], a.probabilities_rd(s));
        }
    }

    #[test]
    #[should_panic(expected = "use train_rd_classifier")]
    fn point_trainer_rejects_rd_kind() {
        let samples = toy_samples();
        let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        let cfg = TrainConfig {
            model: ModelKind::RdNet,
            ..TrainConfig::default()
        };
        train_classifier(&pairs, 2, &cfg);
    }

    #[test]
    #[should_panic(expected = "requires an RD architecture")]
    fn rd_trainer_rejects_point_kind() {
        let samples = toy_rd_samples(2);
        let pairs: Vec<(&RdLabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
        train_rd_classifier(&pairs, 2, &TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "point-cloud inference on a range-Doppler model")]
    fn backend_mismatch_panics() {
        let samples = toy_samples();
        let model = TrainedModel::untrained_rd(2, RdFeatureConfig::default());
        model.predict(&samples[0]);
    }

    #[test]
    fn train_config_encoding_is_stable_without_rd_field() {
        use gp_codec::{Decode, Encode};
        // Pre-RD configs must encode byte-identically: the rd_feature
        // field is additive and only emitted when set.
        let cfg = TrainConfig::default();
        let value = cfg.encode();
        let map = value.as_map().unwrap();
        assert!(
            map.iter().all(|(k, _)| k != "rd_feature"),
            "default config must not emit rd_feature"
        );
        assert_eq!(TrainConfig::decode(&value).unwrap(), cfg);

        let rd_cfg = TrainConfig {
            rd_feature: Some(RdFeatureConfig {
                max_frames: 12,
                ..RdFeatureConfig::default()
            }),
            ..TrainConfig::default()
        };
        let roundtrip = TrainConfig::decode(&rd_cfg.encode()).unwrap();
        assert_eq!(roundtrip, rd_cfg);
    }
}
