//! K-fold cross-validation — the paper's evaluation protocol
//! ("the split ratio of the training set and the test set is usually 8:2
//! with 5-fold cross-validation", §V).

use crate::report::{classification_report, ClassificationReport};
use crate::train::{train_classifier, TrainConfig};
use gp_eval::split::kfold_indices;
use gp_pipeline::LabeledSample;

/// Runs k-fold cross-validation of one classifier.
///
/// `label_of` selects the task (gesture or user label). Returns one
/// [`ClassificationReport`] per fold; average the `accuracy` fields for
/// the paper's headline numbers.
///
/// # Panics
///
/// Panics if `k` is 0 or larger than the sample count.
pub fn kfold_reports(
    samples: &[&LabeledSample],
    classes: usize,
    label_of: &dyn Fn(&LabeledSample) -> usize,
    k: usize,
    config: &TrainConfig,
) -> Vec<ClassificationReport> {
    let folds = kfold_indices(samples.len(), k, config.seed ^ 0xF01D);
    let mut reports = Vec::with_capacity(k);
    for test_fold in 0..k {
        let mut train_pairs = Vec::new();
        let mut test_pairs = Vec::new();
        for (fold_idx, fold) in folds.iter().enumerate() {
            for &i in fold {
                let pair = (samples[i], label_of(samples[i]));
                if fold_idx == test_fold {
                    test_pairs.push(pair);
                } else {
                    train_pairs.push(pair);
                }
            }
        }
        let model = train_classifier(&train_pairs, classes, config);
        reports.push(classification_report(&model, &test_pairs));
    }
    reports
}

/// Mean accuracy across folds.
pub fn mean_accuracy(reports: &[ClassificationReport]) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(|r| r.accuracy).sum::<f64>() / reports.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::ModelKind;
    use gp_models::features::FeatureConfig;
    use gp_pointcloud::{Point, PointCloud, Vec3};

    fn samples() -> Vec<LabeledSample> {
        (0..12)
            .map(|i| {
                let user = i % 2;
                let shift = if user == 0 { -0.35 } else { 0.35 };
                let cloud: PointCloud = (0..20)
                    .map(|k| {
                        let t = k as f64 * 0.31 + i as f64 * 0.07;
                        Point::new(
                            Vec3::new(shift + t.sin() * 0.2, 1.2, 1.0 + t.cos() * 0.2),
                            (t * 1.2).sin(),
                            10.0,
                        )
                    })
                    .collect();
                LabeledSample {
                    cloud: cloud.clone(),
                    frame_clouds: vec![cloud; 3],
                    duration_frames: 18,
                    gesture: 0,
                    user,
                }
            })
            .collect()
    }

    #[test]
    fn kfold_produces_k_reports_covering_all_samples() {
        let data = samples();
        let refs: Vec<&LabeledSample> = data.iter().collect();
        let cfg = TrainConfig {
            model: ModelKind::PointNet,
            epochs: 30,
            augment: None,
            feature: FeatureConfig {
                num_points: 20,
                ..FeatureConfig::default()
            },
            ..TrainConfig::default()
        };
        let reports = kfold_reports(&refs, 2, &|s| s.user, 3, &cfg);
        assert_eq!(reports.len(), 3);
        let total_test: usize = reports.iter().map(|r| r.labels.len()).sum();
        assert_eq!(total_test, data.len(), "folds must partition the data");
        let mean = mean_accuracy(&reports);
        assert!(
            mean > 0.7,
            "learnable task should cross-validate well: {mean}"
        );
    }

    #[test]
    fn mean_accuracy_of_empty_is_zero() {
        assert_eq!(mean_accuracy(&[]), 0.0);
    }
}
