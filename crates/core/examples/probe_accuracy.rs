//! Quick end-to-end accuracy probe: small simulated dataset → GesIDNet
//! GR + UI accuracies. Used to validate the learnability of the
//! synthetic biometric signal before running the full experiment suite.

use gestureprint_core::{
    classification_report, train_classifier, GesturePrint, GesturePrintConfig, IdentificationMode,
    ModelKind, TrainConfig,
};
use gp_datasets::{build, BuildOptions, DatasetSpec, Scale};
use gp_eval::split::train_test_split;
use gp_pipeline::LabeledSample;
use gp_radar::Environment;

fn main() {
    let t0 = std::time::Instant::now();
    let spec = DatasetSpec {
        distances: vec![1.2],
        ..gp_datasets::presets::gestureprint(
            Environment::Office,
            Scale::Custom { users: 5, reps: 12 },
        )
    };
    let mut spec = spec;
    // Trim to 6 gestures for the probe.
    spec.set = gp_kinematics::gestures::GestureSet::Asl15;
    let data = build(&spec, &BuildOptions::default());
    println!(
        "dataset: {} ({:.1}s)",
        data.summary(),
        t0.elapsed().as_secs_f64()
    );

    // Keep only gestures 0..6 for speed.
    let samples: Vec<&LabeledSample> = data
        .samples
        .iter()
        .map(|s| &s.labeled)
        .filter(|s| s.gesture < 8)
        .collect();
    let (train_idx, test_idx) = train_test_split(samples.len(), 0.2, 11);
    let train: Vec<&LabeledSample> = train_idx.iter().map(|&i| samples[i]).collect();
    let test: Vec<&LabeledSample> = test_idx.iter().map(|&i| samples[i]).collect();
    println!("train {} / test {}", train.len(), test.len());

    // Gesture recognition.
    let t1 = std::time::Instant::now();
    let gr_pairs: Vec<(&LabeledSample, usize)> = train.iter().map(|s| (*s, s.gesture)).collect();
    let gr_model = train_classifier(&gr_pairs, 8, &TrainConfig::default());
    let gr_test: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.gesture)).collect();
    let gr = classification_report(&gr_model, &gr_test);
    println!(
        "GR: acc {:.3} f1 {:.3} auc {:.3} ({:.1}s train)",
        gr.accuracy,
        gr.macro_f1,
        gr.macro_auc,
        t1.elapsed().as_secs_f64()
    );

    // User identification (parallel mode, single model across gestures).
    let t2 = std::time::Instant::now();
    let ui_pairs: Vec<(&LabeledSample, usize)> = train.iter().map(|s| (*s, s.user)).collect();
    let ui_model = train_classifier(&ui_pairs, 5, &TrainConfig::default());
    let ui_test: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.user)).collect();
    let ui = classification_report(&ui_model, &ui_test);
    println!(
        "UI (parallel): acc {:.3} f1 {:.3} auc {:.3} eer {:.3} ({:.1}s train)",
        ui.accuracy,
        ui.macro_f1,
        ui.macro_auc,
        ui.eer,
        t2.elapsed().as_secs_f64()
    );

    // Serialized system end-to-end.
    let t3 = std::time::Instant::now();
    let system = GesturePrint::train(
        &train,
        8,
        5,
        &GesturePrintConfig {
            mode: IdentificationMode::Serialized,
            ..Default::default()
        },
    );
    let mut g_ok = 0;
    let mut u_ok = 0;
    for s in &test {
        let out = system.infer(s);
        g_ok += (out.gesture == s.gesture) as usize;
        u_ok += (out.user == s.user) as usize;
    }
    println!(
        "serialized system: GRA {:.3} UIA {:.3} ({:.1}s train)",
        g_ok as f64 / test.len() as f64,
        u_ok as f64 / test.len() as f64,
        t3.elapsed().as_secs_f64()
    );
    // Baseline comparison.
    for kind in [ModelKind::PointNet, ModelKind::ProfileCnn, ModelKind::Lstm] {
        let t = std::time::Instant::now();
        let m = train_classifier(
            &gr_pairs,
            8,
            &TrainConfig {
                model: kind,
                ..TrainConfig::default()
            },
        );
        let r = classification_report(&m, &gr_test);
        println!(
            "GR {:?}: acc {:.3} ({:.1}s)",
            kind,
            r.accuracy,
            t.elapsed().as_secs_f64()
        );
    }
    println!("total {:.1}s", t0.elapsed().as_secs_f64());
}
