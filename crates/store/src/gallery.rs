//! The enrollment gallery: per-user embedding centroids and open-set
//! nearest-gallery identification.
//!
//! Enrollment accumulates the GesIDNet fusion feature (`Y^k` in the
//! paper) of each enrolled sample into a per-user running sum; the
//! user's template is the centroid of their enrolled embeddings.
//! Identification finds the nearest centroid by Euclidean distance and
//! accepts only when that distance stays at or below the gallery
//! threshold — everything farther is an open-set rejection ("not in
//! gallery"), which is what separates identification from the
//! closed-set classifier: the classifier must answer with *some*
//! enrolled user, the gallery may answer *nobody you know*.
//!
//! The threshold is not a magic number. [`EmbeddingGallery::calibrate`]
//! pools genuine and impostor distances over a labeled probe set,
//! builds the ROC curve with gp-eval, and picks the distance bound via
//! [`RocEerSummary::threshold_at_far`] so the false-accept rate on the
//! calibration split stays under a chosen target.
//!
//! Persistence: per-user sums are stored as little-endian `f64` bytes
//! (not decimal text), so a gallery round-trips bit-identically through
//! the artifact layer and golden fixtures stay byte-stable.

use gp_codec::{Decode, DecodeError, Encode, Value};
use gp_eval::RocEerSummary;
use std::collections::BTreeMap;

/// Gallery payload schema version (inside the artifact envelope).
pub const GALLERY_VERSION: i64 = 1;

/// Errors from gallery mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GalleryError {
    /// Embedding length differs from the gallery's established
    /// dimension.
    DimMismatch {
        /// Dimension the first enrollment established.
        expected: usize,
        /// Dimension of the offending embedding.
        got: usize,
    },
    /// An empty embedding (or empty user name) cannot be enrolled.
    Empty,
}

impl std::fmt::Display for GalleryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GalleryError::DimMismatch { expected, got } => {
                write!(
                    f,
                    "embedding dimension {got} does not match gallery dimension {expected}"
                )
            }
            GalleryError::Empty => write!(f, "empty embedding or user name"),
        }
    }
}

impl std::error::Error for GalleryError {}

/// One user's enrollment state: the running sum of enrolled embeddings
/// (kept in `f64` so centroids do not drift with enrollment order) and
/// how many samples went in.
#[derive(Debug, Clone, PartialEq)]
pub struct GalleryEntry {
    sum: Vec<f64>,
    count: u64,
}

impl GalleryEntry {
    /// Number of samples enrolled for this user.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The user's template: the mean of their enrolled embeddings.
    pub fn centroid(&self) -> Vec<f32> {
        let n = self.count.max(1) as f64;
        self.sum.iter().map(|s| (s / n) as f32).collect()
    }
}

/// The nearest gallery user to a probe, accepted or not.
#[derive(Debug, Clone, PartialEq)]
pub struct GalleryMatch {
    /// The nearest enrolled user.
    pub user: String,
    /// Euclidean distance from the probe to that user's centroid.
    pub distance: f64,
}

/// Outcome of an open-set identification.
#[derive(Debug, Clone, PartialEq)]
pub enum Identification {
    /// The nearest centroid was within the gallery threshold.
    Accepted(GalleryMatch),
    /// No centroid was close enough (or the gallery is empty). The
    /// nearest candidate is reported for diagnostics when one exists.
    Rejected(Option<GalleryMatch>),
}

impl Identification {
    /// The accepted user, if any.
    pub fn user(&self) -> Option<&str> {
        match self {
            Identification::Accepted(m) => Some(&m.user),
            Identification::Rejected(_) => None,
        }
    }

    /// Whether the probe was accepted as an enrolled user.
    pub fn accepted(&self) -> bool {
        matches!(self, Identification::Accepted(_))
    }

    /// The nearest match evaluated, accepted or not.
    pub fn nearest(&self) -> Option<&GalleryMatch> {
        match self {
            Identification::Accepted(m) => Some(m),
            Identification::Rejected(m) => m.as_ref(),
        }
    }
}

/// Per-user centroids plus the open-set acceptance threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingGallery {
    /// 0 until the first enrollment fixes it.
    dim: usize,
    /// Maximum accepted centroid distance; `+inf` (the default) makes
    /// the gallery closed-set — the nearest user always wins.
    threshold: f64,
    entries: BTreeMap<String, GalleryEntry>,
}

impl Default for EmbeddingGallery {
    fn default() -> Self {
        EmbeddingGallery::new()
    }
}

/// Euclidean distance, accumulated in `f64`.
pub fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = f64::from(*x) - f64::from(*y);
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

impl EmbeddingGallery {
    /// An empty, closed-set (`threshold = +inf`) gallery.
    pub fn new() -> Self {
        EmbeddingGallery {
            dim: 0,
            threshold: f64::INFINITY,
            entries: BTreeMap::new(),
        }
    }

    /// Embedding dimension, 0 while the gallery is empty.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of enrolled users.
    pub fn users(&self) -> usize {
        self.entries.len()
    }

    /// Total enrolled samples across all users.
    pub fn samples(&self) -> u64 {
        self.entries.values().map(GalleryEntry::count).sum()
    }

    /// The enrolled user names, sorted.
    pub fn user_names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// One user's enrollment state.
    pub fn entry(&self, user: &str) -> Option<&GalleryEntry> {
        self.entries.get(user)
    }

    /// Current acceptance threshold (maximum centroid distance).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Sets the acceptance threshold directly. `+inf` accepts every
    /// nearest match (closed-set); `-inf` rejects everything.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn set_threshold(&mut self, threshold: f64) {
        assert!(!threshold.is_nan(), "gallery threshold must not be NaN");
        self.threshold = threshold;
    }

    /// Folds one embedding into `user`'s template. Returns the user's
    /// sample count after enrollment.
    ///
    /// # Errors
    ///
    /// [`GalleryError::Empty`] for an empty name or embedding,
    /// [`GalleryError::DimMismatch`] when the embedding length differs
    /// from the dimension the first enrollment established.
    pub fn enroll(&mut self, user: &str, embedding: &[f32]) -> Result<u64, GalleryError> {
        if user.is_empty() || embedding.is_empty() {
            return Err(GalleryError::Empty);
        }
        if self.dim == 0 {
            self.dim = embedding.len();
        } else if embedding.len() != self.dim {
            return Err(GalleryError::DimMismatch {
                expected: self.dim,
                got: embedding.len(),
            });
        }
        let entry = self
            .entries
            .entry(user.to_owned())
            .or_insert_with(|| GalleryEntry {
                sum: vec![0.0; embedding.len()],
                count: 0,
            });
        for (s, e) in entry.sum.iter_mut().zip(embedding) {
            *s += f64::from(*e);
        }
        entry.count += 1;
        Ok(entry.count)
    }

    /// The nearest enrolled centroid to `probe`, threshold ignored.
    /// `None` when the gallery is empty or the dimension differs.
    pub fn nearest(&self, probe: &[f32]) -> Option<GalleryMatch> {
        if probe.len() != self.dim {
            return None;
        }
        self.entries
            .iter()
            .map(|(user, entry)| GalleryMatch {
                user: user.clone(),
                distance: euclidean(probe, &entry.centroid()),
            })
            .min_by(|a, b| a.distance.total_cmp(&b.distance))
    }

    /// Open-set identification: the nearest centroid wins iff its
    /// distance stays at or below the threshold.
    pub fn identify(&self, probe: &[f32]) -> Identification {
        match self.nearest(probe) {
            Some(m) if m.distance <= self.threshold => Identification::Accepted(m),
            other => Identification::Rejected(other),
        }
    }

    /// Calibrates the acceptance threshold from a labeled probe split.
    ///
    /// Every (probe, enrolled user) pair contributes one verification
    /// score `-distance(probe, centroid)` (negated so higher = more
    /// similar, the polarity gp-eval expects); the pair is genuine when
    /// the probe's label matches the enrolled user. Probes labeled with
    /// never-enrolled users contribute impostor pairs only — exactly
    /// the open-set threat model. The threshold becomes the distance
    /// bound whose measured false-accept rate stays at or below
    /// `target_far`, and the full ROC/EER summary is returned for
    /// reporting.
    ///
    /// # Panics
    ///
    /// Panics when the gallery is empty, `probes` is empty, a probe's
    /// dimension differs from the gallery's, or `target_far` is
    /// negative (see [`RocEerSummary::threshold_at_far`]).
    pub fn calibrate(
        &mut self,
        scenario: &str,
        probes: &[(String, Vec<f32>)],
        target_far: f64,
    ) -> RocEerSummary {
        assert!(
            !self.entries.is_empty(),
            "cannot calibrate an empty gallery"
        );
        assert!(!probes.is_empty(), "cannot calibrate without probes");
        let centroids: Vec<(&String, Vec<f32>)> = self
            .entries
            .iter()
            .map(|(user, entry)| (user, entry.centroid()))
            .collect();
        let mut scores = Vec::with_capacity(probes.len() * centroids.len());
        let mut positives = Vec::with_capacity(scores.capacity());
        for (label, probe) in probes {
            assert_eq!(probe.len(), self.dim, "probe dimension mismatch");
            for (user, centroid) in &centroids {
                scores.push(-euclidean(probe, centroid));
                positives.push(*user == label);
            }
        }
        let summary = RocEerSummary::from_scores(scenario, &scores, &positives);
        // Scores are negated distances: score >= t  <=>  distance <= -t.
        self.threshold = -summary.threshold_at_far(target_far);
        summary
    }
}

fn f64s_to_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn bytes_to_f64s(bytes: &[u8]) -> Result<Vec<f64>, DecodeError> {
    if bytes.len() % 8 != 0 {
        return Err(DecodeError::new(format!(
            "embedding sum byte length {} is not a multiple of 8",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect())
}

/// The threshold may legitimately be infinite, which JSON floats cannot
/// carry; non-finite values persist as the strings `"inf"` / `"-inf"`.
fn encode_threshold(t: f64) -> Value {
    if t.is_finite() {
        Value::Float(t)
    } else if t > 0.0 {
        Value::Str("inf".into())
    } else {
        Value::Str("-inf".into())
    }
}

fn decode_threshold(value: &Value) -> Result<f64, DecodeError> {
    match value {
        Value::Str(s) if s == "inf" => Ok(f64::INFINITY),
        Value::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
        other => f64::decode(other),
    }
}

impl Encode for EmbeddingGallery {
    fn encode(&self) -> Value {
        let entries: Vec<Value> = self
            .entries
            .iter()
            .map(|(user, entry)| {
                Value::record([
                    ("user", user.encode()),
                    ("sum", Value::Bytes(f64s_to_bytes(&entry.sum))),
                    ("count", entry.count.encode()),
                ])
            })
            .collect();
        Value::record([
            ("version", Value::Int(GALLERY_VERSION)),
            ("dim", self.dim.encode()),
            ("threshold", encode_threshold(self.threshold)),
            ("entries", Value::Seq(entries)),
        ])
    }
}

impl Decode for EmbeddingGallery {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        let version: i64 = value.get("version")?;
        if version != GALLERY_VERSION {
            return Err(DecodeError::new(format!(
                "unsupported gallery version {version} (expected {GALLERY_VERSION})"
            )));
        }
        let dim: usize = value.get("dim")?;
        let threshold = decode_threshold(value.field("threshold")?)?;
        let mut entries = BTreeMap::new();
        for raw in value.get::<Vec<Value>>("entries")? {
            let user: String = raw.get("user")?;
            let sum = bytes_to_f64s(
                raw.field("sum")?
                    .as_bytes()
                    .map_err(|e| e.in_field("sum"))?,
            )?;
            let count: u64 = raw.get("count")?;
            if sum.len() != dim {
                return Err(DecodeError::new(format!(
                    "entry for {user:?} has dimension {} in a dim-{dim} gallery",
                    sum.len()
                )));
            }
            if count == 0 {
                return Err(DecodeError::new(format!(
                    "entry for {user:?} has zero enrolled samples"
                )));
            }
            if entries
                .insert(user.clone(), GalleryEntry { sum, count })
                .is_some()
            {
                return Err(DecodeError::new(format!("duplicate gallery user {user:?}")));
            }
        }
        let mut gallery = EmbeddingGallery {
            dim,
            threshold: f64::INFINITY,
            entries,
        };
        gallery.set_threshold(threshold);
        Ok(gallery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(dim: usize, seed: u64) -> Vec<f32> {
        // Cheap deterministic pseudo-embedding.
        (0..dim)
            .map(|i| {
                let x = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((i as u64).wrapping_mul(1442695040888963407));
                ((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn centroid_is_the_mean_of_enrollments() {
        let mut g = EmbeddingGallery::new();
        g.enroll("ada", &[1.0, 0.0]).unwrap();
        g.enroll("ada", &[3.0, 2.0]).unwrap();
        assert_eq!(g.entry("ada").unwrap().centroid(), vec![2.0, 1.0]);
        assert_eq!(g.users(), 1);
        assert_eq!(g.samples(), 2);
    }

    #[test]
    fn closed_set_identify_picks_the_nearest_user() {
        let mut g = EmbeddingGallery::new();
        g.enroll("ada", &[0.0, 0.0]).unwrap();
        g.enroll("bob", &[10.0, 0.0]).unwrap();
        let id = g.identify(&[1.0, 0.5]);
        assert_eq!(id.user(), Some("ada"));
        assert!(id.accepted());
    }

    #[test]
    fn open_set_threshold_rejects_distant_probes() {
        let mut g = EmbeddingGallery::new();
        g.enroll("ada", &[0.0, 0.0]).unwrap();
        g.set_threshold(1.0);
        assert!(g.identify(&[0.5, 0.5]).accepted());
        let far = g.identify(&[5.0, 5.0]);
        assert!(!far.accepted());
        // The rejection still names the nearest candidate.
        assert_eq!(far.nearest().map(|m| m.user.as_str()), Some("ada"));
        // -inf rejects even a perfect match.
        g.set_threshold(f64::NEG_INFINITY);
        assert!(!g.identify(&[0.0, 0.0]).accepted());
    }

    #[test]
    fn dimension_is_enforced() {
        let mut g = EmbeddingGallery::new();
        g.enroll("ada", &[0.0, 0.0, 0.0]).unwrap();
        assert_eq!(
            g.enroll("bob", &[1.0]),
            Err(GalleryError::DimMismatch {
                expected: 3,
                got: 1
            })
        );
        assert_eq!(g.enroll("", &[1.0, 2.0, 3.0]), Err(GalleryError::Empty));
        assert_eq!(g.nearest(&[0.0]), None);
    }

    #[test]
    fn calibration_meets_the_far_bound_on_the_split() {
        let mut g = EmbeddingGallery::new();
        // Three enrolled users in well-separated corners.
        for (user, base) in [("u0", 0.0f32), ("u1", 8.0), ("u2", 16.0)] {
            for k in 0..4 {
                let jitter = k as f32 * 0.05;
                g.enroll(user, &[base + jitter, -base + jitter]).unwrap();
            }
        }
        // Probe split: genuine probes near their centroid, plus an
        // impostor user nowhere near anyone.
        let mut probes = Vec::new();
        for (user, base) in [("u0", 0.0f32), ("u1", 8.0), ("u2", 16.0)] {
            for k in 0..3 {
                let jitter = 0.1 + k as f32 * 0.07;
                probes.push((user.to_owned(), vec![base + jitter, -base - jitter]));
            }
        }
        for k in 0..3 {
            probes.push(("ghost".to_owned(), vec![40.0 + k as f32, 40.0]));
        }

        let target_far = 0.05;
        let summary = g.calibrate("toy", &probes, target_far);
        assert!(g.threshold().is_finite());
        assert!(summary.eer < 0.5);

        // Re-measure the FAR on the same split: impostor pairs accepted
        // at the calibrated threshold must stay within the target.
        let mut impostor_pairs = 0usize;
        let mut false_accepts = 0usize;
        for (label, probe) in &probes {
            for user in g.user_names().map(str::to_owned).collect::<Vec<_>>() {
                if user != *label {
                    impostor_pairs += 1;
                    let d = euclidean(probe, &g.entry(&user).unwrap().centroid());
                    if d <= g.threshold() {
                        false_accepts += 1;
                    }
                }
            }
        }
        assert!(
            false_accepts as f64 / impostor_pairs as f64 <= target_far,
            "measured FAR {false_accepts}/{impostor_pairs} exceeds {target_far}"
        );
        // Genuine probes still get in.
        for (label, probe) in &probes {
            if label != "ghost" {
                assert_eq!(g.identify(probe).user(), Some(label.as_str()), "{label}");
            }
        }
        // The ghost is rejected open-set.
        assert!(!g.identify(&probes.last().unwrap().1).accepted());
    }

    #[test]
    fn unreachable_far_rejects_everything() {
        let mut g = EmbeddingGallery::new();
        g.enroll("a", &[0.0]).unwrap();
        g.enroll("b", &[0.0]).unwrap();
        // Identical centroids: genuine and impostor distances tie, so
        // no finite threshold meets FAR 0 and calibration slams shut.
        let probes = vec![("a".to_owned(), vec![0.0f32])];
        g.calibrate("tied", &probes, 0.0);
        assert_eq!(g.threshold(), f64::NEG_INFINITY);
        assert!(!g.identify(&[0.0]).accepted());
    }

    #[test]
    fn gallery_roundtrips_bit_identically() {
        let mut g = EmbeddingGallery::new();
        for seed in 0..5u64 {
            let user = format!("user-{}", seed % 3);
            g.enroll(&user, &seeded(16, seed)).unwrap();
        }
        g.set_threshold(0.724218);
        let back: EmbeddingGallery = EmbeddingGallery::decode(&g.encode()).expect("decode");
        assert_eq!(back, g);
        // Including through JSON text (the golden-fixture path) and the
        // binary codec, with non-finite thresholds intact.
        g.set_threshold(f64::INFINITY);
        let text = gp_codec::encode_to_json(&g).unwrap();
        let via_json: EmbeddingGallery = gp_codec::decode_from_json(&text).unwrap();
        assert_eq!(via_json, g);
        let bytes = gp_codec::encode_to_binary(&g).unwrap();
        let via_bin: EmbeddingGallery = gp_codec::decode_from_binary(&bytes).unwrap();
        assert_eq!(via_bin, g);
    }

    #[test]
    fn corrupt_galleries_fail_typed() {
        let mut g = EmbeddingGallery::new();
        g.enroll("ada", &[1.0, 2.0]).unwrap();
        let good = g.encode();

        let mut wrong_version = good.clone();
        if let Value::Map(m) = &mut wrong_version {
            m.insert("version".into(), Value::Int(99));
        }
        assert!(EmbeddingGallery::decode(&wrong_version).is_err());

        let mut torn_sum = good.clone();
        if let Value::Map(m) = &mut torn_sum {
            if let Some(Value::Seq(entries)) = m.get_mut("entries") {
                if let Value::Map(e) = &mut entries[0] {
                    e.insert("sum".into(), Value::Bytes(vec![0u8; 9]));
                }
            }
        }
        assert!(EmbeddingGallery::decode(&torn_sum).is_err());
    }
}
