//! The identity store: a thread-safe enrollment gallery persisted
//! through the artifact registry.
//!
//! This is the piece gp-serve holds: sessions enroll embeddings and
//! resolve identities concurrently (the gallery sits behind a
//! `RwLock`; identification only reads), and every mutation can be
//! checkpointed as a `gestureprint.gallery` artifact — versioned,
//! atomic, and retained like any other artifact in the registry.

use crate::gallery::{EmbeddingGallery, GalleryError, Identification};
use crate::registry::{ArtifactRegistry, RegistryConfig};
use crate::StoreError;
use gestureprint_core::artifact::{kinds, Artifact};
use gp_codec::{Decode, Encode};
use gp_eval::RocEerSummary;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Registry name under which gallery checkpoints are published.
pub const GALLERY_ARTIFACT: &str = "gallery";

/// Receipt returned by [`IdentityStore::enroll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnrollReceipt {
    /// The enrolled user.
    pub user: String,
    /// That user's sample count after this enrollment.
    pub samples: u64,
    /// Total users in the gallery after this enrollment.
    pub users: usize,
}

/// Handles into the engine telemetry registry (`store.*`).
struct Exported {
    users: Arc<gp_telemetry::Gauge>,
    samples: Arc<gp_telemetry::Gauge>,
    enrollments: Arc<gp_telemetry::Counter>,
    accepted: Arc<gp_telemetry::Counter>,
    rejected: Arc<gp_telemetry::Counter>,
    lookup: Arc<gp_telemetry::AtomicHistogram>,
}

/// Gallery + registry + telemetry, shareable across serve sessions.
pub struct IdentityStore {
    registry: ArtifactRegistry,
    gallery: RwLock<EmbeddingGallery>,
    exported: Mutex<Option<Exported>>,
}

impl std::fmt::Debug for IdentityStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.read();
        f.debug_struct("IdentityStore")
            .field("root", &self.registry.root())
            .field("users", &g.users())
            .field("samples", &g.samples())
            .field("threshold", &g.threshold())
            .finish()
    }
}

impl IdentityStore {
    /// Opens the store at `root`, resuming from the newest persisted
    /// gallery checkpoint when one exists (an empty registry starts an
    /// empty, closed-set gallery).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] from the registry, [`StoreError::Artifact`] /
    /// [`StoreError::Decode`] when an existing checkpoint is not a
    /// well-formed gallery artifact.
    pub fn open(root: impl Into<PathBuf>, config: RegistryConfig) -> Result<Self, StoreError> {
        let registry = ArtifactRegistry::open(root, config)?;
        let gallery = match registry.load_latest(GALLERY_ARTIFACT) {
            Ok((_, artifact)) => {
                if artifact.kind != kinds::GALLERY {
                    return Err(StoreError::Decode(gp_codec::DecodeError::new(format!(
                        "artifact '{GALLERY_ARTIFACT}' has kind {:?}, expected {:?}",
                        artifact.kind,
                        kinds::GALLERY
                    ))));
                }
                EmbeddingGallery::decode(&artifact.payload)?
            }
            Err(StoreError::NotFound { .. }) => EmbeddingGallery::new(),
            Err(e) => return Err(e),
        };
        Ok(IdentityStore {
            registry,
            gallery: RwLock::new(gallery),
            exported: Mutex::new(None),
        })
    }

    /// The underlying artifact registry (models, reports, ... share the
    /// same versioned storage as the gallery).
    pub fn registry(&self) -> &ArtifactRegistry {
        &self.registry
    }

    /// Registers the `store.*` instruments — gallery gauges, enrollment
    /// and accept/reject counters, the identify-latency histogram — and
    /// the registry's own `store.registry.*` set.
    pub fn attach_telemetry(&self, registry: &gp_telemetry::Registry) {
        self.registry.attach_telemetry(registry);
        let exported = Exported {
            users: registry.gauge("store.gallery.users"),
            samples: registry.gauge("store.gallery.samples"),
            enrollments: registry.counter("store.enroll.count"),
            accepted: registry.counter("store.identify.accepted"),
            rejected: registry.counter("store.identify.rejected"),
            lookup: registry.histogram("store.identify.lookup"),
        };
        let g = self.read();
        exported.users.set(g.users() as i64);
        exported.samples.set(g.samples() as i64);
        drop(g);
        *lock_poisonless(&self.exported) = Some(exported);
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, EmbeddingGallery> {
        self.gallery.read().unwrap_or_else(|p| p.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, EmbeddingGallery> {
        self.gallery.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Folds one embedding into `user`'s gallery template.
    ///
    /// # Errors
    ///
    /// [`StoreError::Gallery`] on dimension mismatch or empty input.
    pub fn enroll(&self, user: &str, embedding: &[f32]) -> Result<EnrollReceipt, StoreError> {
        let (samples, users, total) = {
            let mut g = self.write();
            let samples = g.enroll(user, embedding).map_err(StoreError::Gallery)?;
            (samples, g.users(), g.samples())
        };
        if let Some(e) = &*lock_poisonless(&self.exported) {
            e.enrollments.inc();
            e.users.set(users as i64);
            e.samples.set(total as i64);
        }
        Ok(EnrollReceipt {
            user: user.to_owned(),
            samples,
            users,
        })
    }

    /// Open-set identification of `embedding` against the gallery.
    pub fn identify(&self, embedding: &[f32]) -> Identification {
        let start = Instant::now();
        let outcome = self.read().identify(embedding);
        if let Some(e) = &*lock_poisonless(&self.exported) {
            e.lookup.record_duration(start.elapsed());
            if outcome.accepted() {
                e.accepted.inc();
            } else {
                e.rejected.inc();
            }
        }
        outcome
    }

    /// Calibrates the gallery threshold from labeled probes (see
    /// [`EmbeddingGallery::calibrate`]); returns the ROC/EER summary.
    ///
    /// # Panics
    ///
    /// Panics on an empty gallery, empty probes, a probe dimension
    /// mismatch, or a negative `target_far`.
    pub fn calibrate(
        &self,
        scenario: &str,
        probes: &[(String, Vec<f32>)],
        target_far: f64,
    ) -> RocEerSummary {
        self.write().calibrate(scenario, probes, target_far)
    }

    /// Sets the acceptance threshold directly.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn set_threshold(&self, threshold: f64) {
        self.write().set_threshold(threshold);
    }

    /// Current acceptance threshold.
    pub fn threshold(&self) -> f64 {
        self.read().threshold()
    }

    /// Number of enrolled users.
    pub fn users(&self) -> usize {
        self.read().users()
    }

    /// Total enrolled samples.
    pub fn samples(&self) -> u64 {
        self.read().samples()
    }

    /// Whether `user` is enrolled.
    pub fn is_enrolled(&self, user: &str) -> bool {
        self.read().entry(user).is_some()
    }

    /// A snapshot of the current gallery state.
    pub fn gallery_snapshot(&self) -> EmbeddingGallery {
        self.read().clone()
    }

    /// Publishes the current gallery as a new `gestureprint.gallery`
    /// artifact version; returns that version.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] from the registry publish.
    pub fn persist(&self) -> Result<u64, StoreError> {
        let artifact = Artifact::new(kinds::GALLERY, self.read().encode());
        self.registry.publish(GALLERY_ARTIFACT, artifact)
    }
}

/// Re-exported so callers matching on enroll failures see one error
/// type.
pub type EnrollError = GalleryError;

fn lock_poisonless<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gp-store-identity-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn enroll_persist_reopen_identify() {
        let root = tmp_root("reopen");
        let store = IdentityStore::open(&root, RegistryConfig::default()).unwrap();
        let receipt = store.enroll("ada", &[0.0, 0.0]).unwrap();
        assert_eq!(receipt.samples, 1);
        store.enroll("ada", &[0.2, 0.0]).unwrap();
        store.enroll("bob", &[5.0, 5.0]).unwrap();
        store.set_threshold(1.0);
        assert_eq!(store.persist().unwrap(), 1);

        // A fresh store over the same root resumes the gallery —
        // centroids, threshold, everything.
        drop(store);
        let resumed = IdentityStore::open(&root, RegistryConfig::default()).unwrap();
        assert_eq!(resumed.users(), 2);
        assert_eq!(resumed.samples(), 3);
        assert_eq!(resumed.threshold(), 1.0);
        assert_eq!(resumed.identify(&[0.1, 0.0]).user(), Some("ada"));
        assert!(!resumed.identify(&[50.0, 50.0]).accepted());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_root_starts_empty_and_rejects() {
        let root = tmp_root("empty");
        let store = IdentityStore::open(&root, RegistryConfig::default()).unwrap();
        assert_eq!(store.users(), 0);
        assert!(!store.identify(&[1.0]).accepted());
        assert!(!store.is_enrolled("ada"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn telemetry_tracks_gallery_and_lookups() {
        let root = tmp_root("telemetry");
        let store = IdentityStore::open(&root, RegistryConfig::default()).unwrap();
        store.enroll("ada", &[0.0, 0.0]).unwrap(); // pre-attach
        let telemetry = gp_telemetry::Registry::new();
        store.attach_telemetry(&telemetry);
        // Gauges reflect pre-attach state immediately.
        assert_eq!(telemetry.snapshot().gauges["store.gallery.users"], 1);

        store.enroll("bob", &[4.0, 4.0]).unwrap();
        store.set_threshold(1.0);
        store.identify(&[0.1, 0.1]); // accept
        store.identify(&[9.0, 9.0]); // reject
        let snap = telemetry.snapshot();
        assert_eq!(snap.gauges["store.gallery.users"], 2);
        assert_eq!(snap.gauges["store.gallery.samples"], 2);
        assert_eq!(snap.counters["store.enroll.count"], 1);
        assert_eq!(snap.counters["store.identify.accepted"], 1);
        assert_eq!(snap.counters["store.identify.rejected"], 1);
        assert_eq!(snap.histograms["store.identify.lookup"].count(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn wrong_kind_checkpoint_fails_typed() {
        let root = tmp_root("kind");
        {
            let reg = ArtifactRegistry::open(&root, RegistryConfig::default()).unwrap();
            reg.publish(
                GALLERY_ARTIFACT,
                Artifact::new(kinds::REPORT, gp_codec::Value::record([])),
            )
            .unwrap();
        }
        assert!(matches!(
            IdentityStore::open(&root, RegistryConfig::default()),
            Err(StoreError::Decode(_))
        ));
        let _ = std::fs::remove_dir_all(&root);
    }
}
