//! # gp-store
//!
//! The identity store behind the GesturePrint serving stack: durable
//! artifact storage plus the enrollment gallery that turns the
//! closed-set user classifier into an open-set identification system.
//!
//! Three layers:
//!
//! - [`ArtifactRegistry`] — a directory of versioned artifacts
//!   (`<root>/<name>/v<version>.gpa`). Writes are tempfile + `rename`
//!   atomic, retention keeps the newest N versions, and loads go
//!   through an LRU of decoded artifacts so hot models skip the
//!   filesystem and the decoder entirely (counter-verified).
//! - [`EmbeddingGallery`] — per-user centroids of the GesIDNet fusion
//!   feature, nearest-centroid matching, and an acceptance threshold
//!   calibrated against a target false-accept rate with gp-eval's ROC
//!   machinery. This is what lets the system say *"nobody I know"*.
//! - [`IdentityStore`] — the thread-safe combination gp-serve holds:
//!   concurrent enroll/identify over a shared gallery, checkpointed
//!   as `gestureprint.gallery` artifacts, `store.*` telemetry.
//!
//! Artifacts are format-agnostic on read: both the JSON and the binary
//! (`GPB`) envelope encodings load transparently; the registry writes
//! binary by default ([`RegistryConfig::format`]).

pub mod gallery;
pub mod identity;
pub mod registry;

pub use gallery::{
    euclidean, EmbeddingGallery, GalleryEntry, GalleryError, GalleryMatch, Identification,
    GALLERY_VERSION,
};
pub use identity::{EnrollReceipt, IdentityStore, GALLERY_ARTIFACT};
pub use registry::{ArtifactRegistry, RegistryConfig};

use gestureprint_core::artifact::ArtifactError;
use gp_codec::DecodeError;

/// Errors from the store layer.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Stored bytes failed envelope decoding.
    Artifact(ArtifactError),
    /// A payload inside a well-formed envelope failed to decode.
    Decode(DecodeError),
    /// Gallery mutation failure (dimension mismatch, empty input).
    Gallery(GalleryError),
    /// No such artifact (or version) in the registry.
    NotFound {
        /// The name (possibly `name@vN`) that was asked for.
        name: String,
    },
    /// Artifact names are restricted to path-safe characters.
    InvalidName(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io: {e}"),
            StoreError::Artifact(e) => write!(f, "store artifact: {e}"),
            StoreError::Decode(e) => write!(f, "store payload: {e}"),
            StoreError::Gallery(e) => write!(f, "gallery: {e}"),
            StoreError::NotFound { name } => write!(f, "no artifact named '{name}'"),
            StoreError::InvalidName(name) => {
                write!(f, "invalid artifact name {name:?} (path-safe ASCII only)")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Artifact(e) => Some(e),
            StoreError::Decode(e) => Some(e),
            StoreError::Gallery(e) => Some(e),
            StoreError::NotFound { .. } | StoreError::InvalidName(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ArtifactError> for StoreError {
    fn from(e: ArtifactError) -> Self {
        StoreError::Artifact(e)
    }
}

impl From<DecodeError> for StoreError {
    fn from(e: DecodeError) -> Self {
        StoreError::Decode(e)
    }
}
