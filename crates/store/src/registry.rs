//! Directory-backed, versioned artifact registry.
//!
//! Layout: one subdirectory per artifact name, one file per version —
//! `<root>/<name>/v<20-digit version>.gpa`. Every write goes through a
//! tempfile + `rename` pair, so a crash mid-write can never leave a
//! torn artifact where a reader looks: readers only ever see fully
//! published files, and stray `.tmp-*` leftovers are ignored by every
//! listing and swept on the next [`ArtifactRegistry::open`].
//!
//! Retention keeps the newest [`RegistryConfig::retain`] versions per
//! name; older files are pruned after each publish. Loads go through an
//! in-memory LRU of decoded [`Artifact`]s — a hit returns the shared
//! `Arc` without touching the filesystem or the decoder (the
//! hit/miss counters are the proof, see `lru_hits`).

use gestureprint_core::artifact::{Artifact, ArtifactFormat};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::StoreError;

/// Registry tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryConfig {
    /// Versions kept per artifact name; older ones are pruned after
    /// each publish. `0` is treated as `1` (the newest always stays).
    pub retain: usize,
    /// Decoded-artifact LRU capacity (entries, across all names).
    pub cache_capacity: usize,
    /// Byte format for newly published artifacts. Either format loads
    /// regardless — this only affects writes.
    pub format: ArtifactFormat,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            retain: 4,
            cache_capacity: 8,
            format: ArtifactFormat::Binary,
        }
    }
}

struct CacheEntry {
    name: String,
    version: u64,
    artifact: Arc<Artifact>,
}

/// Handles into the engine telemetry registry (`store.registry.*`).
struct Exported {
    lru_hits: Arc<gp_telemetry::Counter>,
    lru_misses: Arc<gp_telemetry::Counter>,
    publishes: Arc<gp_telemetry::Counter>,
    load: Arc<gp_telemetry::AtomicHistogram>,
}

/// The versioned artifact store.
pub struct ArtifactRegistry {
    root: PathBuf,
    config: RegistryConfig,
    /// LRU, most recently used last.
    cache: Mutex<Vec<CacheEntry>>,
    next_tmp: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    exported: Mutex<Option<Exported>>,
}

impl std::fmt::Debug for ArtifactRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactRegistry")
            .field("root", &self.root)
            .field("config", &self.config)
            .finish()
    }
}

/// Artifact names become directory names; keep them boring.
fn validate_name(name: &str) -> Result<(), StoreError> {
    let ok = !name.is_empty()
        && name.len() <= 100
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(StoreError::InvalidName(name.to_owned()))
    }
}

fn version_file(version: u64) -> String {
    format!("v{version:020}.gpa")
}

fn parse_version(file: &str) -> Option<u64> {
    file.strip_prefix('v')?
        .strip_suffix(".gpa")
        .filter(|digits| digits.len() == 20 && digits.bytes().all(|b| b.is_ascii_digit()))?
        .parse()
        .ok()
}

impl ArtifactRegistry {
    /// Opens (creating if needed) a registry rooted at `root`, sweeping
    /// any `.tmp-*` leftovers a previous crash may have stranded.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the root cannot be created or listed.
    pub fn open(root: impl Into<PathBuf>, config: RegistryConfig) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        // Sweep stranded tempfiles: they are invisible to readers either
        // way, this just reclaims the space.
        for entry in std::fs::read_dir(&root)? {
            let dir = entry?.path();
            if !dir.is_dir() {
                continue;
            }
            for file in std::fs::read_dir(&dir)? {
                let path = file?.path();
                let is_tmp = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(".tmp-"));
                if is_tmp {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        Ok(ArtifactRegistry {
            root,
            config,
            cache: Mutex::new(Vec::new()),
            next_tmp: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            exported: Mutex::new(None),
        })
    }

    /// The directory this registry stores into.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Registers the `store.registry.*` instruments (LRU hit/miss and
    /// publish counters, load-latency histogram) in `registry`.
    pub fn attach_telemetry(&self, registry: &gp_telemetry::Registry) {
        let exported = Exported {
            lru_hits: registry.counter("store.registry.lru_hits"),
            lru_misses: registry.counter("store.registry.lru_misses"),
            publishes: registry.counter("store.registry.publishes"),
            load: registry.histogram("store.registry.load"),
        };
        // Carry over what already happened so the snapshot never
        // under-reports after a late attach.
        exported.lru_hits.add(self.hits.load(Ordering::Relaxed));
        exported.lru_misses.add(self.misses.load(Ordering::Relaxed));
        *lock_poisonless(&self.exported) = Some(exported);
    }

    /// LRU hits so far — loads served from memory with no file read and
    /// no decode.
    pub fn lru_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// LRU misses so far — loads that went to disk.
    pub fn lru_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Publishes `artifact` as the next version of `name`, atomically:
    /// the bytes land in a tempfile first and are `rename`d into place,
    /// then versions beyond the retention window are pruned. Returns
    /// the new version number (versions start at 1).
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidName`] or [`StoreError::Io`].
    pub fn publish(&self, name: &str, artifact: Artifact) -> Result<u64, StoreError> {
        validate_name(name)?;
        let dir = self.root.join(name);
        std::fs::create_dir_all(&dir)?;
        let version = self.versions(name)?.last().copied().unwrap_or(0) + 1;
        let bytes = artifact.clone().into_bytes_with(self.config.format);

        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.next_tmp.fetch_add(1, Ordering::Relaxed)
        ));
        {
            use std::io::Write;
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            // Push the payload to disk before the rename publishes it:
            // after a crash the file either exists whole or not at all.
            file.sync_all()?;
        }
        let final_path = dir.join(version_file(version));
        if let Err(e) = std::fs::rename(&tmp, &final_path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        // Best-effort directory fsync so the rename itself is durable.
        if let Ok(d) = std::fs::File::open(&dir) {
            let _ = d.sync_all();
        }

        // Prune beyond the retention window.
        let retain = self.config.retain.max(1);
        let versions = self.versions(name)?;
        if versions.len() > retain {
            for &old in &versions[..versions.len() - retain] {
                let _ = std::fs::remove_file(dir.join(version_file(old)));
                // A pruned version must not outlive its file in the LRU.
                self.cache_evict(name, old);
            }
        }

        // The fresh artifact is hot by definition: seed the LRU.
        self.cache_put(name, version, Arc::new(artifact));
        if let Some(e) = &*lock_poisonless(&self.exported) {
            e.publishes.inc();
        }
        Ok(version)
    }

    /// The retained version numbers of `name`, oldest first. An
    /// unknown name is simply an empty list.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidName`] or [`StoreError::Io`].
    pub fn versions(&self, name: &str) -> Result<Vec<u64>, StoreError> {
        validate_name(name)?;
        let dir = self.root.join(name);
        let mut versions = Vec::new();
        match std::fs::read_dir(&dir) {
            Ok(entries) => {
                for entry in entries {
                    if let Some(v) = entry?.file_name().to_str().and_then(parse_version) {
                        versions.push(v);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        versions.sort_unstable();
        Ok(versions)
    }

    /// Loads the newest version of `name` through the LRU.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] when no version exists; otherwise see
    /// [`ArtifactRegistry::load_version`].
    pub fn load_latest(&self, name: &str) -> Result<(u64, Arc<Artifact>), StoreError> {
        let version = self
            .versions(name)?
            .last()
            .copied()
            .ok_or_else(|| StoreError::NotFound {
                name: name.to_owned(),
            })?;
        Ok((version, self.load_version(name, version)?))
    }

    /// Loads one specific version of `name` through the LRU: a cache
    /// hit returns the shared decoded artifact without reading or
    /// decoding anything.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for a missing version,
    /// [`StoreError::Artifact`] for bytes that fail to decode,
    /// [`StoreError::Io`] / [`StoreError::InvalidName`] otherwise.
    pub fn load_version(&self, name: &str, version: u64) -> Result<Arc<Artifact>, StoreError> {
        validate_name(name)?;
        let start = Instant::now();
        if let Some(hit) = self.cache_get(name, version) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(e) = &*lock_poisonless(&self.exported) {
                e.lru_hits.inc();
                e.load.record_duration(start.elapsed());
            }
            return Ok(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let path = self.root.join(name).join(version_file(version));
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotFound {
                    name: format!("{name}@v{version}"),
                })
            }
            Err(e) => return Err(e.into()),
        };
        let artifact = Arc::new(Artifact::from_bytes(&bytes)?);
        self.cache_put(name, version, artifact.clone());
        if let Some(e) = &*lock_poisonless(&self.exported) {
            e.lru_misses.inc();
            e.load.record_duration(start.elapsed());
        }
        Ok(artifact)
    }

    /// Every artifact name with at least one retained version, sorted.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the root cannot be listed.
    pub fn names(&self) -> Result<Vec<String>, StoreError> {
        let mut out = BTreeMap::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.path().is_dir() {
                continue;
            }
            if let Some(name) = entry.file_name().to_str() {
                if validate_name(name).is_ok() && !self.versions(name)?.is_empty() {
                    out.insert(name.to_owned(), ());
                }
            }
        }
        Ok(out.into_keys().collect())
    }

    fn cache_get(&self, name: &str, version: u64) -> Option<Arc<Artifact>> {
        let mut cache = lock_poisonless(&self.cache);
        let idx = cache
            .iter()
            .position(|e| e.version == version && e.name == name)?;
        // Move to the most-recent slot.
        let entry = cache.remove(idx);
        let artifact = entry.artifact.clone();
        cache.push(entry);
        Some(artifact)
    }

    fn cache_evict(&self, name: &str, version: u64) {
        let mut cache = lock_poisonless(&self.cache);
        cache.retain(|e| !(e.version == version && e.name == name));
    }

    fn cache_put(&self, name: &str, version: u64, artifact: Arc<Artifact>) {
        let capacity = self.config.cache_capacity;
        let mut cache = lock_poisonless(&self.cache);
        if let Some(idx) = cache
            .iter()
            .position(|e| e.version == version && e.name == name)
        {
            cache.remove(idx);
        }
        if capacity == 0 {
            return;
        }
        while cache.len() >= capacity {
            cache.remove(0);
        }
        cache.push(CacheEntry {
            name: name.to_owned(),
            version,
            artifact,
        });
    }
}

fn lock_poisonless<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gestureprint_core::artifact::kinds;
    use gp_codec::Value;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gp-store-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn report(x: i64) -> Artifact {
        Artifact::new(kinds::REPORT, Value::record([("x", Value::Int(x))]))
    }

    #[test]
    fn publish_load_roundtrip_and_versioning() {
        let root = tmp_root("roundtrip");
        let reg = ArtifactRegistry::open(&root, RegistryConfig::default()).unwrap();
        assert_eq!(reg.publish("report", report(1)).unwrap(), 1);
        assert_eq!(reg.publish("report", report(2)).unwrap(), 2);
        let (version, latest) = reg.load_latest("report").unwrap();
        assert_eq!(version, 2);
        assert_eq!(latest.payload.get::<i64>("x").unwrap(), 2);
        assert_eq!(
            reg.load_version("report", 1)
                .unwrap()
                .payload
                .get::<i64>("x")
                .unwrap(),
            1
        );
        assert_eq!(reg.names().unwrap(), vec!["report".to_owned()]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn lru_hits_skip_decode() {
        let root = tmp_root("lru");
        let reg = ArtifactRegistry::open(&root, RegistryConfig::default()).unwrap();
        reg.publish("m", report(7)).unwrap();
        // publish seeds the cache: the first load is already a hit.
        let a = reg.load_latest("m").unwrap().1;
        let b = reg.load_latest("m").unwrap().1;
        assert!(Arc::ptr_eq(&a, &b), "hits share one decoded artifact");
        assert_eq!(reg.lru_hits(), 2);
        assert_eq!(reg.lru_misses(), 0);

        // A cold registry over the same directory must miss, then hit.
        let cold = ArtifactRegistry::open(&root, RegistryConfig::default()).unwrap();
        cold.load_latest("m").unwrap();
        cold.load_latest("m").unwrap();
        assert_eq!(cold.lru_misses(), 1);
        assert_eq!(cold.lru_hits(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn lru_evicts_at_capacity() {
        let root = tmp_root("evict");
        let config = RegistryConfig {
            cache_capacity: 2,
            ..RegistryConfig::default()
        };
        let reg = ArtifactRegistry::open(&root, config).unwrap();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            reg.publish(name, report(i as i64)).unwrap();
        }
        // "a" was evicted by "c"; loading it is a miss, "c" stays hot.
        reg.load_latest("a").unwrap();
        assert_eq!(reg.lru_misses(), 1);
        reg.load_latest("c").unwrap();
        assert_eq!(reg.lru_hits(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn retention_prunes_old_versions() {
        let root = tmp_root("retain");
        let config = RegistryConfig {
            retain: 2,
            ..RegistryConfig::default()
        };
        let reg = ArtifactRegistry::open(&root, config).unwrap();
        for i in 0..5 {
            reg.publish("r", report(i)).unwrap();
        }
        assert_eq!(reg.versions("r").unwrap(), vec![4, 5]);
        // Pruned versions are really gone.
        assert!(matches!(
            reg.load_version("r", 1),
            Err(StoreError::NotFound { .. })
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn crash_sim_leaves_no_torn_artifact() {
        let root = tmp_root("crash");
        let reg = ArtifactRegistry::open(&root, RegistryConfig::default()).unwrap();
        reg.publish("m", report(1)).unwrap();

        // Simulate a crash mid-write: a half-written tempfile appears
        // in the artifact directory, never renamed.
        let torn = root.join("m").join(".tmp-99999-0");
        std::fs::write(&torn, b"{\"schema_version\":1,\"kin").unwrap();

        // Readers never see it: the only version is the published one.
        assert_eq!(reg.versions("m").unwrap(), vec![1]);
        let fresh = ArtifactRegistry::open(&root, RegistryConfig::default()).unwrap();
        let (v, artifact) = fresh.load_latest("m").unwrap();
        assert_eq!(v, 1);
        assert_eq!(artifact.payload.get::<i64>("x").unwrap(), 1);
        // ...and the reopen swept the leftover.
        assert!(!torn.exists(), "stranded tempfile survived the sweep");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn bad_names_rejected() {
        let root = tmp_root("names");
        let reg = ArtifactRegistry::open(&root, RegistryConfig::default()).unwrap();
        for bad in ["", "../evil", "a/b", ".hidden", "nul\0byte"] {
            assert!(
                matches!(reg.publish(bad, report(0)), Err(StoreError::InvalidName(_))),
                "{bad:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn telemetry_counts_mirror_internal_counters() {
        let root = tmp_root("telemetry");
        let reg = ArtifactRegistry::open(&root, RegistryConfig::default()).unwrap();
        reg.publish("m", report(3)).unwrap();
        reg.load_latest("m").unwrap(); // pre-attach hit
        let telemetry = gp_telemetry::Registry::new();
        reg.attach_telemetry(&telemetry);
        reg.load_latest("m").unwrap(); // post-attach hit
        reg.publish("m", report(4)).unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(snap.counters["store.registry.lru_hits"], 2);
        assert_eq!(snap.counters["store.registry.lru_misses"], 0);
        assert_eq!(snap.counters["store.registry.publishes"], 1);
        assert_eq!(snap.histograms["store.registry.load"].count(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }
}
