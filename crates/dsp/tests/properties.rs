//! Property-based tests for the DSP primitives.

use gp_dsp::fft::{fft, fft_in_place, ifft_in_place, next_power_of_two};
use gp_dsp::window::WindowKind;
use gp_dsp::Complex;
use proptest::prelude::*;

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec(
        (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(re, im)| Complex::new(re, im)),
        len,
    )
}

proptest! {
    #[test]
    fn fft_roundtrip_is_identity(signal in complex_vec(64)) {
        let mut buf = signal.clone();
        fft_in_place(&mut buf);
        ifft_in_place(&mut buf);
        for (a, b) in buf.iter().zip(signal.iter()) {
            prop_assert!((*a - *b).norm() < 1e-6);
        }
    }

    #[test]
    fn fft_preserves_energy(signal in complex_vec(128)) {
        let time: f64 = signal.iter().map(|z| z.norm_sqr()).sum();
        let spec = fft(&signal);
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        prop_assert!((time - freq).abs() <= 1e-6 * time.max(1.0));
    }

    #[test]
    fn fft_is_linear(a in complex_vec(32), b in complex_vec(32), k in -10.0f64..10.0) {
        let combo: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + y.scale(k)).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fc = fft(&combo);
        for i in 0..32 {
            let expect = fa[i] + fb[i].scale(k);
            prop_assert!((fc[i] - expect).norm() < 1e-5);
        }
    }

    #[test]
    fn next_power_of_two_properties(n in 1usize..100_000) {
        let p = next_power_of_two(n);
        prop_assert!(p >= n);
        prop_assert!(p.is_power_of_two());
        prop_assert!(p / 2 < n);
    }

    #[test]
    fn windows_bounded_and_symmetric(n in 2usize..256) {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            let w = kind.coefficients(n);
            prop_assert_eq!(w.len(), n);
            for i in 0..n {
                prop_assert!(w[i] <= 1.0 + 1e-12 && w[i] >= -1e-9);
                prop_assert!((w[i] - w[n - 1 - i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cfar_detections_exceed_noise(seed_peaks in prop::collection::vec(5usize..120, 0..4)) {
        let mut power = vec![1.0f64; 128];
        for &p in &seed_peaks {
            power[p] = 500.0;
        }
        let config = gp_dsp::CfarConfig::default();
        for det in gp_dsp::cfar::cfar_1d(&power, &config) {
            prop_assert!(det.power > det.noise * config.threshold_factor);
        }
    }
}
