//! Signal-processing primitives for the GesturePrint FMCW radar simulator.
//!
//! This crate provides the numerical building blocks that the radar signal
//! chain in `gp-radar` is assembled from:
//!
//! * [`Complex`] — a minimal complex-number type (`f64` parts),
//! * [`fft`] — an iterative radix-2 decimation-in-time FFT with inverse and
//!   shift helpers,
//! * [`window`] — Hann / Hamming / Blackman tapers,
//! * [`cfar`] — cell-averaging constant false-alarm rate detectors in one
//!   and two dimensions.
//!
//! The implementations favour clarity and determinism over raw speed; all
//! routines are allocation-explicit and free of global state so they can be
//! benchmarked in isolation (see the `gp-bench` crate).
//!
//! # Example
//!
//! ```
//! use gp_dsp::{fft, Complex};
//!
//! // A pure tone ends up in a single FFT bin.
//! let n = 64;
//! let tone: Vec<Complex> = (0..n)
//!     .map(|i| Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * 5.0 * i as f64 / n as f64))
//!     .collect();
//! let spectrum = fft::fft(&tone);
//! let peak = spectrum
//!     .iter()
//!     .enumerate()
//!     .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
//!     .map(|(i, _)| i)
//!     .unwrap();
//! assert_eq!(peak, 5);
//! ```

pub mod cfar;
pub mod complex;
pub mod fft;
pub mod window;

pub use cfar::{CfarConfig, CfarDetection};
pub use complex::Complex;
