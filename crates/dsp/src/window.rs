//! Window (taper) functions applied before FFTs to control spectral leakage.

use std::f64::consts::PI;

/// The window family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// Rectangular (no taper).
    Rectangular,
    /// Hann window: `0.5 − 0.5·cos(2πn/(N−1))`.
    Hann,
    /// Hamming window: `0.54 − 0.46·cos(2πn/(N−1))`.
    Hamming,
    /// Blackman window (three-term).
    Blackman,
}

impl WindowKind {
    /// Generates the window coefficients for length `n`.
    ///
    /// For `n == 1` every window degenerates to `[1.0]`.
    ///
    /// ```
    /// use gp_dsp::window::WindowKind;
    /// let w = WindowKind::Hann.coefficients(8);
    /// assert_eq!(w.len(), 8);
    /// assert!(w[0] < 1e-12); // Hann starts at zero
    /// ```
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let denom = (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = 2.0 * PI * i as f64 / denom;
                match self {
                    WindowKind::Rectangular => 1.0,
                    WindowKind::Hann => 0.5 - 0.5 * x.cos(),
                    WindowKind::Hamming => 0.54 - 0.46 * x.cos(),
                    WindowKind::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
                }
            })
            .collect()
    }

    /// The coherent gain (mean coefficient) of the window, used to
    /// renormalise amplitudes after windowing.
    pub fn coherent_gain(self, n: usize) -> f64 {
        let c = self.coefficients(n);
        if c.is_empty() {
            return 0.0;
        }
        c.iter().sum::<f64>() / c.len() as f64
    }
}

/// Multiplies `data` element-wise by the window `w`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn apply_window(data: &mut [crate::Complex], w: &[f64]) {
    assert_eq!(data.len(), w.len(), "window length mismatch");
    for (z, &c) in data.iter_mut().zip(w.iter()) {
        *z = z.scale(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_bounds() {
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
        ] {
            let w = kind.coefficients(33);
            assert_eq!(w.len(), 33);
            for &c in &w {
                assert!(
                    (-1e-12..=1.0 + 1e-12).contains(&c),
                    "{kind:?} out of range: {c}"
                );
            }
        }
    }

    #[test]
    fn symmetry() {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            let w = kind.coefficients(64);
            for i in 0..32 {
                assert!(
                    (w[i] - w[63 - i]).abs() < 1e-12,
                    "{kind:?} not symmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn hann_peak_is_one() {
        let w = WindowKind::Hann.coefficients(65);
        assert!((w[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rectangular_gain_is_one() {
        assert!((WindowKind::Rectangular.coherent_gain(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_gain_is_half() {
        // Asymptotically 0.5 for large N.
        assert!((WindowKind::Hann.coherent_gain(4096) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn degenerate_lengths() {
        assert!(WindowKind::Hann.coefficients(0).is_empty());
        assert_eq!(WindowKind::Hann.coefficients(1), vec![1.0]);
    }

    #[test]
    fn apply_scales_signal() {
        let mut data = vec![crate::Complex::ONE; 4];
        apply_window(&mut data, &[0.0, 0.5, 1.0, 2.0]);
        assert_eq!(data[0], crate::Complex::ZERO);
        assert_eq!(data[3], crate::Complex::new(2.0, 0.0));
    }
}
