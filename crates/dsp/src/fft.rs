//! Iterative radix-2 decimation-in-time fast Fourier transform.
//!
//! The FMCW signal chain uses three FFT passes (range, Doppler, angle), all
//! over power-of-two lengths, so a classic in-place radix-2 butterfly with a
//! precomputed twiddle table covers every need of the simulator.

use crate::complex::Complex;
use std::f64::consts::PI;

/// Returns `true` if `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Returns the smallest power of two `>= n` (minimum 1).
///
/// ```
/// assert_eq!(gp_dsp::fft::next_power_of_two(5), 8);
/// assert_eq!(gp_dsp::fft::next_power_of_two(8), 8);
/// ```
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    transform(data, false);
}

/// In-place inverse FFT (includes the `1/N` normalisation).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft_in_place(data: &mut [Complex]) {
    transform(data, true);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = *z / n;
    }
}

/// Out-of-place forward FFT; the input is zero-padded to the next power of
/// two if necessary.
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let n = next_power_of_two(input.len());
    let mut buf = Vec::with_capacity(n);
    buf.extend_from_slice(input);
    buf.resize(n, Complex::ZERO);
    fft_in_place(&mut buf);
    buf
}

/// Out-of-place inverse FFT; the input is zero-padded to the next power of
/// two if necessary.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let n = next_power_of_two(input.len());
    let mut buf = Vec::with_capacity(n);
    buf.extend_from_slice(input);
    buf.resize(n, Complex::ZERO);
    ifft_in_place(&mut buf);
    buf
}

/// FFT of a real-valued signal (convenience wrapper).
pub fn fft_real(input: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = input.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft(&buf)
}

/// Swaps the two halves of a spectrum so that the zero-frequency bin is
/// centred, matching the usual Doppler-map layout where negative velocities
/// occupy the left half.
///
/// # Panics
///
/// Panics if the length is odd.
pub fn fft_shift<T: Copy>(data: &mut [T]) {
    let n = data.len();
    assert!(n % 2 == 0, "fft_shift requires an even length, got {n}");
    let half = n / 2;
    for i in 0..half {
        data.swap(i, i + half);
    }
}

/// Maps a centred (post-[`fft_shift`]) bin index back to a signed frequency
/// index in `[-n/2, n/2)`.
#[inline]
pub fn shifted_bin_to_signed(bin: usize, n: usize) -> isize {
    bin as isize - (n / 2) as isize
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(
        is_power_of_two(n),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, eps: f64) {
        assert!(
            (a - b).norm() < eps,
            "expected {b} within {eps}, got {a} (delta {})",
            (a - b).norm()
        );
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft_in_place(&mut data);
        for z in &data {
            assert_close(*z, Complex::ONE, 1e-12);
        }
    }

    #[test]
    fn constant_concentrates_in_dc() {
        let mut data = vec![Complex::ONE; 16];
        fft_in_place(&mut data);
        assert_close(data[0], Complex::new(16.0, 0.0), 1e-12);
        for z in &data[1..] {
            assert!(z.norm() < 1e-10);
        }
    }

    #[test]
    fn tone_lands_in_expected_bin() {
        let n = 128;
        let k = 17;
        let tone: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * PI * k as f64 * i as f64 / n as f64))
            .collect();
        let spec = fft(&tone);
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
            .unwrap()
            .0;
        assert_eq!(peak, k);
        assert!((spec[k].norm() - n as f64).abs() < 1e-9);
    }

    #[test]
    fn roundtrip_recovers_signal() {
        let n = 64;
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut buf = signal.clone();
        fft_in_place(&mut buf);
        ifft_in_place(&mut buf);
        for (a, b) in buf.iter().zip(signal.iter()) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn zero_pads_non_power_of_two() {
        let spec = fft(&[Complex::ONE; 5]);
        assert_eq!(spec.len(), 8);
    }

    #[test]
    fn shift_centers_dc() {
        let mut bins: Vec<usize> = (0..8).collect();
        fft_shift(&mut bins);
        assert_eq!(bins, vec![4, 5, 6, 7, 0, 1, 2, 3]);
        assert_eq!(shifted_bin_to_signed(4, 8), 0);
        assert_eq!(shifted_bin_to_signed(0, 8), -4);
        assert_eq!(shifted_bin_to_signed(7, 8), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn in_place_rejects_non_power_of_two() {
        let mut data = vec![Complex::ZERO; 6];
        fft_in_place(&mut data);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.0)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(0.0, (i * i) as f64)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        for i in 0..n {
            assert_close(fsum[i], fa[i] + fb[i], 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 64;
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let time_energy: f64 = signal.iter().map(|z| z.norm_sqr()).sum();
        let spec = fft(&signal);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }
}
