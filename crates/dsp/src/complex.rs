//! A minimal complex-number type.
//!
//! The radar simulator only needs a handful of operations (add, sub, mul,
//! scale, conjugate, polar conversion), so rather than pulling in an external
//! numerics crate we define a small `Copy` struct with exactly those.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Example
///
/// ```
/// use gp_dsp::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// let c = a * b;
/// assert_eq!(c, Complex::new(5.0, 5.0));
/// assert!((a.norm() - 5.0f64.sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// ```
    /// use gp_dsp::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!(z.re.abs() < 1e-12 && (z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, a unit phasor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// The modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared modulus `|z|²` (cheaper than [`Complex::norm`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.5, 4.0);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn mul_matches_polar() {
        let a = Complex::from_polar(2.0, 0.3);
        let b = Complex::from_polar(3.0, 0.9);
        let c = a * b;
        assert!((c.norm() - 6.0).abs() < EPS);
        assert!((c.arg() - 1.2).abs() < EPS);
    }

    #[test]
    fn conj_negates_imaginary() {
        let z = Complex::new(1.0, 2.0);
        assert_eq!(z.conj(), Complex::new(1.0, -2.0));
        assert!((z * z.conj()).im.abs() < EPS);
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < EPS);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let z = Complex::cis(k as f64 * 0.5);
            assert!((z.norm() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn sum_of_phasors_cancels() {
        // The N-th roots of unity sum to zero.
        let n = 8;
        let s: Complex = (0..n)
            .map(|k| Complex::cis(2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .sum();
        assert!(s.norm() < 1e-10);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn scale_and_div() {
        let z = Complex::new(2.0, -4.0);
        assert_eq!(z * 0.5, Complex::new(1.0, -2.0));
        assert_eq!(z / 2.0, Complex::new(1.0, -2.0));
    }
}
