//! Cell-averaging constant false-alarm rate (CA-CFAR) detection.
//!
//! CFAR is the detection step the TI radar firmware runs on the
//! range–Doppler map: a cell is declared a target when its power exceeds the
//! local noise estimate (the mean of surrounding *training* cells, skipping
//! nearby *guard* cells) by a threshold factor. GesturePrint relies on this
//! step to turn dense maps into sparse point clouds, and the
//! range-dependent miss behaviour of CFAR is what makes distant gestures
//! sparser (paper Fig. 11).

/// Configuration for a CA-CFAR detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfarConfig {
    /// Number of guard cells on each side of the cell under test.
    pub guard_cells: usize,
    /// Number of training cells on each side (beyond the guard cells).
    pub training_cells: usize,
    /// Multiplicative threshold over the noise estimate (linear power).
    pub threshold_factor: f64,
}

impl Default for CfarConfig {
    fn default() -> Self {
        CfarConfig {
            guard_cells: 2,
            training_cells: 8,
            threshold_factor: 6.0,
        }
    }
}

/// A detection produced by a CFAR pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfarDetection {
    /// Index of the detected cell (row-major `(row, col)` for 2-D).
    pub index: (usize, usize),
    /// Power of the detected cell.
    pub power: f64,
    /// Estimated local noise floor.
    pub noise: f64,
}

impl CfarDetection {
    /// Detection signal-to-noise ratio (linear).
    pub fn snr(&self) -> f64 {
        if self.noise > 0.0 {
            self.power / self.noise
        } else {
            f64::INFINITY
        }
    }
}

/// Runs 1-D CA-CFAR over a power profile.
///
/// Cells too close to the edges (where the full training band does not fit)
/// use the available one-sided estimate; this matches practical
/// implementations that clamp rather than skip the borders.
pub fn cfar_1d(power: &[f64], config: &CfarConfig) -> Vec<CfarDetection> {
    let n = power.len();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    let g = config.guard_cells;
    let t = config.training_cells;
    for i in 0..n {
        let mut sum = 0.0;
        let mut count = 0usize;
        // Left training band.
        let lo_end = i.saturating_sub(g);
        let lo_start = i.saturating_sub(g + t);
        for j in lo_start..lo_end {
            sum += power[j];
            count += 1;
        }
        // Right training band.
        let hi_start = (i + g + 1).min(n);
        let hi_end = (i + g + t + 1).min(n);
        for j in hi_start..hi_end {
            sum += power[j];
            count += 1;
        }
        if count == 0 {
            continue;
        }
        let noise = sum / count as f64;
        if power[i] > noise * config.threshold_factor {
            out.push(CfarDetection {
                index: (0, i),
                power: power[i],
                noise,
            });
        }
    }
    out
}

/// Runs 2-D CA-CFAR over a power map laid out row-major as
/// `rows × cols` (e.g. Doppler × range), using a square training annulus.
///
/// # Panics
///
/// Panics if `power.len() != rows * cols`.
pub fn cfar_2d(power: &[f64], rows: usize, cols: usize, config: &CfarConfig) -> Vec<CfarDetection> {
    assert_eq!(power.len(), rows * cols, "power map shape mismatch");
    let mut out = Vec::new();
    if rows == 0 || cols == 0 {
        return out;
    }
    let g = config.guard_cells as isize;
    let t = config.training_cells as isize;
    let win = g + t;
    for r in 0..rows as isize {
        for c in 0..cols as isize {
            let mut sum = 0.0;
            let mut count = 0usize;
            for dr in -win..=win {
                for dc in -win..=win {
                    if dr.abs() <= g && dc.abs() <= g {
                        continue; // guard region (includes CUT)
                    }
                    let rr = r + dr;
                    let cc = c + dc;
                    if rr < 0 || cc < 0 || rr >= rows as isize || cc >= cols as isize {
                        continue;
                    }
                    sum += power[rr as usize * cols + cc as usize];
                    count += 1;
                }
            }
            if count == 0 {
                continue;
            }
            let noise = sum / count as f64;
            let p = power[r as usize * cols + c as usize];
            if p > noise * config.threshold_factor {
                out.push(CfarDetection {
                    index: (r as usize, c as usize),
                    power: p,
                    noise,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_single_peak_1d() {
        let mut power = vec![1.0; 64];
        power[30] = 100.0;
        let det = cfar_1d(&power, &CfarConfig::default());
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].index, (0, 30));
        assert!(det[0].snr() > 50.0);
    }

    #[test]
    fn flat_noise_yields_nothing() {
        let power = vec![3.3; 128];
        assert!(cfar_1d(&power, &CfarConfig::default()).is_empty());
    }

    #[test]
    fn weak_peak_below_threshold_is_missed() {
        let mut power = vec![1.0; 64];
        power[30] = 3.0; // below 6x noise
        assert!(cfar_1d(&power, &CfarConfig::default()).is_empty());
    }

    #[test]
    fn guard_cells_protect_wide_peaks() {
        // A 3-cell-wide target should still be caught because guard cells
        // keep its shoulders out of the noise estimate.
        let mut power = vec![1.0; 64];
        power[29] = 60.0;
        power[30] = 100.0;
        power[31] = 60.0;
        let config = CfarConfig {
            guard_cells: 2,
            training_cells: 8,
            threshold_factor: 6.0,
        };
        let det = cfar_1d(&power, &config);
        let indices: Vec<usize> = det.iter().map(|d| d.index.1).collect();
        assert!(indices.contains(&30), "centre cell missed: {indices:?}");
    }

    #[test]
    fn edge_cells_use_one_sided_estimate() {
        let mut power = vec![1.0; 32];
        power[0] = 100.0;
        let det = cfar_1d(&power, &CfarConfig::default());
        assert!(det.iter().any(|d| d.index.1 == 0));
    }

    #[test]
    fn detects_peak_2d() {
        let rows = 16;
        let cols = 32;
        let mut power = vec![1.0; rows * cols];
        power[5 * cols + 20] = 200.0;
        let det = cfar_2d(&power, rows, cols, &CfarConfig::default());
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].index, (5, 20));
    }

    #[test]
    fn two_separated_peaks_2d() {
        let rows = 32;
        let cols = 32;
        let mut power = vec![1.0; rows * cols];
        power[4 * cols + 4] = 150.0;
        power[28 * cols + 28] = 150.0;
        let det = cfar_2d(&power, rows, cols, &CfarConfig::default());
        let idx: Vec<(usize, usize)> = det.iter().map(|d| d.index).collect();
        assert!(idx.contains(&(4, 4)) && idx.contains(&(28, 28)), "{idx:?}");
    }

    #[test]
    fn empty_input_ok() {
        assert!(cfar_1d(&[], &CfarConfig::default()).is_empty());
        assert!(cfar_2d(&[], 0, 0, &CfarConfig::default()).is_empty());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        cfar_2d(&[1.0; 10], 3, 4, &CfarConfig::default());
    }

    #[test]
    fn higher_threshold_detects_fewer() {
        let mut power = vec![1.0; 64];
        power[10] = 8.0;
        power[40] = 30.0;
        let loose = CfarConfig {
            threshold_factor: 4.0,
            ..CfarConfig::default()
        };
        let strict = CfarConfig {
            threshold_factor: 20.0,
            ..CfarConfig::default()
        };
        assert!(cfar_1d(&power, &loose).len() >= cfar_1d(&power, &strict).len());
    }
}
