//! Range-Doppler chain configuration.

use gp_dsp::window::WindowKind;
use gp_dsp::CfarConfig;

/// Configuration of the range-Doppler synthesis and detection chain.
///
/// Mirrors the FMCW parameters the point-cloud simulator uses
/// (`gp-radar`'s defaults), but sized for a map the conv path can chew
/// through in tier-1 time: 64 range bins × 16 Doppler bins at 10 fps.
#[derive(Debug, Clone, PartialEq)]
pub struct RdConfig {
    /// Fast-time samples per chirp = range FFT length (power of two).
    pub range_bins: usize,
    /// Chirps per frame = Doppler FFT length (power of two, even).
    pub doppler_bins: usize,
    /// Range bin width (m).
    pub range_resolution: f64,
    /// Maximum unambiguous radial velocity (m/s); Doppler bins span
    /// `[-max_velocity, +max_velocity)`.
    pub max_velocity: f64,
    /// Frames per second.
    pub frame_rate: f64,
    /// Radar mount height above the floor (m).
    pub mount_height: f64,
    /// Window applied before both FFT passes.
    pub window: WindowKind,
    /// Returned amplitude scale (matches `gp-radar`'s `amplitude_k`).
    pub amplitude_k: f64,
    /// Standard deviation of the complex thermal noise per sample.
    pub noise_sigma: f64,
    /// Slow-time mean subtraction (moving-target indication) before the
    /// Doppler FFT, removing returns from static clutter.
    pub mti: bool,
    /// CFAR detector for the 2-D map.
    pub cfar: CfarConfig,
}

impl Default for RdConfig {
    fn default() -> Self {
        RdConfig {
            range_bins: 64,
            doppler_bins: 16,
            range_resolution: 0.04,
            max_velocity: 2.7,
            frame_rate: 10.0,
            mount_height: 1.25,
            window: WindowKind::Hann,
            amplitude_k: 10.5,
            noise_sigma: 0.05,
            mti: true,
            cfar: CfarConfig {
                guard_cells: 1,
                training_cells: 4,
                threshold_factor: 8.0,
            },
        }
    }
}

impl RdConfig {
    /// Velocity bin width (m/s).
    pub fn velocity_resolution(&self) -> f64 {
        2.0 * self.max_velocity / self.doppler_bins as f64
    }

    /// Frame interval (s).
    pub fn frame_interval(&self) -> f64 {
        1.0 / self.frame_rate
    }

    /// Maximum representable range (m).
    pub fn max_range(&self) -> f64 {
        self.range_resolution * self.range_bins as f64
    }

    /// The signed velocity (m/s) at the centre of Doppler row `row` of a
    /// shifted map (zero velocity on row `doppler_bins / 2`).
    pub fn row_velocity(&self, row: usize) -> f64 {
        (row as f64 - self.doppler_bins as f64 / 2.0) * self.velocity_resolution()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.range_bins.is_power_of_two() {
            return Err(format!(
                "range_bins must be a power of two: {}",
                self.range_bins
            ));
        }
        if !self.doppler_bins.is_power_of_two() || self.doppler_bins < 2 {
            return Err(format!(
                "doppler_bins must be an even power of two: {}",
                self.doppler_bins
            ));
        }
        if self.range_resolution <= 0.0 || self.max_velocity <= 0.0 || self.frame_rate <= 0.0 {
            return Err("resolutions and frame rate must be positive".into());
        }
        Ok(())
    }
}

fn window_tag(w: WindowKind) -> &'static str {
    match w {
        WindowKind::Rectangular => "rectangular",
        WindowKind::Hann => "hann",
        WindowKind::Hamming => "hamming",
        WindowKind::Blackman => "blackman",
    }
}

fn window_from_tag(tag: &str) -> Result<WindowKind, gp_codec::DecodeError> {
    match tag {
        "rectangular" => Ok(WindowKind::Rectangular),
        "hann" => Ok(WindowKind::Hann),
        "hamming" => Ok(WindowKind::Hamming),
        "blackman" => Ok(WindowKind::Blackman),
        other => Err(gp_codec::DecodeError::new(format!(
            "unknown window kind '{other}'"
        ))),
    }
}

impl gp_codec::Encode for RdConfig {
    fn encode(&self) -> gp_codec::Value {
        gp_codec::Value::record([
            ("range_bins", self.range_bins.encode()),
            ("doppler_bins", self.doppler_bins.encode()),
            ("range_resolution", self.range_resolution.encode()),
            ("max_velocity", self.max_velocity.encode()),
            ("frame_rate", self.frame_rate.encode()),
            ("mount_height", self.mount_height.encode()),
            (
                "window",
                gp_codec::Value::Str(window_tag(self.window).to_owned()),
            ),
            ("amplitude_k", self.amplitude_k.encode()),
            ("noise_sigma", self.noise_sigma.encode()),
            ("mti", self.mti.encode()),
            ("cfar_guard", self.cfar.guard_cells.encode()),
            ("cfar_training", self.cfar.training_cells.encode()),
            ("cfar_threshold", self.cfar.threshold_factor.encode()),
        ])
    }
}

impl gp_codec::Decode for RdConfig {
    fn decode(value: &gp_codec::Value) -> Result<Self, gp_codec::DecodeError> {
        Ok(RdConfig {
            range_bins: value.get("range_bins")?,
            doppler_bins: value.get("doppler_bins")?,
            range_resolution: value.get("range_resolution")?,
            max_velocity: value.get("max_velocity")?,
            frame_rate: value.get("frame_rate")?,
            mount_height: value.get("mount_height")?,
            window: window_from_tag(value.get::<String>("window")?.as_str())?,
            amplitude_k: value.get("amplitude_k")?,
            noise_sigma: value.get("noise_sigma")?,
            mti: value.get("mti")?,
            cfar: CfarConfig {
                guard_cells: value.get("cfar_guard")?,
                training_cells: value.get("cfar_training")?,
                threshold_factor: value.get("cfar_threshold")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_codec::{Decode, Encode};

    #[test]
    fn default_validates() {
        assert!(RdConfig::default().validate().is_ok());
    }

    #[test]
    fn bad_shapes_rejected() {
        let mut cfg = RdConfig::default();
        cfg.range_bins = 60;
        assert!(cfg.validate().is_err());
        let mut cfg = RdConfig::default();
        cfg.doppler_bins = 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn codec_roundtrip() {
        let cfg = RdConfig {
            window: WindowKind::Blackman,
            mti: false,
            ..RdConfig::default()
        };
        let back = RdConfig::decode(&cfg.encode()).expect("roundtrip");
        assert_eq!(back, cfg);
    }

    #[test]
    fn row_velocity_centres_on_zero() {
        let cfg = RdConfig::default();
        assert_eq!(cfg.row_velocity(cfg.doppler_bins / 2), 0.0);
        assert!(cfg.row_velocity(0) < 0.0);
        assert!(
            (cfg.row_velocity(cfg.doppler_bins - 1)
                - (cfg.max_velocity - cfg.velocity_resolution()))
            .abs()
                < 1e-9
        );
    }
}
