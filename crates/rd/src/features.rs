//! Feature extraction: range-Doppler frames → model inputs.
//!
//! The RD backend feeds `RdNet` two views of one segment (the
//! AWR1642-style conv+LSTM split):
//!
//! * `map` — a time-aggregated log-power map, downsampled to a fixed
//!   conv-friendly shape,
//! * `sequence` — per-frame summary features for the recurrent path.
//!
//! Everything here is pure `f64` accumulation in fixed index order, so
//! extraction is bit-deterministic and embarrassingly parallel: the
//! multi-threaded [`extract_all`] is bit-identical to the sequential
//! path at any worker count.

use crate::frame::RdFrame;
use crate::sample::RdLabeledSample;
use gp_runtime::WorkerPool;

/// Width of each per-frame summary vector in [`RdInput::sequence`].
pub const RD_SEQUENCE_FEATURES: usize = 8;

/// RD feature-encoding options.
#[derive(Debug, Clone, PartialEq)]
pub struct RdFeatureConfig {
    /// Aggregated map shape `(doppler, range)`; both divisible by 4
    /// (two conv pooling stages).
    pub map_shape: (usize, usize),
    /// Maximum sequence length (frames) for the recurrent view.
    pub max_frames: usize,
    /// Doppler rows around zero velocity excluded from the "moving"
    /// energy statistics (the clutter notch).
    pub guard_rows: usize,
}

impl Default for RdFeatureConfig {
    fn default() -> Self {
        RdFeatureConfig {
            map_shape: (16, 24),
            max_frames: 40,
            guard_rows: 1,
        }
    }
}

impl gp_codec::Encode for RdFeatureConfig {
    fn encode(&self) -> gp_codec::Value {
        gp_codec::Value::record([
            ("map_shape", self.map_shape.encode()),
            ("max_frames", self.max_frames.encode()),
            ("guard_rows", self.guard_rows.encode()),
        ])
    }
}

impl gp_codec::Decode for RdFeatureConfig {
    fn decode(value: &gp_codec::Value) -> Result<Self, gp_codec::DecodeError> {
        Ok(RdFeatureConfig {
            map_shape: value.get("map_shape")?,
            max_frames: value.get("max_frames")?,
            guard_rows: value.get("guard_rows")?,
        })
    }
}

/// An encoded RD sample.
#[derive(Debug, Clone, PartialEq)]
pub struct RdInput {
    /// Flattened aggregated log-power map (`map_shape.0 × map_shape.1`).
    pub map: Vec<f32>,
    /// Map shape `(doppler, range)`.
    pub map_shape: (usize, usize),
    /// Per-frame summary features ([`RD_SEQUENCE_FEATURES`] wide).
    pub sequence: Vec<Vec<f32>>,
}

fn log_power(p: f64) -> f64 {
    (1.0 + p).ln()
}

/// Log-power of one frame split into `(total, moving)` where "moving"
/// excludes the `guard_rows` rows around zero Doppler.
fn frame_energy(frame: &RdFrame, guard_rows: usize) -> (f64, f64) {
    let centre = frame.doppler_bins / 2;
    let mut total = 0.0;
    let mut moving = 0.0;
    for d in 0..frame.doppler_bins {
        let off_dc = d.abs_diff(centre) > guard_rows;
        for r in 0..frame.range_bins {
            let lp = log_power(frame.power[d * frame.range_bins + r]);
            total += lp;
            if off_dc {
                moving += lp;
            }
        }
    }
    (total, moving)
}

/// Motion energy of a frame — the quantity RD segmentation thresholds.
pub fn motion_energy(frame: &RdFrame, guard_rows: usize) -> f64 {
    frame_energy(frame, guard_rows).1
}

/// Encodes a frame sequence into an [`RdInput`].
pub fn extract(frames: &[RdFrame], config: &RdFeatureConfig) -> RdInput {
    let (md, mr) = config.map_shape;
    let mut map64 = vec![0.0f64; md * mr];

    for frame in frames {
        let (fd, fr) = frame.shape();
        for d in 0..fd {
            let td = d * md / fd.max(1);
            for r in 0..fr {
                let tr = r * mr / fr.max(1);
                map64[td.min(md - 1) * mr + tr.min(mr - 1)] += log_power(frame.power[d * fr + r]);
            }
        }
    }
    let norm = 1.0 / frames.len().max(1) as f64;
    let map: Vec<f32> = map64.iter().map(|v| (v * norm) as f32).collect();

    let mut sequence = Vec::with_capacity(frames.len().min(config.max_frames));
    for frame in frames.iter().take(config.max_frames) {
        sequence.push(frame_summary(frame, config));
    }
    if sequence.is_empty() {
        sequence.push(vec![0.0; RD_SEQUENCE_FEATURES]);
    }

    RdInput {
        map,
        map_shape: config.map_shape,
        sequence,
    }
}

fn frame_summary(frame: &RdFrame, config: &RdFeatureConfig) -> Vec<f32> {
    let (fd, fr) = frame.shape();
    let centre = fd as f64 / 2.0;
    let cells = (fd * fr) as f64;
    let (total, moving) = frame_energy(frame, config.guard_rows);

    // Power-weighted first and second moments of the log-power mass
    // along both axes.
    let mut mass = 0.0;
    let mut mean_d = 0.0;
    let mut mean_r = 0.0;
    let mut peak = 0.0f64;
    for d in 0..fd {
        for r in 0..fr {
            let lp = log_power(frame.power[d * fr + r]);
            mass += lp;
            mean_d += lp * (d as f64 - centre);
            mean_r += lp * r as f64;
            peak = peak.max(lp);
        }
    }
    let (mean_d, mean_r) = if mass > 0.0 {
        (mean_d / mass, mean_r / mass)
    } else {
        (0.0, 0.0)
    };
    let mut var_d = 0.0;
    let mut var_r = 0.0;
    for d in 0..fd {
        for r in 0..fr {
            let lp = log_power(frame.power[d * fr + r]);
            var_d += lp * (d as f64 - centre - mean_d).powi(2);
            var_r += lp * (r as f64 - mean_r).powi(2);
        }
    }
    let (var_d, var_r) = if mass > 0.0 {
        (var_d / mass, var_r / mass)
    } else {
        (0.0, 0.0)
    };

    vec![
        (total / cells) as f32,
        (moving / total.max(1e-12)) as f32,
        (mean_d / centre.max(1.0)) as f32,
        (var_d.sqrt() / centre.max(1.0)) as f32,
        (mean_r / fr as f64) as f32,
        (var_r.sqrt() / fr as f64) as f32,
        peak as f32,
        (moving / cells) as f32,
    ]
}

/// Encodes one labeled sample.
pub fn extract_sample(sample: &RdLabeledSample, config: &RdFeatureConfig) -> RdInput {
    extract(&sample.frames, config)
}

/// Encodes a batch across `threads` workers. Per-sample extraction is
/// pure and outputs are returned in input order, so the result is
/// bit-identical for every thread count (guarded by the property tests).
pub fn extract_all(
    samples: &[&RdLabeledSample],
    config: &RdFeatureConfig,
    threads: usize,
) -> Vec<RdInput> {
    if threads <= 1 || samples.len() <= 1 {
        return samples.iter().map(|s| extract_sample(s, config)).collect();
    }
    let pool = WorkerPool::new(threads);
    pool.scope_map(samples.to_vec(), |_, s| extract_sample(s, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RdConfig;

    fn toy_frame(cfg: &RdConfig, hot: &[(usize, usize, f64)], t: f64) -> RdFrame {
        let mut f = RdFrame::zeros(cfg, t);
        for &(d, r, p) in hot {
            f.power[d * cfg.range_bins + r] = p;
        }
        f
    }

    #[test]
    fn shapes_are_fixed() {
        let cfg = RdConfig::default();
        let fc = RdFeatureConfig::default();
        let frames = vec![toy_frame(&cfg, &[(3, 10, 5.0)], 0.0); 6];
        let input = extract(&frames, &fc);
        assert_eq!(input.map.len(), 16 * 24);
        assert_eq!(input.map_shape, (16, 24));
        assert_eq!(input.sequence.len(), 6);
        assert_eq!(input.sequence[0].len(), RD_SEQUENCE_FEATURES);
    }

    #[test]
    fn empty_input_still_encodes() {
        let input = extract(&[], &RdFeatureConfig::default());
        assert!(input.map.iter().all(|&v| v == 0.0));
        assert_eq!(input.sequence.len(), 1);
    }

    #[test]
    fn motion_energy_ignores_clutter_notch() {
        let cfg = RdConfig::default();
        let centre = cfg.doppler_bins / 2;
        let static_frame = toy_frame(&cfg, &[(centre, 20, 100.0)], 0.0);
        let moving_frame = toy_frame(&cfg, &[(centre + 4, 20, 100.0)], 0.0);
        assert_eq!(motion_energy(&static_frame, 1), 0.0);
        assert!(motion_energy(&moving_frame, 1) > 1.0);
    }

    #[test]
    fn sequence_respects_max_frames() {
        let cfg = RdConfig::default();
        let fc = RdFeatureConfig {
            max_frames: 4,
            ..RdFeatureConfig::default()
        };
        let frames = vec![toy_frame(&cfg, &[(2, 2, 1.0)], 0.0); 9];
        assert_eq!(extract(&frames, &fc).sequence.len(), 4);
    }

    #[test]
    fn doppler_sign_visible_in_features() {
        let cfg = RdConfig::default();
        let fc = RdFeatureConfig::default();
        let up = extract(&[toy_frame(&cfg, &[(12, 20, 50.0)], 0.0)], &fc);
        let down = extract(&[toy_frame(&cfg, &[(4, 20, 50.0)], 0.0)], &fc);
        assert!(up.sequence[0][2] > 0.0);
        assert!(down.sequence[0][2] < 0.0);
    }
}
