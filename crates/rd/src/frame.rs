//! Range-Doppler power frames and CFAR detection masks.

use crate::config::RdConfig;
use gp_dsp::cfar::cfar_2d;

/// One processed radar frame: a Doppler × range power map.
///
/// Rows are Doppler bins after `fft_shift` (zero velocity on the centre
/// row, negative velocities above it), columns are range bins. Power is
/// linear (`|X|²`).
#[derive(Debug, Clone, PartialEq)]
pub struct RdFrame {
    /// Capture time of the frame (s).
    pub timestamp: f64,
    /// Doppler rows.
    pub doppler_bins: usize,
    /// Range columns.
    pub range_bins: usize,
    /// Row-major `doppler_bins × range_bins` linear power.
    pub power: Vec<f64>,
}

impl RdFrame {
    /// An all-zero frame of the configured shape.
    pub fn zeros(config: &RdConfig, timestamp: f64) -> Self {
        RdFrame {
            timestamp,
            doppler_bins: config.doppler_bins,
            range_bins: config.range_bins,
            power: vec![0.0; config.doppler_bins * config.range_bins],
        }
    }

    /// Map shape `(doppler_bins, range_bins)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.doppler_bins, self.range_bins)
    }

    /// Power of cell `(doppler_row, range_col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn at(&self, doppler_row: usize, range_col: usize) -> f64 {
        assert!(doppler_row < self.doppler_bins && range_col < self.range_bins);
        self.power[doppler_row * self.range_bins + range_col]
    }

    /// Total linear power over the map.
    pub fn total_power(&self) -> f64 {
        self.power.iter().sum()
    }

    /// The `(doppler_row, range_col)` of the strongest cell.
    pub fn peak(&self) -> (usize, usize) {
        let mut best = 0usize;
        for (i, &p) in self.power.iter().enumerate() {
            if p > self.power[best] {
                best = i;
            }
        }
        (best / self.range_bins, best % self.range_bins)
    }

    /// Runs the configured 2-D CFAR over the map, returning a boolean
    /// detection mask in row-major map order. Deterministic: equal maps
    /// give equal masks.
    pub fn detection_mask(&self, config: &RdConfig) -> Vec<bool> {
        let mut mask = vec![false; self.power.len()];
        for det in cfar_2d(
            &self.power,
            self.doppler_bins,
            self.range_bins,
            &config.cfar,
        ) {
            mask[det.index.0 * self.range_bins + det.index.1] = true;
        }
        mask
    }

    /// Number of CFAR detections in the map.
    pub fn detection_count(&self, config: &RdConfig) -> usize {
        self.detection_mask(config).iter().filter(|&&d| d).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_peak() {
        let cfg = RdConfig::default();
        let mut f = RdFrame::zeros(&cfg, 0.3);
        assert_eq!(f.shape(), (16, 64));
        assert_eq!(f.total_power(), 0.0);
        f.power[5 * 64 + 30] = 2.0;
        assert_eq!(f.peak(), (5, 30));
        assert_eq!(f.at(5, 30), 2.0);
    }

    #[test]
    fn mask_flags_isolated_peak() {
        let cfg = RdConfig::default();
        let mut f = RdFrame::zeros(&cfg, 0.0);
        for p in f.power.iter_mut() {
            *p = 1.0;
        }
        f.power[7 * 64 + 12] = 500.0;
        let mask = f.detection_mask(&cfg);
        assert!(mask[7 * 64 + 12]);
        assert_eq!(f.detection_count(&cfg), 1);
    }
}
