//! Range-Doppler sensing backend for GesturePrint.
//!
//! The point-cloud pipeline consumes the radar vendor's on-chip
//! detection output; this crate models the alternative tap one level
//! down the FMCW chain — the complex range-Doppler maps themselves:
//!
//! * [`RdSynthesizer`] renders frames from the same `gp-kinematics`
//!   scatterer ground truth the point-cloud simulator animates,
//! * [`RdFrame`] + CFAR masks ([`RdFrame::detection_mask`]) are the
//!   per-frame representation,
//! * [`segment`]/[`OnlineRdSegmenter`] find gesture activity in the
//!   frame stream,
//! * [`extract`] encodes segments into [`RdInput`]s, and
//! * [`RdNet`] is the conv+recurrent classifier trained on them.
//!
//! `gp-core` wraps all of this behind its `SensingBackend` dispatch so
//! serving sessions can declare either modality — or fall back to this
//! one when a point-cloud segment is too sparse to trust.

pub mod config;
pub mod features;
pub mod frame;
pub mod model;
pub mod sample;
pub mod segment;
pub mod synth;

pub use config::RdConfig;
pub use features::{
    extract, extract_all, extract_sample, motion_energy, RdFeatureConfig, RdInput,
    RD_SEQUENCE_FEATURES,
};
pub use frame::RdFrame;
pub use model::RdNet;
pub use sample::RdLabeledSample;
pub use segment::{dominant_segment, segment, OnlineRdSegmenter, RdSegment, RdSegmentConfig};
pub use synth::RdSynthesizer;
