//! Motion segmentation over range-Doppler frame streams.
//!
//! With MTI on, idle frames carry only noise residue, so gesture
//! activity shows up as a rise in off-DC ("moving") log-power. The
//! segmenter tracks an exponential moving baseline of that energy while
//! idle and opens a segment when energy exceeds `threshold_factor ×
//! baseline`, closing it after `max_gap` quiet frames. The same state
//! machine backs the offline [`segment`] helper and the incremental
//! [`OnlineRdSegmenter`] the serving path drives frame by frame.

use crate::features::motion_energy;
use crate::frame::RdFrame;

/// Segmentation thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct RdSegmentConfig {
    /// Doppler rows around zero excluded from motion energy.
    pub guard_rows: usize,
    /// A frame is "active" when its motion energy exceeds this factor
    /// times the idle baseline.
    pub threshold_factor: f64,
    /// EMA coefficient for the idle baseline update.
    pub baseline_alpha: f64,
    /// Floor for the baseline so an all-zero warmup cannot make every
    /// later frame active.
    pub baseline_floor: f64,
    /// Minimum segment length (frames); shorter bursts are dropped.
    pub min_frames: usize,
    /// Quiet frames tolerated inside a segment before it closes.
    pub max_gap: usize,
}

impl Default for RdSegmentConfig {
    fn default() -> Self {
        RdSegmentConfig {
            guard_rows: 1,
            threshold_factor: 3.0,
            baseline_alpha: 0.1,
            baseline_floor: 1.0,
            min_frames: 4,
            max_gap: 3,
        }
    }
}

impl gp_codec::Encode for RdSegmentConfig {
    fn encode(&self) -> gp_codec::Value {
        gp_codec::Value::record([
            ("guard_rows", self.guard_rows.encode()),
            ("threshold_factor", self.threshold_factor.encode()),
            ("baseline_alpha", self.baseline_alpha.encode()),
            ("baseline_floor", self.baseline_floor.encode()),
            ("min_frames", self.min_frames.encode()),
            ("max_gap", self.max_gap.encode()),
        ])
    }
}

impl gp_codec::Decode for RdSegmentConfig {
    fn decode(value: &gp_codec::Value) -> Result<Self, gp_codec::DecodeError> {
        Ok(RdSegmentConfig {
            guard_rows: value.get("guard_rows")?,
            threshold_factor: value.get("threshold_factor")?,
            baseline_alpha: value.get("baseline_alpha")?,
            baseline_floor: value.get("baseline_floor")?,
            min_frames: value.get("min_frames")?,
            max_gap: value.get("max_gap")?,
        })
    }
}

/// A detected `[start, end)` active interval in frame indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RdSegment {
    /// First frame of the segment.
    pub start: usize,
    /// One past the last frame of the segment.
    pub end: usize,
}

impl RdSegment {
    /// Segment length in frames.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the segment is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Incremental segmenter: feed frames in order, collect closed
/// segments.
#[derive(Debug, Clone)]
pub struct OnlineRdSegmenter {
    config: RdSegmentConfig,
    baseline: f64,
    index: usize,
    open: Option<(usize, usize)>, // (start, last_active)
    gap: usize,
}

impl OnlineRdSegmenter {
    /// A fresh segmenter with no history.
    pub fn new(config: RdSegmentConfig) -> Self {
        let baseline = config.baseline_floor;
        OnlineRdSegmenter {
            config,
            baseline,
            index: 0,
            open: None,
            gap: 0,
        }
    }

    /// Number of frames consumed so far.
    pub fn frames_seen(&self) -> usize {
        self.index
    }

    /// True while a segment is open (activity ongoing).
    pub fn in_segment(&self) -> bool {
        self.open.is_some()
    }

    /// Index of the earliest frame any segment this stream can still
    /// produce may reference: the open segment's start, or the next
    /// frame's index while idle (a new segment never opens in the
    /// past). Serving buffers trim up to this point.
    pub fn earliest_needed(&self) -> usize {
        self.open.map_or(self.index, |(start, _)| start)
    }

    /// Consumes one frame; returns a segment if this frame closed one.
    pub fn push(&mut self, frame: &RdFrame) -> Option<RdSegment> {
        let energy = motion_energy(frame, self.config.guard_rows);
        let active = energy > self.config.threshold_factor * self.baseline;
        let index = self.index;
        self.index += 1;

        if !active {
            // Only idle frames feed the baseline, so a long gesture
            // cannot drag the threshold up underneath itself.
            self.baseline = ((1.0 - self.config.baseline_alpha) * self.baseline
                + self.config.baseline_alpha * energy)
                .max(self.config.baseline_floor);
        }

        match (&mut self.open, active) {
            (None, true) => {
                self.open = Some((index, index));
                self.gap = 0;
                None
            }
            (None, false) => None,
            (Some((_, last)), true) => {
                *last = index;
                self.gap = 0;
                None
            }
            (Some(_), false) => {
                self.gap += 1;
                if self.gap > self.config.max_gap {
                    self.take_closed()
                } else {
                    None
                }
            }
        }
    }

    /// Closes any open segment at end of stream.
    pub fn finish(&mut self) -> Option<RdSegment> {
        self.take_closed()
    }

    fn take_closed(&mut self) -> Option<RdSegment> {
        let (start, last) = self.open.take()?;
        self.gap = 0;
        let seg = RdSegment {
            start,
            end: last + 1,
        };
        (seg.len() >= self.config.min_frames).then_some(seg)
    }
}

/// Segments a complete capture, returning active intervals in order.
pub fn segment(frames: &[RdFrame], config: &RdSegmentConfig) -> Vec<RdSegment> {
    let mut online = OnlineRdSegmenter::new(config.clone());
    let mut out = Vec::new();
    for frame in frames {
        if let Some(seg) = online.push(frame) {
            out.push(seg);
        }
    }
    if let Some(seg) = online.finish() {
        out.push(seg);
    }
    out
}

/// The longest detected segment of a capture, if any.
pub fn dominant_segment(frames: &[RdFrame], config: &RdSegmentConfig) -> Option<RdSegment> {
    segment(frames, config)
        .into_iter()
        .max_by_key(RdSegment::len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RdConfig;

    /// A frame whose off-DC log-power sums to roughly `level`.
    fn frame_with_energy(cfg: &RdConfig, level: f64, t: f64) -> RdFrame {
        let mut f = RdFrame::zeros(cfg, t);
        if level > 0.0 {
            f.power[12 * cfg.range_bins + 20] = level.exp() - 1.0;
        }
        f
    }

    fn capture(cfg: &RdConfig, active: &[(usize, usize)], len: usize) -> Vec<RdFrame> {
        (0..len)
            .map(|i| {
                let on = active.iter().any(|&(s, e)| i >= s && i < e);
                frame_with_energy(cfg, if on { 20.0 } else { 0.1 }, i as f64 * 0.1)
            })
            .collect()
    }

    #[test]
    fn finds_single_burst() {
        let cfg = RdConfig::default();
        let frames = capture(&cfg, &[(10, 22)], 40);
        let segs = segment(&frames, &RdSegmentConfig::default());
        assert_eq!(segs, vec![RdSegment { start: 10, end: 22 }]);
    }

    #[test]
    fn bridges_short_gap_and_splits_long() {
        let cfg = RdConfig::default();
        let sc = RdSegmentConfig::default();
        // Gap of 2 (< max_gap) bridges into one segment.
        let frames = capture(&cfg, &[(5, 10), (12, 18)], 30);
        let segs = segment(&frames, &sc);
        assert_eq!(segs, vec![RdSegment { start: 5, end: 18 }]);
        // Gap of 8 splits.
        let frames = capture(&cfg, &[(5, 10), (18, 24)], 34);
        let segs = segment(&frames, &sc);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0], RdSegment { start: 5, end: 10 });
        assert_eq!(segs[1], RdSegment { start: 18, end: 24 });
    }

    #[test]
    fn drops_sub_minimum_blips() {
        let cfg = RdConfig::default();
        let frames = capture(&cfg, &[(10, 12)], 30);
        assert!(segment(&frames, &RdSegmentConfig::default()).is_empty());
    }

    #[test]
    fn closes_open_segment_at_stream_end() {
        let cfg = RdConfig::default();
        let frames = capture(&cfg, &[(24, 30)], 30);
        let segs = segment(&frames, &RdSegmentConfig::default());
        assert_eq!(segs, vec![RdSegment { start: 24, end: 30 }]);
    }

    #[test]
    fn earliest_needed_tracks_open_segment() {
        let cfg = RdConfig::default();
        let sc = RdSegmentConfig::default();
        let mut online = OnlineRdSegmenter::new(sc);
        // Idle frames: nothing to retain — the trim point follows the
        // stream head.
        for i in 0..5 {
            online.push(&frame_with_energy(&cfg, 0.1, i as f64 * 0.1));
            assert_eq!(online.earliest_needed(), i + 1);
        }
        // Active frames pin the trim point to the segment start.
        for i in 5..9 {
            online.push(&frame_with_energy(&cfg, 20.0, i as f64 * 0.1));
            assert_eq!(online.earliest_needed(), 5);
        }
    }

    #[test]
    fn segment_config_roundtrips() {
        use gp_codec::{Decode, Encode};
        let config = RdSegmentConfig {
            min_frames: 6,
            ..RdSegmentConfig::default()
        };
        let decoded = RdSegmentConfig::decode(&config.encode()).expect("roundtrip");
        assert_eq!(decoded, config);
    }

    #[test]
    fn online_matches_offline() {
        let cfg = RdConfig::default();
        let sc = RdSegmentConfig::default();
        let frames = capture(&cfg, &[(6, 16), (25, 33)], 45);
        let offline = segment(&frames, &sc);
        let mut online = OnlineRdSegmenter::new(sc);
        let mut streamed = Vec::new();
        for f in &frames {
            if let Some(s) = online.push(f) {
                streamed.push(s);
            }
        }
        if let Some(s) = online.finish() {
            streamed.push(s);
        }
        assert_eq!(streamed, offline);
    }
}
