//! `RdNet` — the conv+recurrent classifier for the range-Doppler
//! backend.
//!
//! Two branches over one [`RdInput`]: a two-stage 3×3-conv / 2×2-pool
//! stack on the time-aggregated log-power map, and an LSTM over the
//! per-frame summary sequence. Their 32-wide codes are concatenated and
//! fused through a 48-wide ReLU layer (the embedding tap) before the
//! class head — the same fuse-then-classify shape as `GesIDNet` on the
//! point-cloud side.

use crate::features::{RdInput, RD_SEQUENCE_FEATURES};
use gp_nn::conv::{maxpool2x2, maxpool2x2_backward};
use gp_nn::{softmax_cross_entropy, Conv2d, Linear, Lstm, Matrix, Parameterized, Relu};
use rand::Rng;

/// Width of each branch code entering the fusion layer.
const BRANCH_WIDTH: usize = 32;
/// Width of the fused embedding.
const FUSED_WIDTH: usize = 48;

/// Conv+recurrent range-Doppler classifier.
#[derive(Debug, Clone)]
pub struct RdNet {
    classes: usize,
    map_shape: (usize, usize),
    conv1: Conv2d,
    conv2: Conv2d,
    map_fc: Linear,
    lstm: Lstm,
    fuse: Linear,
    head: Linear,
}

struct RdTrace {
    c1: Vec<f32>,
    a1: Vec<f32>,
    p1: Vec<f32>,
    arg1: Vec<usize>,
    c2: Vec<f32>,
    a2: Vec<f32>,
    p2: Vec<f32>,
    arg2: Vec<usize>,
    map_pre: Matrix,
    lstm_trace: gp_nn::lstm::LstmTrace,
    concat: Matrix,
    fuse_pre: Matrix,
    fuse_act: Matrix,
    logits: Vec<f32>,
}

impl RdNet {
    /// Creates the model for maps of `map_shape` (doppler, range). Both
    /// dimensions must be divisible by 4 (two pooling stages).
    ///
    /// # Panics
    ///
    /// Panics if the shape is not divisible by 4.
    pub fn new<R: Rng>(classes: usize, map_shape: (usize, usize), rng: &mut R) -> Self {
        assert!(
            map_shape.0 % 4 == 0 && map_shape.1 % 4 == 0,
            "map shape must be divisible by 4"
        );
        let flat = 12 * (map_shape.0 / 4) * (map_shape.1 / 4);
        RdNet {
            classes,
            map_shape,
            conv1: Conv2d::new(1, 6, rng),
            conv2: Conv2d::new(6, 12, rng),
            map_fc: Linear::new(flat, BRANCH_WIDTH, rng),
            lstm: Lstm::new(RD_SEQUENCE_FEATURES, BRANCH_WIDTH, rng),
            fuse: Linear::new(2 * BRANCH_WIDTH, FUSED_WIDTH, rng),
            head: Linear::new(FUSED_WIDTH, classes, rng),
        }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Map shape the conv branch expects.
    pub fn map_shape(&self) -> (usize, usize) {
        self.map_shape
    }

    /// Model name for telemetry and reports.
    pub fn name(&self) -> &'static str {
        "RdNet"
    }

    fn forward(&self, input: &RdInput) -> RdTrace {
        let (h, w) = self.map_shape;
        assert_eq!(input.map.len(), h * w, "map size mismatch");

        let c1 = self.conv1.forward(&input.map, h, w);
        let a1: Vec<f32> = c1.iter().map(|v| v.max(0.0)).collect();
        let (p1, arg1) = maxpool2x2(&a1, 6, h, w);
        let (h2, w2) = (h / 2, w / 2);
        let c2 = self.conv2.forward(&p1, h2, w2);
        let a2: Vec<f32> = c2.iter().map(|v| v.max(0.0)).collect();
        let (p2, arg2) = maxpool2x2(&a2, 12, h2, w2);
        let map_pre = self.map_fc.forward(&Matrix::from_rows(&[p2.clone()]));
        let map_act = Relu.forward(&map_pre);

        let (lstm_h, lstm_trace) = self.lstm.forward(&input.sequence);

        let mut joined = map_act.row(0).to_vec();
        joined.extend_from_slice(&lstm_h);
        let concat = Matrix::from_rows(&[joined]);
        let fuse_pre = self.fuse.forward(&concat);
        let fuse_act = Relu.forward(&fuse_pre);
        let logits = self.head.forward(&fuse_act).row(0).to_vec();

        RdTrace {
            c1,
            a1,
            p1,
            arg1,
            c2,
            a2,
            p2,
            arg2,
            map_pre,
            lstm_trace,
            concat,
            fuse_pre,
            fuse_act,
            logits,
        }
    }

    /// Class scores for one encoded sample.
    pub fn logits(&self, input: &RdInput) -> Vec<f32> {
        self.forward(input).logits
    }

    /// The fused 48-wide embedding (the identification feature vector).
    pub fn embedding(&self, input: &RdInput) -> Vec<f32> {
        self.forward(input).fuse_act.row(0).to_vec()
    }

    /// One forward/backward pass accumulating gradients; returns the
    /// sample loss. Pair with an external `Adam` step as for the point
    /// models.
    pub fn train_step(&mut self, input: &RdInput, label: usize) -> f32 {
        let (h, w) = self.map_shape;
        let (h2, w2) = (h / 2, w / 2);
        let t = self.forward(input);
        let (loss, grad) = softmax_cross_entropy(&t.logits, label);

        let g = Matrix::from_rows(&[grad]);
        let g = self.head.backward(&t.fuse_act, &g);
        let g = Relu.backward(&t.fuse_pre, &g);
        let dconcat = self.fuse.backward(&t.concat, &g);

        // Split the joint gradient back into the two branches.
        let row = dconcat.row(0);
        let dmap_act = row[..BRANCH_WIDTH].to_vec();
        let dlstm_h = row[BRANCH_WIDTH..].to_vec();

        // Recurrent branch.
        self.lstm.backward(&t.lstm_trace, &dlstm_h);

        // Conv branch.
        let g = Relu.backward(&t.map_pre, &Matrix::from_rows(&[dmap_act]));
        let dflat = self
            .map_fc
            .backward(&Matrix::from_rows(&[t.p2.clone()]), &g);
        let da2 = maxpool2x2_backward(dflat.row(0), &t.arg2, t.a2.len());
        let dc2: Vec<f32> = da2
            .iter()
            .zip(t.c2.iter())
            .map(|(g, &c)| if c > 0.0 { *g } else { 0.0 })
            .collect();
        let dp1 = self.conv2.backward(&t.p1, &dc2, h2, w2);
        let da1 = maxpool2x2_backward(&dp1, &t.arg1, t.a1.len());
        let dc1: Vec<f32> = da1
            .iter()
            .zip(t.c1.iter())
            .map(|(g, &c)| if c > 0.0 { *g } else { 0.0 })
            .collect();
        let _ = self.conv1.backward(&input.map, &dc1, h, w);
        loss
    }
}

impl Parameterized for RdNet {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.conv1.for_each_param(f);
        self.conv2.for_each_param(f);
        self.map_fc.for_each_param(f);
        self.lstm.for_each_param(f);
        self.fuse.for_each_param(f);
        self.head.for_each_param(f);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&[f32])) {
        self.conv1.visit_params(f);
        self.conv2.visit_params(f);
        self.map_fc.visit_params(f);
        self.lstm.visit_params(f);
        self.fuse.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::RdFeatureConfig;
    use gp_nn::{argmax, Adam};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Hand-built input with class-dependent map and sequence content.
    fn toy_input(label: usize, jitter: u64) -> RdInput {
        let cfg = RdFeatureConfig::default();
        let (md, mr) = cfg.map_shape;
        let mut map = vec![0.0f32; md * mr];
        // Class 0: energy high in the map (negative Doppler); class 1:
        // low. Jitter shifts the range column slightly.
        let d: usize = if label == 0 { 3 } else { 12 };
        let r = 8 + (jitter as usize % 3);
        for dd in d.saturating_sub(1)..=(d + 1) {
            for rr in r - 1..=r + 1 {
                map[dd * mr + rr] = 2.0 + (jitter % 5) as f32 * 0.1;
            }
        }
        let sign = if label == 0 { -1.0 } else { 1.0 };
        let sequence = (0..6)
            .map(|i| {
                let mut f = vec![0.2f32; RD_SEQUENCE_FEATURES];
                f[2] = sign * (0.5 + 0.05 * (i + jitter as usize % 2) as f32);
                f
            })
            .collect();
        RdInput {
            map,
            map_shape: cfg.map_shape,
            sequence,
        }
    }

    #[test]
    fn shapes_and_taps() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = RdNet::new(5, (16, 24), &mut rng);
        let input = toy_input(0, 1);
        assert_eq!(model.logits(&input).len(), 5);
        assert_eq!(model.embedding(&input).len(), FUSED_WIDTH);
        assert_eq!(model.classes(), 5);
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn rejects_bad_map_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        RdNet::new(2, (15, 24), &mut rng);
    }

    #[test]
    fn learns_toy_split() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = RdNet::new(2, (16, 24), &mut rng);
        let data: Vec<(RdInput, usize)> = (0..8)
            .map(|i| (toy_input(i % 2, i as u64), i % 2))
            .collect();
        let mut adam = Adam::new(5e-3);
        for _ in 0..40 {
            for (x, y) in &data {
                model.train_step(x, *y);
                adam.begin_step();
                model.for_each_param(&mut |p, g| adam.update(p, g));
            }
        }
        let correct = data
            .iter()
            .filter(|(x, y)| argmax(&model.logits(x)) == *y)
            .count();
        assert!(correct >= 7, "RdNet: {correct}/8");
    }

    #[test]
    fn param_count_is_stable() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = RdNet::new(3, (16, 24), &mut rng);
        let mut n = 0usize;
        model.visit_params(&mut |p| n += p.len());
        // conv1 + conv2 + map_fc + lstm + fuse + head, all non-empty.
        assert!(n > 10_000, "param count {n}");
        let mut again = 0usize;
        model.visit_params(&mut |p| again += p.len());
        assert_eq!(n, again);
    }
}
