//! Labeled range-Doppler samples — the RD counterpart of
//! `gp_pipeline::LabeledSample`.

use crate::frame::RdFrame;

/// A segmented gesture as a sequence of range-Doppler frames with its
/// ground-truth labels.
#[derive(Debug, Clone, PartialEq)]
pub struct RdLabeledSample {
    /// The frames of the detected segment, in capture order.
    pub frames: Vec<RdFrame>,
    /// Segment length in frames.
    pub duration_frames: usize,
    /// Gesture class label.
    pub gesture: usize,
    /// User identity label.
    pub user: usize,
}

impl RdLabeledSample {
    /// Labels one `[start, end)` slice of a capture.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty or out of range.
    pub fn from_segment(
        frames: &[RdFrame],
        start: usize,
        end: usize,
        gesture: usize,
        user: usize,
    ) -> Self {
        assert!(start < end && end <= frames.len(), "bad segment bounds");
        RdLabeledSample {
            frames: frames[start..end].to_vec(),
            duration_frames: end - start,
            gesture,
            user,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RdConfig;

    #[test]
    fn slices_and_labels() {
        let cfg = RdConfig::default();
        let frames: Vec<RdFrame> = (0..10)
            .map(|i| RdFrame::zeros(&cfg, i as f64 * 0.1))
            .collect();
        let s = RdLabeledSample::from_segment(&frames, 2, 7, 3, 1);
        assert_eq!(s.duration_frames, 5);
        assert_eq!(s.frames.len(), 5);
        assert_eq!((s.gesture, s.user), (3, 1));
        assert!((s.frames[0].timestamp - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bad segment bounds")]
    fn rejects_empty_segment() {
        let cfg = RdConfig::default();
        let frames = vec![RdFrame::zeros(&cfg, 0.0)];
        RdLabeledSample::from_segment(&frames, 1, 1, 0, 0);
    }
}
