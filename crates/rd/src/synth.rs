//! Range-Doppler frame synthesis from kinematic ground truth.
//!
//! The synthesizer renders the same `gp-kinematics` scatterers the
//! point-cloud simulator animates into complex beat signals — each
//! scatterer contributes a fast-time tone at its range and a slow-time
//! phase ramp at its radial velocity — then runs the classic FMCW
//! processing chain: optional slow-time mean subtraction (MTI), a
//! windowed range FFT per chirp, and a windowed, shifted Doppler FFT per
//! range bin. The output is the linear-power map [`RdFrame`] the feature
//! path and CFAR detector consume.

use crate::config::RdConfig;
use crate::frame::RdFrame;
use gp_dsp::fft::{fft_in_place, fft_shift};
use gp_dsp::window::apply_window;
use gp_dsp::Complex;
use gp_kinematics::scatter::Scatterer;
use gp_kinematics::Performance;
use gp_pointcloud::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;

/// Two independent standard normal samples (Box–Muller).
fn gaussian_pair<R: Rng>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    (r * (TAU * u2).cos(), r * (TAU * u2).sin())
}

/// Deterministic range-Doppler frame synthesizer.
#[derive(Debug, Clone)]
pub struct RdSynthesizer {
    config: RdConfig,
    seed: u64,
}

impl RdSynthesizer {
    /// Creates a synthesizer; `seed` drives scatterer phases and thermal
    /// noise, so equal `(config, seed, scene)` yield identical frames.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`RdConfig::validate`]).
    pub fn new(config: RdConfig, seed: u64) -> Self {
        config.validate().expect("invalid RdConfig");
        RdSynthesizer { config, seed }
    }

    /// The configuration frames are rendered with.
    pub fn config(&self) -> &RdConfig {
        &self.config
    }

    /// Renders a whole performance at the configured frame rate.
    pub fn synthesize(&self, perf: &Performance) -> Vec<RdFrame> {
        let n = (perf.total_duration() * self.config.frame_rate).ceil() as usize;
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..n)
            .map(|i| {
                let t = i as f64 * self.config.frame_interval();
                self.frame_from_scatterers(&perf.scatterers_at(t), t, &mut rng)
            })
            .collect()
    }

    /// Renders one frame from explicit scatterers (the lowest-level
    /// entry, shared by tests and the streaming path).
    pub fn frame_from_scatterers<R: Rng>(
        &self,
        scatterers: &[Scatterer],
        timestamp: f64,
        rng: &mut R,
    ) -> RdFrame {
        let nr = self.config.range_bins;
        let nd = self.config.doppler_bins;
        let radar = Vec3::new(0.0, 0.0, self.config.mount_height);

        // Beat signal cube, chirp-major: cube[c * nr + n].
        let mut cube = vec![Complex::ZERO; nd * nr];
        for s in scatterers {
            let rel = s.position - radar;
            let r = rel.norm();
            if r < 1e-6 || r >= self.config.max_range() {
                continue;
            }
            let radial_velocity = s.velocity.dot(rel) / r;
            let a = self.config.amplitude_k * s.rcs.sqrt() / (r * r);
            // Fast-time phase step: a target at bin b = r / Δr completes
            // b cycles over the nr samples of a chirp.
            let dphi_fast = TAU * (r / self.config.range_resolution) / nr as f64;
            // Slow-time phase step: ±max_velocity maps to ±π per chirp.
            let dphi_slow = TAU * radial_velocity / (2.0 * self.config.max_velocity);
            let phi0 = rng.gen_range(0.0..TAU);
            for c in 0..nd {
                let base = phi0 + dphi_slow * c as f64;
                for n in 0..nr {
                    cube[c * nr + n] += Complex::from_polar(a, base + dphi_fast * n as f64);
                }
            }
        }

        // Thermal noise.
        if self.config.noise_sigma > 0.0 {
            for z in cube.iter_mut() {
                let (g1, g2) = gaussian_pair(rng);
                *z += Complex::new(g1 * self.config.noise_sigma, g2 * self.config.noise_sigma);
            }
        }

        // MTI: subtract the slow-time mean per fast-time sample, which
        // nulls returns whose phase does not rotate chirp to chirp —
        // exactly the static clutter.
        if self.config.mti {
            for n in 0..nr {
                let mut mean = Complex::ZERO;
                for c in 0..nd {
                    mean += cube[c * nr + n];
                }
                mean = mean / nd as f64;
                for c in 0..nd {
                    cube[c * nr + n] -= mean;
                }
            }
        }

        // Range FFT per chirp (windowed).
        let range_window = self.config.window.coefficients(nr);
        for c in 0..nd {
            let row = &mut cube[c * nr..(c + 1) * nr];
            apply_window(row, &range_window);
            fft_in_place(row);
        }

        // Doppler FFT per range bin (windowed, shifted so zero velocity
        // sits on the centre row), power out.
        let doppler_window = self.config.window.coefficients(nd);
        let mut frame = RdFrame::zeros(&self.config, timestamp);
        let mut column = vec![Complex::ZERO; nd];
        for n in 0..nr {
            for c in 0..nd {
                column[c] = cube[c * nr + n];
            }
            apply_window(&mut column, &doppler_window);
            fft_in_place(&mut column);
            fft_shift(&mut column);
            for (d, z) in column.iter().enumerate() {
                frame.power[d * nr + n] = z.norm_sqr();
            }
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_kinematics::gestures::{GestureId, GestureSet};
    use gp_kinematics::UserProfile;

    fn quiet_config() -> RdConfig {
        RdConfig {
            noise_sigma: 0.0,
            ..RdConfig::default()
        }
    }

    fn single_mover(r: f64, v: f64) -> Vec<Scatterer> {
        vec![Scatterer {
            position: Vec3::new(0.0, r, 1.25),
            velocity: Vec3::new(0.0, v, 0.0),
            rcs: 1.0,
        }]
    }

    #[test]
    fn moving_target_lands_in_predicted_cell() {
        let cfg = quiet_config();
        let synth = RdSynthesizer::new(cfg.clone(), 1);
        let mut rng = StdRng::seed_from_u64(9);
        let (r, v) = (1.2, 1.0);
        let frame = synth.frame_from_scatterers(&single_mover(r, v), 0.0, &mut rng);
        let (pd, pr) = frame.peak();
        let want_r = (r / cfg.range_resolution).round() as usize;
        let want_d = (cfg.doppler_bins / 2) as f64 + v / cfg.velocity_resolution();
        assert!(
            (pr as f64 - want_r as f64).abs() <= 1.0,
            "range bin {pr} vs predicted {want_r}"
        );
        assert!(
            (pd as f64 - want_d).abs() <= 1.0,
            "doppler row {pd} vs predicted {want_d:.1}"
        );
    }

    #[test]
    fn mti_suppresses_static_target() {
        let cfg = quiet_config();
        let synth = RdSynthesizer::new(cfg, 1);
        let mut rng = StdRng::seed_from_u64(9);
        let still = synth.frame_from_scatterers(&single_mover(1.2, 0.0), 0.0, &mut rng);
        let mut rng = StdRng::seed_from_u64(9);
        let moving = synth.frame_from_scatterers(&single_mover(1.2, 1.0), 0.0, &mut rng);
        assert!(
            still.total_power() < 1e-3 * moving.total_power(),
            "static residue {} vs moving {}",
            still.total_power(),
            moving.total_power()
        );
    }

    #[test]
    fn negative_velocity_lands_below_centre() {
        let cfg = quiet_config();
        let synth = RdSynthesizer::new(cfg.clone(), 1);
        let mut rng = StdRng::seed_from_u64(3);
        let frame = synth.frame_from_scatterers(&single_mover(1.0, -1.3), 0.0, &mut rng);
        let (pd, _) = frame.peak();
        assert!(pd < cfg.doppler_bins / 2, "row {pd} not negative-velocity");
    }

    #[test]
    fn synthesis_is_deterministic() {
        let profile = UserProfile::generate(0, 42);
        let mut rng = StdRng::seed_from_u64(4);
        let perf = Performance::new(&profile, GestureSet::Asl15, GestureId(12), 1.2, &mut rng);
        let synth = RdSynthesizer::new(RdConfig::default(), 7);
        let a = synth.synthesize(&perf);
        let b = synth.synthesize(&perf);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.power, y.power);
        }
    }

    #[test]
    fn gesture_raises_motion_energy() {
        let profile = UserProfile::generate(0, 42);
        let mut rng = StdRng::seed_from_u64(4);
        let perf = Performance::new(&profile, GestureSet::Asl15, GestureId(12), 1.2, &mut rng);
        let synth = RdSynthesizer::new(RdConfig::default(), 7);
        let frames = synth.synthesize(&perf);
        let (gs, ge) = perf.gesture_interval();
        let (fs, fe) = ((gs * 10.0) as usize, (ge * 10.0) as usize);
        // Off-DC log power is the activity statistic segmentation uses;
        // raw linear power is dominated by near-zero-Doppler residue.
        let me = |f: &RdFrame| crate::features::motion_energy(f, 1);
        let idle = frames[1..6].iter().map(me).fold(0.0f64, f64::max);
        let active = frames[fs..fe].iter().map(me).fold(0.0f64, f64::max);
        assert!(
            active > 2.0 * idle,
            "gesture peak {active} vs idle peak {idle}"
        );
    }
}
