//! Property tests for the range-Doppler chain: the DSP identities and
//! determinism guarantees the synthesis/feature path relies on.
//!
//! * **Parseval** — the windowed FFT the synthesizer runs over every
//!   chirp and range bin conserves energy: `Σ|x_w[n]|² = (1/N)Σ|X[k]|²`
//!   for every window kind in the catalogue.
//! * **CFAR determinism** — equal maps give equal detection masks, on
//!   repeated runs and on clones (the mask is a pure function of the
//!   power map).
//! * **Thread-count bit-equality** — `extract_all` returns bit-identical
//!   `RdInput`s for 1 and N extraction threads, in input order. The
//!   serving engine's determinism tests build on this.

use gp_dsp::fft::fft_in_place;
use gp_dsp::window::{apply_window, WindowKind};
use gp_dsp::Complex;
use gp_rd::{extract_all, RdConfig, RdFeatureConfig, RdFrame, RdLabeledSample};
use proptest::prelude::*;

/// A bounded complex sample: large enough to exercise the dynamic
/// range, small enough that N=64 sums stay well inside f64.
fn complex_sample() -> impl Strategy<Value = Complex> {
    (-1e3..1e3f64, -1e3..1e3f64).prop_map(|(re, im)| Complex::new(re, im))
}

/// A small power map (8 Doppler × 16 range) as one RdFrame.
fn power_frame() -> impl Strategy<Value = (RdConfig, RdFrame)> {
    prop::collection::vec(0.0..1e4f64, 8 * 16).prop_map(|power| {
        let cfg = RdConfig {
            doppler_bins: 8,
            range_bins: 16,
            ..RdConfig::default()
        };
        let mut frame = RdFrame::zeros(&cfg, 0.0);
        frame.power = power;
        (cfg, frame)
    })
}

/// A short burst of small frames for feature extraction.
fn frame_burst() -> impl Strategy<Value = Vec<RdFrame>> {
    prop::collection::vec(prop::collection::vec(0.0..1e4f64, 8 * 16), 4..12).prop_map(|maps| {
        let cfg = RdConfig {
            doppler_bins: 8,
            range_bins: 16,
            ..RdConfig::default()
        };
        maps.into_iter()
            .enumerate()
            .map(|(i, power)| {
                let mut frame = RdFrame::zeros(&cfg, i as f64 * 0.1);
                frame.power = power;
                frame
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn windowed_fft_conserves_energy(
        samples in prop::collection::vec(complex_sample(), 64),
        window_index in 0usize..4,
    ) {
        let window = [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
        ][window_index];
        let n = samples.len();
        let mut data = samples;
        // The exact per-chirp path the synthesizer runs: window, then
        // in-place FFT.
        apply_window(&mut data, &window.coefficients(n));
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        fft_in_place(&mut data);
        let freq_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        // Relative tolerance: both sums are O(n · amplitude²).
        let scale = time_energy.max(1.0);
        prop_assert!(
            (time_energy - freq_energy).abs() <= 1e-9 * scale,
            "Parseval violated for {window:?}: time {time_energy} vs freq {freq_energy}"
        );
    }

    #[test]
    fn cfar_mask_is_deterministic(map in power_frame()) {
        let (cfg, frame) = map;
        let first = frame.detection_mask(&cfg);
        prop_assert_eq!(&first, &frame.detection_mask(&cfg), "repeat run diverged");
        let clone = frame.clone();
        prop_assert_eq!(&first, &clone.detection_mask(&cfg), "clone diverged");
        prop_assert_eq!(
            frame.detection_count(&cfg),
            first.iter().filter(|&&d| d).count()
        );
    }

    #[test]
    fn extract_all_is_bit_identical_across_thread_counts(
        bursts in prop::collection::vec(frame_burst(), 1..5),
    ) {
        let samples: Vec<RdLabeledSample> = bursts
            .iter()
            .enumerate()
            .map(|(i, frames)| {
                RdLabeledSample::from_segment(frames, 0, frames.len(), i % 3, i % 2)
            })
            .collect();
        let refs: Vec<&RdLabeledSample> = samples.iter().collect();
        let config = RdFeatureConfig::default();
        let single = extract_all(&refs, &config, 1);
        prop_assert_eq!(single.len(), refs.len());
        for threads in [2usize, 4, 7] {
            let multi = extract_all(&refs, &config, threads);
            // RdInput is f32 data compared exactly: bit-identical, in
            // input order.
            prop_assert_eq!(&single, &multi, "extract_all diverged at {} threads", threads);
        }
    }
}
