//! Point-cloud data structures and algorithms for mmWave sensing.
//!
//! The TI radar firmware (and our simulator in `gp-radar`) emits sparse
//! point clouds: a handful of `(x, y, z, doppler, snr)` detections per
//! frame. This crate defines those types and the geometric algorithms the
//! GesturePrint pipeline runs on them:
//!
//! * [`Vec3`], [`Point`], [`PointCloud`] — core data types,
//! * [`metrics`] — Hausdorff distance, Chamfer distance and Jensen–Shannon
//!   divergence between clouds (paper §III, Fig. 3),
//! * [`dbscan`] — density-based clustering used by the noise-canceling
//!   module (paper §IV-B),
//! * [`sampling`] — farthest-point sampling and fixed-size resampling used
//!   by GesIDNet's set-abstraction input stage,
//! * [`neighbors`] — brute-force k-NN and ball queries used for grouping.
//!
//! # Example
//!
//! ```
//! use gp_pointcloud::{Point, PointCloud, Vec3};
//!
//! let cloud: PointCloud = (0..10)
//!     .map(|i| Point::at(Vec3::new(i as f64 * 0.1, 1.2, 0.0)))
//!     .collect();
//! assert_eq!(cloud.len(), 10);
//! let c = cloud.centroid().unwrap();
//! assert!((c.x - 0.45).abs() < 1e-12);
//! ```

pub mod dbscan;
pub mod metrics;
pub mod neighbors;
pub mod point;
pub mod sampling;

pub use dbscan::{ClusterLabel, Clustering, DbscanConfig};
pub use point::{Point, PointCloud, Vec3};
