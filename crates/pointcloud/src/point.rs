//! Core point-cloud types: [`Vec3`], [`Point`], [`PointCloud`].

use std::iter::FromIterator;
use std::ops::{Add, AddAssign, Index, Mul, Neg, Sub};

/// A 3-D vector / position in metres.
///
/// The coordinate convention follows the radar device: `x` is lateral
/// (positive to the radar's right), `y` points away from the radar
/// (range direction), and `z` is height.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// Lateral coordinate (m).
    pub x: f64,
    /// Range / depth coordinate (m).
    pub y: f64,
    /// Height coordinate (m).
    pub z: f64,
}

impl Vec3 {
    /// The origin.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn distance_sqr(self, rhs: Vec3) -> f64 {
        (self - rhs).norm_sqr()
    }

    /// Returns the unit vector in this direction.
    ///
    /// Returns [`Vec3::ZERO`] for the zero vector rather than dividing by
    /// zero.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n > 0.0 {
            self * (1.0 / n)
        } else {
            Vec3::ZERO
        }
    }

    /// Linear interpolation: `self + t · (other − self)`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A single radar detection.
///
/// Matches the TI point-cloud format consumed by the paper: a 3-D position
/// plus the radial Doppler velocity and the detection SNR.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Position in radar coordinates (m).
    pub position: Vec3,
    /// Radial velocity (m/s); positive means moving away from the radar.
    pub doppler: f64,
    /// Detection signal-to-noise ratio (linear).
    pub snr: f64,
}

impl Point {
    /// Creates a point with the given kinematics.
    #[inline]
    pub const fn new(position: Vec3, doppler: f64, snr: f64) -> Self {
        Point {
            position,
            doppler,
            snr,
        }
    }

    /// Creates a stationary point with unit SNR at `position`.
    #[inline]
    pub const fn at(position: Vec3) -> Self {
        Point {
            position,
            doppler: 0.0,
            snr: 1.0,
        }
    }

    /// Range from the sensor origin (m).
    #[inline]
    pub fn range(&self) -> f64 {
        self.position.norm()
    }
}

/// An owned collection of [`Point`]s.
///
/// `PointCloud` behaves like a `Vec<Point>` with geometry helpers. It
/// implements [`FromIterator`] and [`Extend`] so clouds compose with
/// iterator pipelines.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointCloud {
    points: Vec<Point>,
}

impl PointCloud {
    /// Creates an empty cloud.
    #[inline]
    pub fn new() -> Self {
        PointCloud { points: Vec::new() }
    }

    /// Creates an empty cloud with pre-allocated capacity.
    #[inline]
    pub fn with_capacity(capacity: usize) -> Self {
        PointCloud {
            points: Vec::with_capacity(capacity),
        }
    }

    /// Wraps an existing vector of points.
    #[inline]
    pub fn from_points(points: Vec<Point>) -> Self {
        PointCloud { points }
    }

    /// Builds a cloud of stationary unit-SNR points from bare positions.
    pub fn from_positions<I: IntoIterator<Item = Vec3>>(positions: I) -> Self {
        positions.into_iter().map(Point::at).collect()
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the cloud has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Borrow the underlying slice.
    #[inline]
    pub fn as_slice(&self) -> &[Point] {
        &self.points
    }

    /// Consumes the cloud, returning the underlying vector.
    #[inline]
    pub fn into_points(self) -> Vec<Point> {
        self.points
    }

    /// Appends a point.
    #[inline]
    pub fn push(&mut self, point: Point) {
        self.points.push(point);
    }

    /// Iterates over points.
    pub fn iter(&self) -> std::slice::Iter<'_, Point> {
        self.points.iter()
    }

    /// Iterates mutably over points.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Point> {
        self.points.iter_mut()
    }

    /// Centroid of the point positions, or `None` for an empty cloud.
    pub fn centroid(&self) -> Option<Vec3> {
        if self.points.is_empty() {
            return None;
        }
        let sum = self
            .points
            .iter()
            .fold(Vec3::ZERO, |acc, p| acc + p.position);
        Some(sum * (1.0 / self.points.len() as f64))
    }

    /// Axis-aligned bounding box `(min, max)`, or `None` for an empty cloud.
    pub fn bounding_box(&self) -> Option<(Vec3, Vec3)> {
        let first = self.points.first()?.position;
        let (mut lo, mut hi) = (first, first);
        for p in &self.points[1..] {
            lo = lo.min(p.position);
            hi = hi.max(p.position);
        }
        Some((lo, hi))
    }

    /// Merges another cloud into this one.
    pub fn merge(&mut self, other: &PointCloud) {
        self.points.extend_from_slice(&other.points);
    }

    /// Returns a new cloud containing only the points at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> PointCloud {
        indices.iter().map(|&i| self.points[i]).collect()
    }

    /// Translates every point by `offset`.
    pub fn translate(&mut self, offset: Vec3) {
        for p in &mut self.points {
            p.position += offset;
        }
    }

    /// Mean Doppler magnitude across points (0 for an empty cloud).
    pub fn mean_doppler_magnitude(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.doppler.abs()).sum::<f64>() / self.points.len() as f64
    }
}

impl FromIterator<Point> for PointCloud {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        PointCloud {
            points: iter.into_iter().collect(),
        }
    }
}

impl Extend<Point> for PointCloud {
    fn extend<I: IntoIterator<Item = Point>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

impl Index<usize> for PointCloud {
    type Output = Point;
    #[inline]
    fn index(&self, i: usize) -> &Point {
        &self.points[i]
    }
}

impl IntoIterator for PointCloud {
    type Item = Point;
    type IntoIter = std::vec::IntoIter<Point>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

impl<'a> IntoIterator for &'a PointCloud {
    type Item = &'a Point;
    type IntoIter = std::slice::Iter<'a, Point>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec3_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn norm_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        assert!((v.distance(Vec3::ZERO) - 5.0).abs() < 1e-12);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn centroid_of_symmetric_cloud_is_center() {
        let cloud = PointCloud::from_positions([
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, -2.0, 1.0),
            Vec3::new(0.0, 2.0, -1.0),
        ]);
        let c = cloud.centroid().unwrap();
        assert!(c.norm() < 1e-12);
    }

    #[test]
    fn empty_cloud_behaviour() {
        let cloud = PointCloud::new();
        assert!(cloud.is_empty());
        assert_eq!(cloud.centroid(), None);
        assert_eq!(cloud.bounding_box(), None);
        assert_eq!(cloud.mean_doppler_magnitude(), 0.0);
    }

    #[test]
    fn bounding_box_encloses_points() {
        let cloud = PointCloud::from_positions([
            Vec3::new(1.0, -1.0, 5.0),
            Vec3::new(-2.0, 3.0, 0.0),
            Vec3::new(0.0, 0.0, 2.0),
        ]);
        let (lo, hi) = cloud.bounding_box().unwrap();
        assert_eq!(lo, Vec3::new(-2.0, -1.0, 0.0));
        assert_eq!(hi, Vec3::new(1.0, 3.0, 5.0));
    }

    #[test]
    fn select_and_merge() {
        let mut a = PointCloud::from_positions([Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)]);
        let b = PointCloud::from_positions([Vec3::new(2.0, 0.0, 0.0)]);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        let sel = a.select(&[0, 2]);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel[1].position.x, 2.0);
    }

    #[test]
    fn translate_moves_all_points() {
        let mut cloud = PointCloud::from_positions([Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0)]);
        cloud.translate(Vec3::new(0.0, 10.0, 0.0));
        assert_eq!(cloud[0].position.y, 10.0);
        assert_eq!(cloud[1].position.y, 11.0);
    }

    #[test]
    fn collect_from_iterator() {
        let cloud: PointCloud = (0..5)
            .map(|i| Point::at(Vec3::new(i as f64, 0.0, 0.0)))
            .collect();
        assert_eq!(cloud.len(), 5);
        let doubled: PointCloud = cloud
            .iter()
            .map(|p| Point::new(p.position * 2.0, p.doppler, p.snr))
            .collect();
        assert_eq!(doubled[4].position.x, 8.0);
    }

    #[test]
    fn point_range() {
        let p = Point::at(Vec3::new(0.0, 3.0, 4.0));
        assert!((p.range() - 5.0).abs() < 1e-12);
    }
}
