//! Point-cloud difference metrics used in the paper's feasibility study.
//!
//! Paper §III measures how gesture point clouds differ within one user and
//! across users using three metrics (Fig. 3):
//!
//! * **Hausdorff distance (HD)** — how far each cloud strays from the
//!   other in the worst case,
//! * **Chamfer distance (CD)** — the average bidirectional closest-point
//!   distance,
//! * **Jensen–Shannon divergence (JSD)** — how differently the two clouds
//!   occupy space, computed over a shared voxel occupancy grid.
//!
//! All metrics operate on positions only (Doppler/SNR are ignored), match
//! the formulations cited by the paper, and return `0.0` for identical
//! clouds.

use crate::point::{PointCloud, Vec3};

/// Directed Hausdorff distance `h(a → b) = max_{p∈a} min_{q∈b} ‖p−q‖`.
///
/// Returns `0.0` if `a` is empty and `+∞` if `b` is empty while `a` is not.
pub fn directed_hausdorff(a: &PointCloud, b: &PointCloud) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    if b.is_empty() {
        return f64::INFINITY;
    }
    a.iter()
        .map(|p| nearest_distance_sqr(p.position, b))
        .fold(0.0f64, f64::max)
        .sqrt()
}

/// Symmetric Hausdorff distance `H(a, b) = max(h(a→b), h(b→a))`.
///
/// ```
/// use gp_pointcloud::{metrics, PointCloud, Vec3};
/// let a = PointCloud::from_positions([Vec3::ZERO]);
/// let b = PointCloud::from_positions([Vec3::new(0.0, 3.0, 4.0)]);
/// assert!((metrics::hausdorff(&a, &b) - 5.0).abs() < 1e-12);
/// ```
pub fn hausdorff(a: &PointCloud, b: &PointCloud) -> f64 {
    directed_hausdorff(a, b).max(directed_hausdorff(b, a))
}

/// Chamfer distance: the mean of the two directed average closest-point
/// distances,
/// `CD(a,b) = ½·(mean_{p∈a} min_{q∈b} ‖p−q‖ + mean_{q∈b} min_{p∈a} ‖q−p‖)`.
///
/// Returns `0.0` if both clouds are empty and `+∞` if exactly one is.
pub fn chamfer(a: &PointCloud, b: &PointCloud) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        _ => {}
    }
    let da: f64 = a
        .iter()
        .map(|p| nearest_distance_sqr(p.position, b).sqrt())
        .sum::<f64>()
        / a.len() as f64;
    let db: f64 = b
        .iter()
        .map(|q| nearest_distance_sqr(q.position, a).sqrt())
        .sum::<f64>()
        / b.len() as f64;
    0.5 * (da + db)
}

/// Configuration for the voxel-grid Jensen–Shannon divergence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JsdConfig {
    /// Edge length of each cubic voxel (m).
    pub voxel_size: f64,
}

impl Default for JsdConfig {
    fn default() -> Self {
        // 10 cm voxels: coarse enough that a sparse mmWave cloud populates
        // multiple cells, fine enough to separate different motion
        // envelopes.
        JsdConfig { voxel_size: 0.1 }
    }
}

/// Jensen–Shannon divergence between the voxel-occupancy distributions of
/// two clouds, in bits (base-2 logarithm, so the result lies in `[0, 1]`).
///
/// Both clouds are quantised onto a voxel grid spanning their joint
/// bounding box; each cloud then induces a probability distribution over
/// voxels and `JSD(p‖q) = ½·KL(p‖m) + ½·KL(q‖m)` with `m = (p+q)/2`.
///
/// Returns `0.0` if both clouds are empty and `1.0` (maximal divergence)
/// if exactly one is.
pub fn jsd(a: &PointCloud, b: &PointCloud, config: &JsdConfig) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return 1.0,
        _ => {}
    }
    let (lo_a, hi_a) = a.bounding_box().expect("non-empty");
    let (lo_b, hi_b) = b.bounding_box().expect("non-empty");
    let lo = lo_a.min(lo_b);
    let hi = hi_a.max(hi_b);
    let size = config.voxel_size.max(1e-9);

    let nx = grid_cells(lo.x, hi.x, size);
    let ny = grid_cells(lo.y, hi.y, size);
    let nz = grid_cells(lo.z, hi.z, size);
    let total = nx * ny * nz;

    let index = |v: Vec3| -> usize {
        let ix = (((v.x - lo.x) / size) as usize).min(nx - 1);
        let iy = (((v.y - lo.y) / size) as usize).min(ny - 1);
        let iz = (((v.z - lo.z) / size) as usize).min(nz - 1);
        (ix * ny + iy) * nz + iz
    };

    let mut p = vec![0.0f64; total];
    let mut q = vec![0.0f64; total];
    for pt in a.iter() {
        p[index(pt.position)] += 1.0;
    }
    for pt in b.iter() {
        q[index(pt.position)] += 1.0;
    }
    let pa = a.len() as f64;
    let pb = b.len() as f64;
    for v in p.iter_mut() {
        *v /= pa;
    }
    for v in q.iter_mut() {
        *v /= pb;
    }

    let mut div = 0.0;
    for i in 0..total {
        let m = 0.5 * (p[i] + q[i]);
        if p[i] > 0.0 {
            div += 0.5 * p[i] * (p[i] / m).log2();
        }
        if q[i] > 0.0 {
            div += 0.5 * q[i] * (q[i] / m).log2();
        }
    }
    div.clamp(0.0, 1.0)
}

/// Average pairwise difference between two collections of point clouds
/// under a metric `d`, implementing the paper's Eq. (1):
///
/// `d(g) = Σ_m Σ_n D(c_n, c_m) / (N₁·N₂)` over distinct pairs.
///
/// When `set_a` and `set_b` are the same user's repetitions, pass the same
/// slice twice — pairs with `n == m` are skipped, matching `c_n ≠ c_m` in
/// the paper.
pub fn mean_pairwise<D>(set_a: &[PointCloud], set_b: &[PointCloud], mut d: D) -> f64
where
    D: FnMut(&PointCloud, &PointCloud) -> f64,
{
    let same = std::ptr::eq(set_a.as_ptr(), set_b.as_ptr()) && set_a.len() == set_b.len();
    let mut sum = 0.0;
    let mut count = 0usize;
    for (n, ca) in set_a.iter().enumerate() {
        for (m, cb) in set_b.iter().enumerate() {
            if same && n == m {
                continue;
            }
            sum += d(ca, cb);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

fn grid_cells(lo: f64, hi: f64, size: f64) -> usize {
    (((hi - lo) / size).floor() as usize + 1).max(1)
}

fn nearest_distance_sqr(p: Vec3, cloud: &PointCloud) -> f64 {
    cloud
        .iter()
        .map(|q| p.distance_sqr(q.position))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::PointCloud;

    fn line_cloud(n: usize, offset: f64) -> PointCloud {
        PointCloud::from_positions((0..n).map(|i| Vec3::new(i as f64 * 0.1 + offset, 1.0, 0.0)))
    }

    #[test]
    fn identical_clouds_have_zero_distance() {
        let a = line_cloud(20, 0.0);
        assert_eq!(hausdorff(&a, &a), 0.0);
        assert_eq!(chamfer(&a, &a), 0.0);
        assert!(jsd(&a, &a, &JsdConfig::default()) < 1e-12);
    }

    #[test]
    fn hausdorff_matches_hand_computation() {
        let a = PointCloud::from_positions([Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)]);
        let b = PointCloud::from_positions([Vec3::new(0.0, 2.0, 0.0)]);
        // Farthest a-point from b is (1,0,0): dist sqrt(5). b→a: min dist 2.
        assert!((hausdorff(&a, &b) - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn directed_hausdorff_is_asymmetric() {
        let a = PointCloud::from_positions([Vec3::ZERO]);
        let b = PointCloud::from_positions([Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0)]);
        assert!(directed_hausdorff(&a, &b) < 1e-12);
        assert!((directed_hausdorff(&b, &a) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn chamfer_of_shifted_line() {
        let a = line_cloud(10, 0.0);
        let b = line_cloud(10, 0.05); // interleaved shift of half a step
        let cd = chamfer(&a, &b);
        assert!(cd > 0.0 && cd <= 0.05 + 1e-12, "cd = {cd}");
    }

    #[test]
    fn metrics_grow_with_separation() {
        let a = line_cloud(15, 0.0);
        let near = line_cloud(15, 0.1);
        let far = line_cloud(15, 1.0);
        assert!(hausdorff(&a, &near) < hausdorff(&a, &far));
        assert!(chamfer(&a, &near) < chamfer(&a, &far));
        let cfg = JsdConfig::default();
        assert!(jsd(&a, &near, &cfg) <= jsd(&a, &far, &cfg) + 1e-12);
    }

    #[test]
    fn jsd_bounds() {
        let a = line_cloud(30, 0.0);
        let b = line_cloud(30, 5.0); // disjoint occupancy
        let v = jsd(&a, &b, &JsdConfig::default());
        assert!(
            (v - 1.0).abs() < 1e-9,
            "disjoint clouds should reach 1 bit, got {v}"
        );
    }

    #[test]
    fn empty_cloud_conventions() {
        let empty = PointCloud::new();
        let full = line_cloud(3, 0.0);
        assert_eq!(hausdorff(&empty, &empty), 0.0);
        assert_eq!(chamfer(&empty, &full), f64::INFINITY);
        assert_eq!(jsd(&empty, &full, &JsdConfig::default()), 1.0);
        assert_eq!(jsd(&empty, &empty, &JsdConfig::default()), 0.0);
    }

    #[test]
    fn mean_pairwise_skips_self_pairs() {
        let reps = vec![line_cloud(5, 0.0), line_cloud(5, 0.0), line_cloud(5, 0.0)];
        // All identical: same-set mean distance must be exactly 0, and the
        // self pairs must not contribute (0/0 guarded).
        let v = mean_pairwise(&reps, &reps, hausdorff);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn mean_pairwise_cross_sets() {
        let a = vec![line_cloud(5, 0.0)];
        let b = vec![line_cloud(5, 1.0), line_cloud(5, 2.0)];
        let v = mean_pairwise(&a, &b, hausdorff);
        assert!((v - 1.5).abs() < 1e-9, "expected mean 1.5, got {v}");
    }

    #[test]
    fn mean_pairwise_empty_sets() {
        let a: Vec<PointCloud> = Vec::new();
        assert_eq!(mean_pairwise(&a, &a, hausdorff), 0.0);
    }

    #[test]
    fn symmetric_metrics() {
        let a = line_cloud(8, 0.0);
        let mut b = line_cloud(12, 0.3);
        b.translate(Vec3::new(0.0, 0.2, 0.1));
        assert!((hausdorff(&a, &b) - hausdorff(&b, &a)).abs() < 1e-12);
        assert!((chamfer(&a, &b) - chamfer(&b, &a)).abs() < 1e-12);
        let cfg = JsdConfig::default();
        assert!((jsd(&a, &b, &cfg) - jsd(&b, &a, &cfg)).abs() < 1e-12);
    }
}
