//! DBSCAN density-based clustering.
//!
//! The noise-canceling module of GesturePrint (paper §IV-B) clusters the
//! aggregated gesture point cloud with DBSCAN and keeps only the *main*
//! cluster (the one containing the most points), discarding multipath
//! ghosts, reflections from swaying objects, and other people in the scene
//! (paper Fig. 15).
//!
//! Paper parameters: maximum pair distance `D_max = 1 m`, minimum cluster
//! size `N_min = 4`.

use crate::point::PointCloud;

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanConfig {
    /// Neighbourhood radius ε — the paper's `D_max` (m).
    pub eps: f64,
    /// Minimum number of points for a dense region — the paper's `N_min`.
    pub min_points: usize,
}

impl Default for DbscanConfig {
    fn default() -> Self {
        DbscanConfig {
            eps: 1.0,
            min_points: 4,
        }
    }
}

/// The cluster assignment of one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterLabel {
    /// The point belongs to cluster `id` (0-based).
    Cluster(usize),
    /// The point is density noise.
    Noise,
}

impl ClusterLabel {
    /// Returns the cluster id, or `None` for noise.
    pub fn id(self) -> Option<usize> {
        match self {
            ClusterLabel::Cluster(id) => Some(id),
            ClusterLabel::Noise => None,
        }
    }
}

/// The result of a DBSCAN run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    labels: Vec<ClusterLabel>,
    cluster_count: usize,
}

impl Clustering {
    /// Per-point labels, parallel to the input cloud.
    pub fn labels(&self) -> &[ClusterLabel] {
        &self.labels
    }

    /// Number of clusters found (noise excluded).
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// Number of points labelled noise.
    pub fn noise_count(&self) -> usize {
        self.labels
            .iter()
            .filter(|l| **l == ClusterLabel::Noise)
            .count()
    }

    /// Sizes of each cluster, indexed by cluster id.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.cluster_count];
        for l in &self.labels {
            if let ClusterLabel::Cluster(id) = l {
                sizes[*id] += 1;
            }
        }
        sizes
    }

    /// Indices of the points in cluster `id`.
    pub fn members(&self, id: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| (l.id() == Some(id)).then_some(i))
            .collect()
    }

    /// Id of the largest cluster (the paper's *main cluster*), or `None`
    /// if everything is noise.
    pub fn main_cluster(&self) -> Option<usize> {
        self.cluster_sizes()
            .iter()
            .enumerate()
            .max_by_key(|(_, size)| **size)
            .filter(|(_, size)| **size > 0)
            .map(|(id, _)| id)
    }
}

/// Runs DBSCAN over the positions of `cloud`.
///
/// Standard algorithm: core points have at least `min_points` neighbours
/// (including themselves) within `eps`; clusters grow by expanding core
/// points; border points join the first cluster that reaches them; the
/// rest is noise.
pub fn dbscan(cloud: &PointCloud, config: &DbscanConfig) -> Clustering {
    let n = cloud.len();
    let eps_sqr = config.eps * config.eps;
    let mut labels = vec![None::<ClusterLabel>; n];
    let mut cluster_count = 0usize;

    let neighbors = |i: usize| -> Vec<usize> {
        let pi = cloud[i].position;
        (0..n)
            .filter(|&j| pi.distance_sqr(cloud[j].position) <= eps_sqr)
            .collect()
    };

    for i in 0..n {
        if labels[i].is_some() {
            continue;
        }
        let nbrs = neighbors(i);
        if nbrs.len() < config.min_points {
            labels[i] = Some(ClusterLabel::Noise);
            continue;
        }
        // Start a new cluster from this core point.
        let id = cluster_count;
        cluster_count += 1;
        labels[i] = Some(ClusterLabel::Cluster(id));
        let mut queue: Vec<usize> = nbrs;
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            match labels[j] {
                Some(ClusterLabel::Noise) => {
                    // Noise absorbed as a border point.
                    labels[j] = Some(ClusterLabel::Cluster(id));
                }
                Some(ClusterLabel::Cluster(_)) => continue,
                None => {
                    labels[j] = Some(ClusterLabel::Cluster(id));
                    let jn = neighbors(j);
                    if jn.len() >= config.min_points {
                        queue.extend(jn);
                    }
                }
            }
        }
    }

    Clustering {
        labels: labels
            .into_iter()
            .map(|l| l.expect("all labelled"))
            .collect(),
        cluster_count,
    }
}

/// Convenience: runs DBSCAN and returns the main cluster as a new cloud,
/// or an empty cloud if everything was noise.
pub fn main_cluster_of(cloud: &PointCloud, config: &DbscanConfig) -> PointCloud {
    let clustering = dbscan(cloud, config);
    match clustering.main_cluster() {
        Some(id) => cloud.select(&clustering.members(id)),
        None => PointCloud::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{PointCloud, Vec3};

    fn blob(center: Vec3, n: usize, spread: f64) -> Vec<Vec3> {
        // Deterministic quasi-random blob around a centre.
        (0..n)
            .map(|i| {
                let t = i as f64;
                center
                    + Vec3::new(
                        (t * 0.7).sin() * spread,
                        (t * 1.3).cos() * spread,
                        (t * 2.1).sin() * spread * 0.5,
                    )
            })
            .collect()
    }

    #[test]
    fn two_blobs_two_clusters() {
        let mut pts = blob(Vec3::new(0.0, 1.0, 0.0), 20, 0.1);
        pts.extend(blob(Vec3::new(5.0, 1.0, 0.0), 15, 0.1));
        let cloud = PointCloud::from_positions(pts);
        let c = dbscan(
            &cloud,
            &DbscanConfig {
                eps: 0.5,
                min_points: 4,
            },
        );
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.noise_count(), 0);
        let sizes = c.cluster_sizes();
        assert!(sizes.contains(&20) && sizes.contains(&15), "{sizes:?}");
    }

    #[test]
    fn isolated_points_are_noise() {
        let mut pts = blob(Vec3::ZERO, 10, 0.05);
        pts.push(Vec3::new(50.0, 0.0, 0.0));
        pts.push(Vec3::new(-50.0, 0.0, 0.0));
        let cloud = PointCloud::from_positions(pts);
        let c = dbscan(
            &cloud,
            &DbscanConfig {
                eps: 0.5,
                min_points: 4,
            },
        );
        assert_eq!(c.cluster_count(), 1);
        assert_eq!(c.noise_count(), 2);
    }

    #[test]
    fn main_cluster_is_largest() {
        let mut pts = blob(Vec3::ZERO, 30, 0.1);
        pts.extend(blob(Vec3::new(8.0, 0.0, 0.0), 6, 0.1));
        let cloud = PointCloud::from_positions(pts);
        let main = main_cluster_of(
            &cloud,
            &DbscanConfig {
                eps: 0.5,
                min_points: 4,
            },
        );
        assert_eq!(main.len(), 30);
        assert!(main.centroid().unwrap().norm() < 0.2);
    }

    #[test]
    fn all_noise_gives_empty_main_cluster() {
        let cloud = PointCloud::from_positions([
            Vec3::ZERO,
            Vec3::new(10.0, 0.0, 0.0),
            Vec3::new(20.0, 0.0, 0.0),
        ]);
        let cfg = DbscanConfig {
            eps: 0.5,
            min_points: 4,
        };
        let c = dbscan(&cloud, &cfg);
        assert_eq!(c.cluster_count(), 0);
        assert_eq!(c.main_cluster(), None);
        assert!(main_cluster_of(&cloud, &cfg).is_empty());
    }

    #[test]
    fn min_points_controls_density() {
        let pts = blob(Vec3::ZERO, 3, 0.05); // only 3 points
        let cloud = PointCloud::from_positions(pts);
        let strict = dbscan(
            &cloud,
            &DbscanConfig {
                eps: 0.5,
                min_points: 4,
            },
        );
        assert_eq!(strict.cluster_count(), 0);
        let loose = dbscan(
            &cloud,
            &DbscanConfig {
                eps: 0.5,
                min_points: 2,
            },
        );
        assert_eq!(loose.cluster_count(), 1);
    }

    #[test]
    fn empty_cloud() {
        let c = dbscan(&PointCloud::new(), &DbscanConfig::default());
        assert_eq!(c.cluster_count(), 0);
        assert!(c.labels().is_empty());
    }

    #[test]
    fn chain_connectivity_merges_into_one_cluster() {
        // A chain of points each within eps of the next must form a single
        // cluster even though the endpoints are far apart.
        let pts: Vec<Vec3> = (0..50)
            .map(|i| Vec3::new(i as f64 * 0.4, 0.0, 0.0))
            .collect();
        let cloud = PointCloud::from_positions(pts);
        let c = dbscan(
            &cloud,
            &DbscanConfig {
                eps: 0.5,
                min_points: 3,
            },
        );
        assert_eq!(c.cluster_count(), 1);
        assert_eq!(c.noise_count(), 0);
    }

    #[test]
    fn labels_parallel_to_input() {
        let pts = blob(Vec3::ZERO, 12, 0.1);
        let cloud = PointCloud::from_positions(pts);
        let c = dbscan(&cloud, &DbscanConfig::default());
        assert_eq!(c.labels().len(), cloud.len());
    }

    #[test]
    fn members_round_trip() {
        let mut pts = blob(Vec3::ZERO, 10, 0.1);
        pts.extend(blob(Vec3::new(6.0, 0.0, 0.0), 10, 0.1));
        let cloud = PointCloud::from_positions(pts);
        let c = dbscan(
            &cloud,
            &DbscanConfig {
                eps: 0.5,
                min_points: 4,
            },
        );
        let total: usize = (0..c.cluster_count()).map(|id| c.members(id).len()).sum();
        assert_eq!(total + c.noise_count(), cloud.len());
    }
}
