//! Neighbourhood queries: k-nearest-neighbour and ball queries.
//!
//! The set-abstraction blocks of GesIDNet group, for each sampled centroid,
//! the `m` nearest points within a radius `d` (paper §IV-C). Radar clouds
//! are small (tens to a few hundred points), so brute-force scans are both
//! simple and fast enough; the routines here are O(n·log n) per query due
//! to sorting.

use crate::point::{PointCloud, Vec3};

/// Returns the indices of the `k` nearest points to `query`, closest
/// first. Ties are broken by index for determinism. If the cloud has fewer
/// than `k` points, all indices are returned.
pub fn knn_indices(cloud: &PointCloud, query: Vec3, k: usize) -> Vec<usize> {
    let mut order: Vec<(f64, usize)> = cloud
        .iter()
        .enumerate()
        .map(|(i, p)| (p.position.distance_sqr(query), i))
        .collect();
    order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    order.truncate(k);
    order.into_iter().map(|(_, i)| i).collect()
}

/// Returns up to `max_points` indices within `radius` of `query`, closest
/// first.
///
/// Mirrors PointNet++ ball query: if fewer than `max_points` fall inside
/// the ball the result is shorter; callers typically pad by repeating the
/// first (closest) index, which [`ball_query_padded`] does.
pub fn ball_query(cloud: &PointCloud, query: Vec3, radius: f64, max_points: usize) -> Vec<usize> {
    let r2 = radius * radius;
    let mut order: Vec<(f64, usize)> = cloud
        .iter()
        .enumerate()
        .filter_map(|(i, p)| {
            let d = p.position.distance_sqr(query);
            (d <= r2).then_some((d, i))
        })
        .collect();
    order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    order.truncate(max_points);
    order.into_iter().map(|(_, i)| i).collect()
}

/// Ball query padded to exactly `max_points` indices by repeating the
/// closest in-ball point, falling back to the global nearest neighbour
/// when the ball is empty (PointNet++ convention, keeps group shapes
/// static).
///
/// Returns an empty vector only when the cloud itself is empty.
pub fn ball_query_padded(
    cloud: &PointCloud,
    query: Vec3,
    radius: f64,
    max_points: usize,
) -> Vec<usize> {
    if cloud.is_empty() || max_points == 0 {
        return Vec::new();
    }
    let mut idx = ball_query(cloud, query, radius, max_points);
    if idx.is_empty() {
        let nearest = knn_indices(cloud, query, 1)[0];
        idx.push(nearest);
    }
    let fill = idx[0];
    while idx.len() < max_points {
        idx.push(fill);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::PointCloud;

    fn line() -> PointCloud {
        PointCloud::from_positions((0..10).map(|i| Vec3::new(i as f64, 0.0, 0.0)))
    }

    #[test]
    fn knn_orders_by_distance() {
        let cloud = line();
        let idx = knn_indices(&cloud, Vec3::new(3.2, 0.0, 0.0), 3);
        assert_eq!(idx, vec![3, 4, 2]);
    }

    #[test]
    fn knn_k_exceeds_n() {
        let cloud = line();
        let idx = knn_indices(&cloud, Vec3::ZERO, 100);
        assert_eq!(idx.len(), 10);
        assert_eq!(idx[0], 0);
    }

    #[test]
    fn knn_empty_cloud() {
        assert!(knn_indices(&PointCloud::new(), Vec3::ZERO, 3).is_empty());
    }

    #[test]
    fn ball_query_respects_radius() {
        let cloud = line();
        let idx = ball_query(&cloud, Vec3::new(5.0, 0.0, 0.0), 1.5, 10);
        assert_eq!(idx, vec![5, 4, 6]);
    }

    #[test]
    fn ball_query_caps_points() {
        let cloud = line();
        let idx = ball_query(&cloud, Vec3::new(5.0, 0.0, 0.0), 4.0, 3);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx[0], 5);
    }

    #[test]
    fn padded_repeats_closest() {
        let cloud = line();
        let idx = ball_query_padded(&cloud, Vec3::new(0.1, 0.0, 0.0), 0.5, 4);
        assert_eq!(idx, vec![0, 0, 0, 0]);
    }

    #[test]
    fn padded_falls_back_to_nearest_when_ball_empty() {
        let cloud = line();
        let idx = ball_query_padded(&cloud, Vec3::new(100.0, 0.0, 0.0), 0.5, 3);
        assert_eq!(idx, vec![9, 9, 9]);
    }

    #[test]
    fn padded_empty_cloud_is_empty() {
        assert!(ball_query_padded(&PointCloud::new(), Vec3::ZERO, 1.0, 4).is_empty());
    }

    #[test]
    fn exact_boundary_is_inside() {
        let cloud = line();
        let idx = ball_query(&cloud, Vec3::new(0.0, 0.0, 0.0), 1.0, 10);
        assert!(
            idx.contains(&1),
            "point at exactly radius should be included"
        );
    }
}
