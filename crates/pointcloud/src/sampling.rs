//! Point sampling utilities.
//!
//! GesIDNet consumes fixed-size point sets; the set-abstraction blocks pick
//! representative points with farthest-point sampling (FPS), the standard
//! choice in PointNet++-style networks because it covers the cloud's extent
//! evenly regardless of density.

use crate::point::{PointCloud, Vec3};
use rand::Rng;

/// Farthest-point sampling: returns `k` indices spread across the cloud.
///
/// The first point is the one nearest the centroid (deterministic), and
/// each subsequent pick maximises the minimum distance to the already
/// selected set. If `k >= cloud.len()` all indices are returned.
pub fn farthest_point_indices(cloud: &PointCloud, k: usize) -> Vec<usize> {
    let n = cloud.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    if k >= n {
        return (0..n).collect();
    }
    let centroid = cloud.centroid().expect("non-empty");
    let first = (0..n)
        .min_by(|&a, &b| {
            cloud[a]
                .position
                .distance_sqr(centroid)
                .total_cmp(&cloud[b].position.distance_sqr(centroid))
        })
        .expect("non-empty");

    let mut selected = Vec::with_capacity(k);
    selected.push(first);
    let mut min_dist: Vec<f64> = (0..n)
        .map(|i| cloud[i].position.distance_sqr(cloud[first].position))
        .collect();

    while selected.len() < k {
        let next = min_dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty")
            .0;
        selected.push(next);
        let np = cloud[next].position;
        for i in 0..n {
            let d = cloud[i].position.distance_sqr(np);
            if d < min_dist[i] {
                min_dist[i] = d;
            }
        }
    }
    selected
}

/// Farthest-point sampling returning the sampled cloud.
pub fn farthest_point_sample(cloud: &PointCloud, k: usize) -> PointCloud {
    cloud.select(&farthest_point_indices(cloud, k))
}

/// Resamples a cloud to exactly `n` points.
///
/// * If the cloud has more than `n` points, FPS keeps a well-spread subset.
/// * If it has fewer, points are duplicated uniformly at random (the usual
///   padding strategy for sparse radar clouds).
/// * An empty input yields `n` zero points so downstream shapes stay fixed.
pub fn resample_to<R: Rng>(cloud: &PointCloud, n: usize, rng: &mut R) -> PointCloud {
    if n == 0 {
        return PointCloud::new();
    }
    if cloud.is_empty() {
        return PointCloud::from_points(vec![crate::point::Point::at(Vec3::ZERO); n]);
    }
    if cloud.len() == n {
        return cloud.clone();
    }
    if cloud.len() > n {
        return farthest_point_sample(cloud, n);
    }
    let mut out = cloud.clone();
    while out.len() < n {
        let i = rng.gen_range(0..cloud.len());
        out.push(cloud[i]);
    }
    out
}

/// Normalises a cloud in place: centres positions on the centroid and
/// scales so the maximum distance from the centre is 1.
///
/// Degenerate clouds (all points identical) are centred but not scaled.
/// Returns the applied `(centroid, scale)` so the transform can be undone
/// or reused; scale is the *divisor* applied to coordinates.
pub fn normalize_unit_sphere(cloud: &mut PointCloud) -> (Vec3, f64) {
    let Some(centroid) = cloud.centroid() else {
        return (Vec3::ZERO, 1.0);
    };
    cloud.translate(-centroid);
    let max_r = cloud
        .iter()
        .map(|p| p.position.norm())
        .fold(0.0f64, f64::max);
    let scale = if max_r > 1e-12 { max_r } else { 1.0 };
    for p in cloud.iter_mut() {
        p.position = p.position * (1.0 / scale);
    }
    (centroid, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{Point, PointCloud};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_cloud(n: usize) -> PointCloud {
        PointCloud::from_positions(
            (0..n).map(|i| Vec3::new((i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1, 0.0)),
        )
    }

    #[test]
    fn fps_returns_distinct_indices() {
        let cloud = grid_cloud(100);
        let idx = farthest_point_indices(&cloud, 16);
        assert_eq!(idx.len(), 16);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "indices must be unique");
    }

    #[test]
    fn fps_covers_extremes() {
        // Sampling 2 points from a segment must pick (near) both ends.
        let cloud = PointCloud::from_positions((0..11).map(|i| Vec3::new(i as f64, 0.0, 0.0)));
        let idx = farthest_point_indices(&cloud, 3);
        let xs: Vec<f64> = idx.iter().map(|&i| cloud[i].position.x).collect();
        assert!(xs.iter().any(|&x| x <= 1.0));
        assert!(xs.iter().any(|&x| x >= 9.0));
    }

    #[test]
    fn fps_k_larger_than_n() {
        let cloud = grid_cloud(5);
        let idx = farthest_point_indices(&cloud, 50);
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn fps_empty_and_zero() {
        assert!(farthest_point_indices(&PointCloud::new(), 4).is_empty());
        assert!(farthest_point_indices(&grid_cloud(10), 0).is_empty());
    }

    #[test]
    fn fps_spread_beats_prefix() {
        // The FPS subset's minimum pairwise distance should be at least
        // that of taking the first k points (which are adjacent).
        let cloud = grid_cloud(100);
        let k = 8;
        let fps = farthest_point_sample(&cloud, k);
        let prefix = cloud.select(&(0..k).collect::<Vec<_>>());
        let min_pair = |c: &PointCloud| -> f64 {
            let mut m = f64::INFINITY;
            for i in 0..c.len() {
                for j in i + 1..c.len() {
                    m = m.min(c[i].position.distance(c[j].position));
                }
            }
            m
        };
        assert!(min_pair(&fps) >= min_pair(&prefix));
    }

    #[test]
    fn resample_up_and_down() {
        let cloud = grid_cloud(37);
        let mut rng = StdRng::seed_from_u64(7);
        let up = resample_to(&cloud, 64, &mut rng);
        assert_eq!(up.len(), 64);
        let down = resample_to(&cloud, 16, &mut rng);
        assert_eq!(down.len(), 16);
        let same = resample_to(&cloud, 37, &mut rng);
        assert_eq!(same, cloud);
    }

    #[test]
    fn resample_empty_gives_zero_points() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = resample_to(&PointCloud::new(), 8, &mut rng);
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|p| p.position == Vec3::ZERO));
    }

    #[test]
    fn resample_up_only_duplicates_existing() {
        let cloud = grid_cloud(5);
        let mut rng = StdRng::seed_from_u64(3);
        let up = resample_to(&cloud, 20, &mut rng);
        for p in up.iter() {
            assert!(cloud.iter().any(|q| q.position == p.position));
        }
    }

    #[test]
    fn normalize_centers_and_scales() {
        let mut cloud = PointCloud::from_positions([
            Vec3::new(10.0, 10.0, 10.0),
            Vec3::new(12.0, 10.0, 10.0),
            Vec3::new(10.0, 14.0, 10.0),
        ]);
        let (centroid, scale) = normalize_unit_sphere(&mut cloud);
        assert!(
            centroid.distance(Vec3::new(
                10.666_666_666_666_666,
                11.333_333_333_333_334,
                10.0
            )) < 1e-9
        );
        assert!(scale > 0.0);
        assert!(cloud.centroid().unwrap().norm() < 1e-9);
        let max_r = cloud
            .iter()
            .map(|p| p.position.norm())
            .fold(0.0f64, f64::max);
        assert!((max_r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_degenerate_cloud() {
        let mut cloud = PointCloud::from_points(vec![Point::at(Vec3::new(5.0, 5.0, 5.0)); 4]);
        let (_, scale) = normalize_unit_sphere(&mut cloud);
        assert_eq!(scale, 1.0);
        assert!(cloud.iter().all(|p| p.position.norm() < 1e-12));
    }
}
