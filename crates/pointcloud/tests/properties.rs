//! Property-based tests for point-cloud algorithms.

use gp_pointcloud::dbscan::{dbscan, DbscanConfig};
use gp_pointcloud::metrics::{chamfer, hausdorff, jsd, JsdConfig};
use gp_pointcloud::neighbors::{ball_query, knn_indices};
use gp_pointcloud::sampling::{farthest_point_indices, resample_to};
use gp_pointcloud::{ClusterLabel, PointCloud, Vec3};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn vec3_strategy() -> impl Strategy<Value = Vec3> {
    (-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn cloud_strategy(min: usize, max: usize) -> impl Strategy<Value = PointCloud> {
    prop::collection::vec(vec3_strategy(), min..max).prop_map(PointCloud::from_positions)
}

proptest! {
    #[test]
    fn hausdorff_is_a_metric_like(a in cloud_strategy(1, 30), b in cloud_strategy(1, 30)) {
        let hab = hausdorff(&a, &b);
        let hba = hausdorff(&b, &a);
        prop_assert!((hab - hba).abs() < 1e-12, "symmetry");
        prop_assert!(hab >= 0.0, "non-negativity");
        prop_assert!(hausdorff(&a, &a) == 0.0, "identity");
    }

    #[test]
    fn hausdorff_triangle_inequality(
        a in cloud_strategy(1, 15),
        b in cloud_strategy(1, 15),
        c in cloud_strategy(1, 15),
    ) {
        // Hausdorff distance satisfies the triangle inequality on compact sets.
        let ab = hausdorff(&a, &b);
        let bc = hausdorff(&b, &c);
        let ac = hausdorff(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn chamfer_symmetric_nonnegative(a in cloud_strategy(1, 25), b in cloud_strategy(1, 25)) {
        let cab = chamfer(&a, &b);
        prop_assert!((cab - chamfer(&b, &a)).abs() < 1e-12);
        prop_assert!(cab >= 0.0);
        prop_assert!(chamfer(&a, &a).abs() < 1e-12);
    }

    #[test]
    fn chamfer_bounded_by_hausdorff(a in cloud_strategy(1, 25), b in cloud_strategy(1, 25)) {
        // The average closest-point distance cannot exceed the worst case.
        prop_assert!(chamfer(&a, &b) <= hausdorff(&a, &b) + 1e-9);
    }

    #[test]
    fn jsd_in_unit_interval(a in cloud_strategy(1, 25), b in cloud_strategy(1, 25)) {
        let v = jsd(&a, &b, &JsdConfig::default());
        prop_assert!((0.0..=1.0).contains(&v));
        let self_v = jsd(&a, &a, &JsdConfig::default());
        prop_assert!(self_v < 1e-9);
    }

    #[test]
    fn translation_invariance_of_self_distance(
        cloud in cloud_strategy(2, 20),
        shift in vec3_strategy(),
    ) {
        let mut moved = cloud.clone();
        moved.translate(shift);
        // Distances between a cloud and its translate equal the shift norm
        // only for Hausdorff of singleton sets in general, but hausdorff
        // must be bounded above by the shift magnitude.
        prop_assert!(hausdorff(&cloud, &moved) <= shift.norm() + 1e-9);
    }

    #[test]
    fn fps_indices_unique_and_in_range(cloud in cloud_strategy(1, 60), k in 0usize..70) {
        let idx = farthest_point_indices(&cloud, k);
        prop_assert_eq!(idx.len(), k.min(cloud.len()));
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), idx.len());
        prop_assert!(idx.iter().all(|&i| i < cloud.len()));
    }

    #[test]
    fn resample_always_hits_target(cloud in cloud_strategy(0, 40), n in 0usize..80, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = resample_to(&cloud, n, &mut rng);
        prop_assert_eq!(out.len(), n);
    }

    #[test]
    fn dbscan_labels_complete_and_consistent(cloud in cloud_strategy(0, 50)) {
        let c = dbscan(&cloud, &DbscanConfig { eps: 0.8, min_points: 3 });
        prop_assert_eq!(c.labels().len(), cloud.len());
        // Every cluster id must be < cluster_count.
        for l in c.labels() {
            if let ClusterLabel::Cluster(id) = l {
                prop_assert!(*id < c.cluster_count());
            }
        }
        // Sizes sum to n - noise.
        let size_sum: usize = c.cluster_sizes().iter().sum();
        prop_assert_eq!(size_sum + c.noise_count(), cloud.len());
        // Every non-empty cluster meets the density requirement indirectly:
        // at least one member (the seed core point) had >= min_points
        // neighbours, so clusters must have at least min_points members.
        for size in c.cluster_sizes() {
            prop_assert!(size >= 3);
        }
    }

    #[test]
    fn knn_sorted_by_distance(cloud in cloud_strategy(1, 40), q in vec3_strategy(), k in 1usize..20) {
        let idx = knn_indices(&cloud, q, k);
        let dists: Vec<f64> = idx.iter().map(|&i| cloud[i].position.distance(q)).collect();
        for w in dists.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn ball_query_within_radius(cloud in cloud_strategy(1, 40), q in vec3_strategy(), r in 0.1f64..3.0) {
        for i in ball_query(&cloud, q, r, 100) {
            prop_assert!(cloud[i].position.distance(q) <= r + 1e-12);
        }
    }
}
