//! Agreement tests between the signal-chain and geometric backends.
//!
//! The geometric backend must be statistically interchangeable with the
//! full chain for the quantities the GesturePrint pipeline consumes:
//! point counts during gestures, spatial placement of the detected cloud,
//! and range-dependent sparsity.

use gp_radar::frame::aggregate;
use gp_radar::{Backend, RadarConfig, RadarSimulator};
use gp_testkit::CANONICAL_GESTURE;

fn performance(distance: f64, seed: u64) -> gp_kinematics::Performance {
    gp_testkit::performance(0, CANONICAL_GESTURE, distance, seed)
}

/// Captures only frames inside the gesture interval to compare the parts
/// both backends must agree on.
fn gesture_cloud(backend: Backend, distance: f64) -> gp_pointcloud::PointCloud {
    let config = RadarConfig::default();
    let perf = performance(distance, 5);
    let (gs, ge) = perf.gesture_interval();
    let mut sim = RadarSimulator::new(config, backend, 11);
    let frames: Vec<_> = sim
        .capture_performance(&perf)
        .into_iter()
        .filter(|f| f.timestamp >= gs && f.timestamp < ge)
        .collect();
    aggregate(&frames)
}

#[test]
fn point_counts_are_comparable_at_default_distance() {
    let chain = gesture_cloud(Backend::SignalChain, 1.2);
    let geo = gesture_cloud(Backend::Geometric, 1.2);
    assert!(!chain.is_empty() && !geo.is_empty());
    let ratio = chain.len() as f64 / geo.len() as f64;
    assert!(
        (0.3..3.5).contains(&ratio),
        "backend point counts diverge: chain={} geometric={}",
        chain.len(),
        geo.len()
    );
}

#[test]
fn clouds_occupy_the_same_region() {
    let chain = gesture_cloud(Backend::SignalChain, 1.2);
    let geo = gesture_cloud(Backend::Geometric, 1.2);
    let cc = chain.centroid().expect("chain cloud non-empty");
    let cg = geo.centroid().expect("geometric cloud non-empty");
    assert!(
        cc.distance(cg) < 0.6,
        "centroids diverge: chain {cc:?} vs geometric {cg:?}"
    );
    // Both centred around the user position (y ≈ 1.2 m).
    for c in [cc, cg] {
        assert!((0.6..2.0).contains(&c.y), "centroid off-user: {c:?}");
    }
}

#[test]
fn both_backends_lose_points_with_range() {
    for backend in [Backend::SignalChain, Backend::Geometric] {
        let near = gesture_cloud(backend, 1.2).len();
        let far = gesture_cloud(backend, 4.2).len();
        assert!(
            far < near,
            "{backend:?}: expected sparsity at range, near={near} far={far}"
        );
    }
}

#[test]
fn doppler_distributions_have_matching_sign_spread() {
    let chain = gesture_cloud(Backend::SignalChain, 1.2);
    let geo = gesture_cloud(Backend::Geometric, 1.2);
    let spread = |c: &gp_pointcloud::PointCloud| {
        let pos = c.iter().filter(|p| p.doppler > 0.0).count();
        let neg = c.iter().filter(|p| p.doppler < 0.0).count();
        (pos, neg)
    };
    let (cp, cn) = spread(&chain);
    let (gp_, gn) = spread(&geo);
    // A push gesture moves toward then away from the radar: both backends
    // must see both Doppler signs.
    assert!(cp > 0 && cn > 0, "signal chain one-sided: +{cp}/-{cn}");
    assert!(gp_ > 0 && gn > 0, "geometric one-sided: +{gp_}/-{gn}");
}
