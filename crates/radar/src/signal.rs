//! IF-signal synthesis: from scatterers to raw radar data cubes.
//!
//! For each scatterer at range `r`, radial velocity `v`, and direction
//! cosines `(u, w)` (lateral / vertical), the dechirped IF signal on
//! virtual antenna `(m, n)`, chirp `k`, fast-time sample `s` is
//!
//! ```text
//! A · exp j( 2π·f_b·s·T_s  +  4π(r + v·k·T_c)/λ  +  π(m·u + n·w) )
//! ```
//!
//! with beat frequency `f_b = 2·B·r / (c·T_chirp)` — i.e. range maps to a
//! fast-time tone, velocity to a slow-time phase ramp, and angle to a
//! phase gradient across the λ/2-spaced virtual array. Complex thermal
//! noise is added per sample.

use crate::config::RadarConfig;
use gp_dsp::Complex;
use gp_kinematics::Scatterer;
use gp_pointcloud::Vec3;
use rand::Rng;
use rand_distr_like::gaussian_pair;

/// A raw data cube: `antennas × chirps × samples` complex IF samples.
#[derive(Debug, Clone)]
pub struct DataCube {
    /// Antenna-major storage: `data[ant][chirp][sample]` flattened.
    data: Vec<Complex>,
    antennas: usize,
    chirps: usize,
    samples: usize,
}

impl DataCube {
    /// Allocates a zeroed cube.
    pub fn zeroed(antennas: usize, chirps: usize, samples: usize) -> Self {
        DataCube {
            data: vec![Complex::ZERO; antennas * chirps * samples],
            antennas,
            chirps,
            samples,
        }
    }

    /// Shape as `(antennas, chirps, samples)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.antennas, self.chirps, self.samples)
    }

    /// Borrow one chirp row.
    pub fn chirp(&self, ant: usize, chirp: usize) -> &[Complex] {
        let base = (ant * self.chirps + chirp) * self.samples;
        &self.data[base..base + self.samples]
    }

    fn chirp_mut(&mut self, ant: usize, chirp: usize) -> &mut [Complex] {
        let base = (ant * self.chirps + chirp) * self.samples;
        &mut self.data[base..base + self.samples]
    }
}

/// Minimal Gaussian sampling (Box–Muller) so we do not need an extra
/// dependency for one distribution.
mod rand_distr_like {
    use rand::Rng;

    /// Returns two independent standard normal samples.
    pub fn gaussian_pair<R: Rng>(rng: &mut R) -> (f64, f64) {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        (r * theta.cos(), r * theta.sin())
    }
}

/// The geometry of one scatterer as the radar sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadarReturn {
    /// Slant range (m).
    pub range: f64,
    /// Radial velocity (m/s), positive receding.
    pub radial_velocity: f64,
    /// Lateral direction cosine `u = x/r`.
    pub u: f64,
    /// Vertical direction cosine `w = z/r` (radar-relative height).
    pub w: f64,
    /// Received amplitude.
    pub amplitude: f64,
}

/// Converts a world-frame scatterer into radar-relative geometry.
///
/// The radar sits at the origin at `mount_height` above the floor; world
/// positions use floor `z = 0`.
pub fn radar_return(s: &Scatterer, config: &RadarConfig) -> Option<RadarReturn> {
    let rel = Vec3::new(
        s.position.x,
        s.position.y,
        s.position.z - config.mount_height_m,
    );
    let r = rel.norm();
    if r < 0.05 || r > config.max_range_m {
        return None;
    }
    let dir = rel * (1.0 / r);
    let radial_velocity = s.velocity.dot(dir);
    Some(RadarReturn {
        range: r,
        radial_velocity,
        u: rel.x / r,
        w: rel.z / r,
        amplitude: config.amplitude_k * s.rcs.sqrt() / (r * r),
    })
}

/// Synthesises the IF data cube for one frame from a scatterer snapshot.
///
/// Phase accumulators avoid per-sample trigonometry: the fast-time tone
/// and slow-time Doppler ramp are complex rotations applied incrementally.
pub fn synthesize_frame<R: Rng>(
    scatterers: &[Scatterer],
    config: &RadarConfig,
    rng: &mut R,
) -> DataCube {
    let na = config.virtual_antennas();
    let nc = config.chirps_per_frame;
    let ns = config.samples_per_chirp;
    let mut cube = DataCube::zeroed(na, nc, ns);
    let lambda = config.wavelength();
    // Fast-time sample period: the chirp sweeps the full bandwidth over
    // `ns` samples, so the beat tone for range r advances by
    // 2π · (2·B·r/c) / ns per sample.
    let phase_per_sample = |range: f64| {
        std::f64::consts::TAU * 2.0 * config.bandwidth_hz * range
            / (crate::config::SPEED_OF_LIGHT * ns as f64)
    };

    for s in scatterers {
        let Some(ret) = radar_return(s, config) else {
            continue;
        };
        let dphi_fast = phase_per_sample(ret.range);
        let rot_fast = Complex::cis(dphi_fast);
        // Doppler phase advance per chirp: 4π·v·T_c/λ.
        let dphi_slow =
            2.0 * std::f64::consts::TAU * ret.radial_velocity * config.chirp_interval_s / lambda;
        let rot_slow = Complex::cis(dphi_slow);
        let base_phase = 2.0 * std::f64::consts::TAU * ret.range / lambda;

        let mut ant = 0;
        for el in 0..config.elevation_antennas {
            for az in 0..config.azimuth_antennas {
                let ant_phase = std::f64::consts::PI * (az as f64 * ret.u + el as f64 * ret.w);
                let mut chirp_start = Complex::from_polar(ret.amplitude, base_phase + ant_phase);
                for chirp in 0..nc {
                    let row = cube.chirp_mut(ant, chirp);
                    let mut ph = chirp_start;
                    for sample in row.iter_mut() {
                        *sample += ph;
                        ph *= rot_fast;
                    }
                    chirp_start *= rot_slow;
                }
                ant += 1;
            }
        }
    }

    // Thermal noise.
    if config.noise_sigma > 0.0 {
        for z in cube.data.iter_mut() {
            let (g1, g2) = gaussian_pair(rng);
            *z += Complex::new(g1 * config.noise_sigma, g2 * config.noise_sigma);
        }
    }
    cube
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn still_scatterer(x: f64, y: f64, z: f64, rcs: f64) -> Scatterer {
        Scatterer::fixed(Vec3::new(x, y, z), rcs)
    }

    #[test]
    fn radar_return_geometry() {
        let cfg = RadarConfig::default();
        let s = still_scatterer(0.0, 2.0, 1.25, 1.0); // boresight, radar height
        let r = radar_return(&s, &cfg).unwrap();
        assert!((r.range - 2.0).abs() < 1e-9);
        assert!(r.u.abs() < 1e-9);
        assert!(r.w.abs() < 1e-9);
        assert_eq!(r.radial_velocity, 0.0);
    }

    #[test]
    fn out_of_range_scatterers_rejected() {
        let cfg = RadarConfig::default();
        assert!(radar_return(&still_scatterer(0.0, 9.5, 1.25, 1.0), &cfg).is_none());
        assert!(radar_return(&still_scatterer(0.0, 0.01, 1.25, 1.0), &cfg).is_none());
    }

    #[test]
    fn radial_velocity_is_projection() {
        let cfg = RadarConfig::default();
        let mut s = still_scatterer(0.0, 2.0, 1.25, 1.0);
        s.velocity = Vec3::new(0.0, 1.5, 0.0); // receding straight away
        let r = radar_return(&s, &cfg).unwrap();
        assert!((r.radial_velocity - 1.5).abs() < 1e-9);
        s.velocity = Vec3::new(1.5, 0.0, 0.0); // purely tangential
        let r = radar_return(&s, &cfg).unwrap();
        assert!(r.radial_velocity.abs() < 1e-9);
    }

    #[test]
    fn amplitude_follows_r_squared_law() {
        let cfg = RadarConfig::default();
        let near = radar_return(&still_scatterer(0.0, 1.0, 1.25, 1.0), &cfg).unwrap();
        let far = radar_return(&still_scatterer(0.0, 2.0, 1.25, 1.0), &cfg).unwrap();
        assert!((near.amplitude / far.amplitude - 4.0).abs() < 1e-9);
    }

    #[test]
    fn cube_shape_and_determinism() {
        let cfg = RadarConfig::test_small();
        let scatterers = vec![still_scatterer(0.2, 1.5, 1.3, 0.5)];
        let mut rng = StdRng::seed_from_u64(3);
        let cube = synthesize_frame(&scatterers, &cfg, &mut rng);
        assert_eq!(
            cube.shape(),
            (
                cfg.virtual_antennas(),
                cfg.chirps_per_frame,
                cfg.samples_per_chirp
            )
        );
        let mut rng2 = StdRng::seed_from_u64(3);
        let cube2 = synthesize_frame(&scatterers, &cfg, &mut rng2);
        assert_eq!(cube.chirp(0, 0)[0], cube2.chirp(0, 0)[0]);
    }

    #[test]
    fn tone_appears_in_expected_range_bin() {
        // Noise-free synthesis: the range FFT of a single chirp must peak
        // at bin r / Δr.
        let cfg = RadarConfig {
            noise_sigma: 0.0,
            ..RadarConfig::test_small()
        };
        let target_range = 1.6;
        let s = still_scatterer(0.0, target_range, cfg.mount_height_m, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let cube = synthesize_frame(&[s], &cfg, &mut rng);
        let spec = gp_dsp::fft::fft(cube.chirp(0, 0));
        // The IF signal is complex (I/Q), so the full FFT range is usable.
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
            .unwrap()
            .0;
        let expected = (target_range / cfg.range_resolution()).round() as usize;
        assert!(
            (peak as isize - expected as isize).abs() <= 1,
            "peak bin {peak}, expected ≈{expected}"
        );
    }

    #[test]
    fn gaussian_pair_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let (a, b) = gaussian_pair(&mut rng);
            sum += a + b;
            sum2 += a * a + b * b;
        }
        let mean = sum / (2 * n) as f64;
        let var = sum2 / (2 * n) as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
