//! FMCW mmWave radar simulator.
//!
//! Reproduces the sensing front-end of the paper's hardware (TI
//! IWR6843AOPEVM): frequency-modulated continuous-wave chirps reflect off
//! moving scatterers; the firmware runs Range FFT → static clutter removal
//! → Doppler FFT → CA-CFAR → angle estimation and emits a sparse point
//! cloud per frame (paper §III, §V).
//!
//! Two backends share one calibration:
//!
//! * [`Backend::SignalChain`] — synthesises complex IF samples for every
//!   (antenna, chirp, fast-time sample) and runs the full processing
//!   chain. This is the reference implementation.
//! * [`Backend::Geometric`] — maps scatterers directly to detections with
//!   the same SNR budget, quantisation and false-alarm statistics, at a
//!   fraction of the cost. Used for large dataset sweeps; agreement with
//!   the signal chain is covered by tests.
//!
//! # Example
//!
//! ```
//! use gp_radar::{RadarConfig, RadarSimulator, Backend};
//! use gp_kinematics::{Performance, UserProfile};
//! use gp_kinematics::gestures::{GestureSet, GestureId};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let profile = UserProfile::generate(0, 42);
//! let mut rng = StdRng::seed_from_u64(1);
//! let perf = Performance::new(&profile, GestureSet::Asl15, GestureId(12), 1.2, &mut rng);
//! let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 7);
//! let frames = sim.capture_performance(&perf);
//! assert!(!frames.is_empty());
//! ```

pub mod config;
pub mod environment;
pub mod frame;
pub mod processing;
pub mod scene;
pub mod signal;
pub mod simulator;

pub use config::RadarConfig;
pub use environment::Environment;
pub use frame::Frame;
pub use scene::Scene;
pub use simulator::{Backend, RadarSimulator};
