//! Scene composition: who and what is in front of the radar.
//!
//! A [`Scene`] merges the scatterers of a primary gesture performance with
//! optional interference sources — someone walking past, someone else
//! performing gestures nearby (paper Fig. 15), and the environment's
//! swaying reflectors.

use crate::environment::{Environment, SwayingReflector};
use gp_kinematics::{Performance, Scatterer};
use gp_pointcloud::Vec3;

/// A person walking along a straight line at constant speed, with gait
/// bobbing and arm swing — the paper's "someone else walks past behind
/// the user" case.
#[derive(Debug, Clone, PartialEq)]
pub struct Walker {
    /// Starting torso position (m).
    pub start: Vec3,
    /// Walking velocity (m/s).
    pub velocity: Vec3,
    /// Body height (m).
    pub height: f64,
    /// Time the walker enters the scene (s).
    pub enter_time: f64,
}

impl Walker {
    /// Scatterers of the walker at time `t` (8 points: torso ×3, head,
    /// legs ×2, swinging arms ×2). Returns an empty vector before
    /// `enter_time`.
    pub fn scatterers_at(&self, t: f64) -> Vec<Scatterer> {
        if t < self.enter_time {
            return Vec::new();
        }
        let dt = t - self.enter_time;
        let base = self.start + self.velocity * dt;
        let gait_hz = 1.8;
        let phase = std::f64::consts::TAU * gait_hz * dt;
        let bob = 0.02 * (2.0 * phase).sin();
        let swing = 0.25 * phase.sin();
        let dir = self.velocity.normalized();
        // Arm swing velocity (longitudinal) adds micro-Doppler.
        let swing_v = dir * (0.25 * std::f64::consts::TAU * gait_hz * phase.cos());

        let mut out = Vec::with_capacity(8);
        let torso_z = 0.62 * self.height + bob;
        for dz in [-0.15, 0.0, 0.15] {
            out.push(Scatterer {
                position: Vec3::new(base.x, base.y, torso_z + dz),
                velocity: self.velocity,
                rcs: 1.0,
            });
        }
        out.push(Scatterer {
            position: Vec3::new(base.x, base.y, 0.93 * self.height + bob),
            velocity: self.velocity,
            rcs: 0.45,
        });
        // Legs (counter-phase).
        for (sign, z) in [(1.0, 0.25), (-1.0, 0.25)] {
            out.push(Scatterer {
                position: base
                    + dir * (sign * swing * 0.6)
                    + Vec3::new(0.0, 0.0, z * self.height - base.z),
                velocity: self.velocity + swing_v * (sign * 0.6),
                rcs: 0.35,
            });
        }
        // Arms.
        for sign in [1.0, -1.0] {
            out.push(Scatterer {
                position: base
                    + dir * (sign * swing)
                    + Vec3::new(0.0, 0.0, 0.45 * self.height - base.z),
                velocity: self.velocity + swing_v * sign,
                rcs: 0.25,
            });
        }
        out
    }
}

/// Anything that contributes scatterers over time.
#[derive(Debug, Clone)]
pub enum SceneEntity {
    /// A gesture performance (primary or interfering).
    Performer(Performance),
    /// A person walking through the scene.
    Walker(Walker),
    /// A nearly-static environment reflector.
    Reflector(SwayingReflector),
}

impl SceneEntity {
    fn scatterers_at(&self, t: f64) -> Vec<Scatterer> {
        match self {
            SceneEntity::Performer(p) => p.scatterers_at(t.min(p.total_duration())),
            SceneEntity::Walker(w) => w.scatterers_at(t),
            SceneEntity::Reflector(r) => vec![r.scatterer_at(t)],
        }
    }
}

/// A composed capture scene.
#[derive(Debug, Clone)]
pub struct Scene {
    entities: Vec<SceneEntity>,
    duration: f64,
}

impl Scene {
    /// Creates a scene around a primary performance, adding the
    /// environment's reflectors.
    pub fn for_performance(perf: Performance, environment: Environment, seed: u64) -> Self {
        let duration = perf.total_duration();
        let mut entities = vec![SceneEntity::Performer(perf)];
        entities.extend(
            environment
                .reflectors(seed)
                .into_iter()
                .map(SceneEntity::Reflector),
        );
        Scene { entities, duration }
    }

    /// Creates an empty scene of fixed duration (build up with
    /// [`Scene::push`]).
    pub fn empty(duration: f64) -> Self {
        Scene {
            entities: Vec::new(),
            duration,
        }
    }

    /// Adds an entity.
    pub fn push(&mut self, entity: SceneEntity) -> &mut Self {
        if let SceneEntity::Performer(p) = &entity {
            self.duration = self.duration.max(p.total_duration());
        }
        self.entities.push(entity);
        self
    }

    /// Scene duration (s).
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// All scatterers visible at time `t`.
    pub fn scatterers_at(&self, t: f64) -> Vec<Scatterer> {
        let mut out = Vec::new();
        for e in &self.entities {
            out.extend(e.scatterers_at(t));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_kinematics::gestures::{GestureId, GestureSet};
    use gp_kinematics::UserProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn perf() -> Performance {
        let profile = UserProfile::generate(0, 42);
        let mut rng = StdRng::seed_from_u64(1);
        Performance::new(&profile, GestureSet::Asl15, GestureId(0), 1.2, &mut rng)
    }

    #[test]
    fn walker_absent_before_entry() {
        let w = Walker {
            start: Vec3::new(-2.0, 2.5, 0.0),
            velocity: Vec3::new(1.2, 0.0, 0.0),
            height: 1.7,
            enter_time: 1.0,
        };
        assert!(w.scatterers_at(0.5).is_empty());
        assert_eq!(w.scatterers_at(1.5).len(), 8);
    }

    #[test]
    fn walker_advances() {
        let w = Walker {
            start: Vec3::new(-2.0, 2.5, 0.0),
            velocity: Vec3::new(1.0, 0.0, 0.0),
            height: 1.7,
            enter_time: 0.0,
        };
        let a = w.scatterers_at(0.0)[0].position;
        let b = w.scatterers_at(2.0)[0].position;
        assert!((b.x - a.x - 2.0).abs() < 1e-9);
    }

    #[test]
    fn walker_has_torso_doppler() {
        let w = Walker {
            start: Vec3::new(0.0, 4.0, 0.0),
            velocity: Vec3::new(0.0, -1.3, 0.0), // approaching the radar
            height: 1.7,
            enter_time: 0.0,
        };
        let s = w.scatterers_at(1.0);
        // Torso and head (first four scatterers) carry the body velocity;
        // limbs swing and may momentarily cancel it.
        assert!(s.iter().take(4).all(|sc| sc.velocity.y < -1.0));
    }

    #[test]
    fn scene_merges_entities() {
        let scene = Scene::for_performance(perf(), Environment::Office, 3);
        let n_perf_only = perf().scatterers_at(0.5).len();
        let n_scene = scene.scatterers_at(0.5).len();
        assert_eq!(
            n_scene,
            n_perf_only + Environment::Office.reflector_count(),
            "scene must add the office reflectors"
        );
    }

    #[test]
    fn scene_duration_tracks_longest_performer() {
        let p = perf();
        let d = p.total_duration();
        let mut scene = Scene::empty(0.0);
        scene.push(SceneEntity::Performer(p));
        assert!((scene.duration() - d).abs() < 1e-12);
    }

    #[test]
    fn performance_clamps_after_end() {
        let scene = Scene::for_performance(perf(), Environment::OpenSpace, 3);
        let late = scene.scatterers_at(scene.duration() + 5.0);
        assert!(
            !late.is_empty(),
            "performer should hold rest pose after the end"
        );
    }
}
