//! The radar signal-processing chain: data cube → point cloud.
//!
//! Mirrors the on-chip pipeline the paper relies on (§III): Range FFT →
//! static clutter removal → Doppler FFT → CA-CFAR detection with peak
//! grouping → angle estimation over the virtual array, producing one
//! `(x, y, z, doppler, snr)` point per detected reflector.

use crate::config::RadarConfig;
use crate::signal::DataCube;
use gp_dsp::cfar::{cfar_2d, CfarConfig};
use gp_dsp::fft::{fft_in_place, fft_shift, shifted_bin_to_signed};
use gp_dsp::window::{apply_window, WindowKind};
use gp_dsp::Complex;
use gp_pointcloud::{Point, PointCloud, Vec3};

/// A range–Doppler map for one antenna: `chirps × samples` after both
/// FFTs, Doppler axis fft-shifted (zero velocity centred).
#[derive(Debug, Clone)]
pub struct RangeDopplerMap {
    /// Row-major `doppler_bins × range_bins` complex spectrum.
    pub cells: Vec<Complex>,
    /// Number of Doppler rows.
    pub doppler_bins: usize,
    /// Number of range columns.
    pub range_bins: usize,
}

impl RangeDopplerMap {
    /// Cell accessor.
    pub fn at(&self, doppler: usize, range: usize) -> Complex {
        self.cells[doppler * self.range_bins + range]
    }
}

/// Computes per-antenna range–Doppler maps with Hann windows and static
/// clutter removal (per-range-bin mean subtraction across chirps, the
/// moving-target-indication step that discards zero-Doppler returns —
/// paper §IV-B "static clutter removal").
pub fn range_doppler_maps(cube: &DataCube, _config: &RadarConfig) -> Vec<RangeDopplerMap> {
    let (na, nc, ns) = cube.shape();
    let range_window = WindowKind::Hann.coefficients(ns);
    let doppler_window = WindowKind::Hann.coefficients(nc);
    let mut maps = Vec::with_capacity(na);

    for ant in 0..na {
        // Range FFT per chirp.
        let mut range_spectra: Vec<Vec<Complex>> = (0..nc)
            .map(|chirp| {
                let mut row = cube.chirp(ant, chirp).to_vec();
                apply_window(&mut row, &range_window);
                fft_in_place(&mut row);
                row
            })
            .collect();

        // Static clutter removal: subtract the slow-time mean per bin.
        for bin in 0..ns {
            let mean = range_spectra
                .iter()
                .map(|row| row[bin])
                .fold(Complex::ZERO, |a, b| a + b)
                / nc as f64;
            for row in range_spectra.iter_mut() {
                row[bin] -= mean;
            }
        }

        // Doppler FFT per range bin, then shift zero velocity to centre.
        let mut cells = vec![Complex::ZERO; nc * ns];
        let mut slow = vec![Complex::ZERO; nc];
        for bin in 0..ns {
            for (chirp, z) in slow.iter_mut().enumerate() {
                *z = range_spectra[chirp][bin].scale(doppler_window[chirp]);
            }
            fft_in_place(&mut slow);
            fft_shift(&mut slow);
            for (d, z) in slow.iter().enumerate() {
                cells[d * ns + bin] = *z;
            }
        }
        maps.push(RangeDopplerMap {
            cells,
            doppler_bins: nc,
            range_bins: ns,
        });
    }
    maps
}

/// Sums power across antennas (non-coherent integration).
pub fn power_map(maps: &[RangeDopplerMap]) -> Vec<f64> {
    let first = maps.first().expect("at least one antenna");
    let mut power = vec![0.0f64; first.cells.len()];
    for m in maps {
        for (p, z) in power.iter_mut().zip(m.cells.iter()) {
            *p += z.norm_sqr();
        }
    }
    power
}

/// One grouped detection in the range–Doppler map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Doppler row (shifted; `doppler_bins/2` is zero velocity).
    pub doppler_bin: usize,
    /// Range column.
    pub range_bin: usize,
    /// Cell power.
    pub power: f64,
    /// Estimated noise floor at the cell.
    pub noise: f64,
}

/// Runs CA-CFAR over the power map within the usable range span.
///
/// Peak grouping is intentionally *disabled*: gesture-sensing chirp
/// configurations (including the dense point clouds of the datasets the
/// paper evaluates on) export every CFAR crossing so that an extended
/// target like a human body contributes many points per frame.
pub fn detect(power: &[f64], config: &RadarConfig) -> Vec<Detection> {
    let rows = config.chirps_per_frame;
    let cols = config.samples_per_chirp;
    let cfar = CfarConfig {
        guard_cells: 1,
        training_cells: 4,
        threshold_factor: config.cfar_threshold,
    };
    let usable = config.usable_range_bins();
    cfar_2d(power, rows, cols, &cfar)
        .into_iter()
        .filter(|d| d.index.1 < usable && d.index.1 > 0)
        .map(|d| Detection {
            doppler_bin: d.index.0,
            range_bin: d.index.1,
            power: d.power,
            noise: d.noise,
        })
        .collect()
}

/// Estimates direction cosines `(u, w)` for a detection by fitting the
/// phase gradient across the virtual array (monopulse-style): `u` from
/// the mean phase step between azimuth-adjacent elements, `w` between
/// elevation-adjacent elements.
pub fn estimate_angles(
    maps: &[RangeDopplerMap],
    det: &Detection,
    config: &RadarConfig,
) -> (f64, f64) {
    let naz = config.azimuth_antennas;
    let nel = config.elevation_antennas;
    let z = |el: usize, az: usize| maps[el * naz + az].at(det.doppler_bin, det.range_bin);

    let mut acc_az = Complex::ZERO;
    for el in 0..nel {
        for az in 0..naz.saturating_sub(1) {
            acc_az += z(el, az + 1) * z(el, az).conj();
        }
    }
    let mut acc_el = Complex::ZERO;
    for el in 0..nel.saturating_sub(1) {
        for az in 0..naz {
            acc_el += z(el + 1, az) * z(el, az).conj();
        }
    }
    let u = if acc_az.norm_sqr() > 0.0 {
        acc_az.arg() / std::f64::consts::PI
    } else {
        0.0
    };
    let w = if acc_el.norm_sqr() > 0.0 {
        acc_el.arg() / std::f64::consts::PI
    } else {
        0.0
    };
    (u.clamp(-0.95, 0.95), w.clamp(-0.95, 0.95))
}

/// Full chain: data cube → detected world-frame point cloud.
pub fn process_cube(cube: &DataCube, config: &RadarConfig) -> PointCloud {
    let maps = range_doppler_maps(cube, config);
    let power = power_map(&maps);
    let detections = detect(&power, config);
    let mut cloud = PointCloud::with_capacity(detections.len());
    let vres = config.velocity_resolution();
    for det in &detections {
        let (u, w) = estimate_angles(&maps, det, config);
        let range = det.range_bin as f64 * config.range_resolution();
        let signed_doppler = shifted_bin_to_signed(det.doppler_bin, config.chirps_per_frame) as f64;
        let doppler = signed_doppler * vres;
        let forward = (1.0 - u * u - w * w).max(0.0).sqrt();
        let position = Vec3::new(
            range * u,
            range * forward,
            range * w + config.mount_height_m,
        );
        let snr = if det.noise > 0.0 {
            det.power / det.noise
        } else {
            f64::INFINITY
        };
        cloud.push(Point::new(position, doppler, snr));
    }
    cloud
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::synthesize_frame;
    use gp_kinematics::Scatterer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn capture(scatterers: &[Scatterer], config: &RadarConfig, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        let cube = synthesize_frame(scatterers, config, &mut rng);
        process_cube(&cube, config)
    }

    fn moving_scatterer(pos: Vec3, vel: Vec3, rcs: f64) -> Scatterer {
        Scatterer {
            position: pos,
            velocity: vel,
            rcs,
        }
    }

    #[test]
    fn static_target_is_removed_by_clutter_filter() {
        let cfg = RadarConfig::test_small();
        let s = Scatterer::fixed(Vec3::new(0.0, 1.5, cfg.mount_height_m), 1.0);
        let cloud = capture(&[s], &cfg, 1);
        assert!(
            cloud.is_empty(),
            "static clutter must vanish, got {} points",
            cloud.len()
        );
    }

    #[test]
    fn moving_target_is_detected_at_correct_range() {
        let cfg = RadarConfig::test_small();
        let s = moving_scatterer(
            Vec3::new(0.0, 1.6, cfg.mount_height_m),
            Vec3::new(0.0, 1.0, 0.0),
            0.5,
        );
        let cloud = capture(&[s], &cfg, 2);
        assert!(!cloud.is_empty(), "moving target must be detected");
        let p = cloud.iter().max_by(|a, b| a.snr.total_cmp(&b.snr)).unwrap();
        let range = (p.position - Vec3::new(0.0, 0.0, cfg.mount_height_m)).norm();
        assert!(
            (range - 1.6).abs() < 3.0 * cfg.range_resolution(),
            "range {range}"
        );
    }

    #[test]
    fn doppler_sign_matches_receding_motion() {
        let cfg = RadarConfig::test_small();
        let receding = moving_scatterer(
            Vec3::new(0.0, 1.6, cfg.mount_height_m),
            Vec3::new(0.0, 1.0, 0.0),
            0.5,
        );
        let cloud = capture(&[receding], &cfg, 3);
        let p = cloud.iter().max_by(|a, b| a.snr.total_cmp(&b.snr)).unwrap();
        assert!(
            p.doppler > 0.0,
            "receding target must have positive Doppler, got {}",
            p.doppler
        );

        let approaching = moving_scatterer(
            Vec3::new(0.0, 1.6, cfg.mount_height_m),
            Vec3::new(0.0, -1.0, 0.0),
            0.5,
        );
        let cloud = capture(&[approaching], &cfg, 4);
        let p = cloud.iter().max_by(|a, b| a.snr.total_cmp(&b.snr)).unwrap();
        assert!(
            p.doppler < 0.0,
            "approaching target must have negative Doppler, got {}",
            p.doppler
        );
    }

    #[test]
    fn doppler_magnitude_close_to_truth() {
        let cfg = RadarConfig::test_small();
        let v = 1.2;
        let s = moving_scatterer(
            Vec3::new(0.0, 1.6, cfg.mount_height_m),
            Vec3::new(0.0, v, 0.0),
            0.5,
        );
        let cloud = capture(&[s], &cfg, 5);
        let p = cloud.iter().max_by(|a, b| a.snr.total_cmp(&b.snr)).unwrap();
        assert!(
            (p.doppler - v).abs() <= 1.5 * cfg.velocity_resolution(),
            "doppler {} vs truth {v}",
            p.doppler
        );
    }

    #[test]
    fn lateral_target_gets_lateral_position() {
        let cfg = RadarConfig::test_small();
        // 30° off boresight to the right.
        let x = 0.9;
        let y = 1.56;
        let s = moving_scatterer(
            Vec3::new(x, y, cfg.mount_height_m),
            Vec3::new(0.3, 0.9, 0.0),
            0.8,
        );
        let cloud = capture(&[s], &cfg, 6);
        assert!(!cloud.is_empty());
        let p = cloud.iter().max_by(|a, b| a.snr.total_cmp(&b.snr)).unwrap();
        assert!(
            p.position.x > 0.3,
            "expected rightward estimate, got {:?}",
            p.position
        );
        assert!(
            (p.position.x - x).abs() < 0.5,
            "lateral error too large: {:?}",
            p.position
        );
    }

    #[test]
    fn elevation_maps_to_height() {
        let cfg = RadarConfig::test_small();
        // Above radar height.
        let s = moving_scatterer(
            Vec3::new(0.0, 1.4, cfg.mount_height_m + 0.5),
            Vec3::new(0.0, 0.8, 0.2),
            0.8,
        );
        let cloud = capture(&[s], &cfg, 7);
        assert!(!cloud.is_empty());
        let p = cloud.iter().max_by(|a, b| a.snr.total_cmp(&b.snr)).unwrap();
        assert!(
            p.position.z > cfg.mount_height_m,
            "expected point above mount height, got {:?}",
            p.position
        );
    }

    #[test]
    fn weak_far_target_is_missed() {
        let cfg = RadarConfig::default();
        // A hand-sized reflector near max range is below the CFAR budget.
        let s = moving_scatterer(
            Vec3::new(0.0, 7.8, cfg.mount_height_m),
            Vec3::new(0.0, 1.0, 0.0),
            0.12,
        );
        let cloud = capture(&[s], &cfg, 8);
        assert!(
            cloud.is_empty(),
            "expected miss at 7.8 m, got {} points",
            cloud.len()
        );
    }

    #[test]
    fn two_targets_separated_in_range() {
        let cfg = RadarConfig::test_small();
        let a = moving_scatterer(
            Vec3::new(0.0, 1.0, cfg.mount_height_m),
            Vec3::new(0.0, 1.0, 0.0),
            0.6,
        );
        let b = moving_scatterer(
            Vec3::new(0.0, 2.0, cfg.mount_height_m),
            Vec3::new(0.0, -1.0, 0.0),
            0.6,
        );
        let cloud = capture(&[a, b], &cfg, 9);
        assert!(
            cloud.len() >= 2,
            "expected two detections, got {}",
            cloud.len()
        );
        let ranges: Vec<f64> = cloud
            .iter()
            .map(|p| (p.position - Vec3::new(0.0, 0.0, cfg.mount_height_m)).norm())
            .collect();
        assert!(ranges.iter().any(|r| (r - 1.0).abs() < 0.2), "{ranges:?}");
        assert!(ranges.iter().any(|r| (r - 2.0).abs() < 0.2), "{ranges:?}");
    }

    #[test]
    fn noise_only_yields_few_false_alarms() {
        let cfg = RadarConfig::test_small();
        let mut total = 0;
        for seed in 0..5 {
            total += capture(&[], &cfg, seed).len();
        }
        assert!(total <= 10, "too many false alarms: {total} over 5 frames");
    }
}
