//! The radar simulator: scatterer snapshots → point-cloud frames.
//!
//! Two backends share the calibration in [`RadarConfig`]:
//!
//! * [`Backend::SignalChain`] synthesises IF samples and runs the full
//!   processing chain (`signal` + `processing` modules) — the reference.
//! * [`Backend::Geometric`] short-circuits the chain: each scatterer is
//!   detected with the probability a Swerling-1 target of its cell SNR
//!   would survive CA-CFAR, positions are quantised to the range/velocity
//!   resolution with SNR-dependent angular error, static returns are
//!   dropped (clutter removal), and multipath ghost points are injected.
//!   It is ~100× faster and statistically matched; the agreement tests
//!   live in `tests/backend_agreement.rs`.

use crate::config::RadarConfig;
use crate::frame::Frame;
use crate::processing::process_cube;
use crate::scene::Scene;
use crate::signal::{radar_return, synthesize_frame};
use gp_kinematics::{Performance, Scatterer};
use gp_pointcloud::{Point, PointCloud, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulation fidelity level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Full IF synthesis + FFT/CFAR chain (reference, slow).
    SignalChain,
    /// Statistically matched direct model (fast).
    Geometric,
}

/// Probability that a detection spawns a multipath ghost point.
const GHOST_PROBABILITY: f64 = 0.03;

/// A seeded radar simulator.
#[derive(Debug, Clone)]
pub struct RadarSimulator {
    config: RadarConfig,
    backend: Backend,
    rng: StdRng,
}

impl RadarSimulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`RadarConfig::validate`].
    pub fn new(config: RadarConfig, backend: Backend, seed: u64) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid radar config: {e}");
        }
        RadarSimulator {
            config,
            backend,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The waveform configuration.
    pub fn config(&self) -> &RadarConfig {
        &self.config
    }

    /// The active backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Simulates one frame from a scatterer snapshot.
    pub fn simulate_frame(&mut self, scatterers: &[Scatterer], timestamp: f64) -> Frame {
        let cloud = match self.backend {
            Backend::SignalChain => {
                let cube = synthesize_frame(scatterers, &self.config, &mut self.rng);
                process_cube(&cube, &self.config)
            }
            Backend::Geometric => self.geometric_frame(scatterers),
        };
        Frame::new(timestamp, cloud)
    }

    /// Captures a full performance at the configured frame rate.
    pub fn capture_performance(&mut self, perf: &Performance) -> Vec<Frame> {
        let dt = self.config.frame_interval();
        let n = (perf.total_duration() / dt).ceil() as usize;
        (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                let scatterers = perf.scatterers_at(t);
                self.simulate_frame(&scatterers, t)
            })
            .collect()
    }

    /// Captures a composed scene at the configured frame rate.
    pub fn capture_scene(&mut self, scene: &Scene) -> Vec<Frame> {
        let dt = self.config.frame_interval();
        let n = (scene.duration() / dt).ceil() as usize;
        (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                let scatterers = scene.scatterers_at(t);
                self.simulate_frame(&scatterers, t)
            })
            .collect()
    }

    fn geometric_frame(&mut self, scatterers: &[Scatterer]) -> PointCloud {
        let cfg = self.config.clone();
        let cfg = &cfg;
        let vres = cfg.velocity_resolution();
        let rres = cfg.range_resolution();
        let vmax = cfg.max_velocity();
        let mut cloud = PointCloud::new();

        // Scatterers sharing a range–Doppler cell are unresolvable: the
        // real chain detects one peak whose angle is the power-weighted
        // blend of the contributors. Accumulate per cell first.
        #[derive(Default)]
        struct Cell {
            snr: f64,
            u: f64,
            w: f64,
        }
        let mut cells: std::collections::HashMap<(i64, i64), Cell> =
            std::collections::HashMap::new();

        for s in scatterers {
            let Some(ret) = radar_return(s, cfg) else {
                continue;
            };
            // Static clutter removal: zero-Doppler bin returns are
            // subtracted before detection.
            if ret.radial_velocity.abs() < 0.5 * vres {
                continue;
            }
            // The clutter filter (slow-time mean subtraction) notches DC
            // and attenuates near-DC Doppler; targets below ~2 velocity
            // bins lose most of their power.
            let mti_gain = ((ret.radial_velocity.abs() / (2.0 * vres)).min(1.0)).powi(2);
            let snr = cfg.cell_snr(s.rcs, ret.range) * mti_gain;
            let range_bin = (ret.range / rres).round() as i64;
            // Doppler ambiguity fold.
            let mut v = ret.radial_velocity;
            while v >= vmax {
                v -= 2.0 * vmax;
            }
            while v < -vmax {
                v += 2.0 * vmax;
            }
            let doppler_bin = (v / vres).round() as i64;
            let cell = cells.entry((range_bin, doppler_bin)).or_default();
            cell.snr += snr;
            cell.u += snr * ret.u;
            cell.w += snr * ret.w;
        }

        // Deterministic iteration order for reproducibility. Peak
        // grouping is disabled to match the dense point-cloud export of
        // gesture-sensing configurations (see `processing::detect`).
        let mut keys: Vec<(i64, i64)> = cells.keys().copied().collect();
        keys.sort_unstable();

        for key in keys {
            let cell = &cells[&key];
            let (range_bin, doppler_bin) = key;
            let snr = cell.snr;
            // Swerling-1 fluctuating target through CA-CFAR:
            // Pd ≈ exp(−T / (1 + SNR)).
            let pd = (-cfg.cfar_threshold / (1.0 + snr)).exp();
            if !self.rng.gen_bool(pd.clamp(0.0, 1.0)) {
                continue;
            }
            // Measured SNR fluctuates exponentially around the mean.
            let uu: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            let meas_snr = (snr * -uu.ln()).max(cfg.cfar_threshold);

            let range_q = range_bin as f64 * rres;
            let doppler_q = doppler_bin as f64 * vres;
            // Power-weighted mean angle with SNR-dependent phase-fit error.
            let ang_sigma = (0.35 / (cfg.azimuth_antennas as f64)) / meas_snr.sqrt().max(1.0);
            let u_m = (cell.u / snr + self.gaussian() * ang_sigma).clamp(-0.95, 0.95);
            let w_sigma = (0.35 / (cfg.elevation_antennas as f64)) / meas_snr.sqrt().max(1.0);
            let w_m = (cell.w / snr + self.gaussian() * w_sigma).clamp(-0.95, 0.95);
            let forward = (1.0 - u_m * u_m - w_m * w_m).max(0.0).sqrt();
            cloud.push(Point::new(
                Vec3::new(
                    range_q * u_m,
                    range_q * forward,
                    range_q * w_m + cfg.mount_height_m,
                ),
                doppler_q,
                meas_snr,
            ));
        }

        // Multipath ghosts: with small probability a detection spawns a
        // weak copy at a longer apparent range (radar → wall → target →
        // radar), the paper's stated second noise source (§IV-B). Thermal
        // false alarms are negligible at this threshold once power is
        // integrated over 12 antennas (measured ≈ 0/frame on the signal
        // chain), so none are injected.
        let n_real = cloud.len();
        for i in 0..n_real {
            if !self.rng.gen_bool(GHOST_PROBABILITY) {
                continue;
            }
            let p = cloud[i];
            let stretch = self.rng.gen_range(1.15..1.6);
            let rel = p.position - Vec3::new(0.0, 0.0, cfg.mount_height_m);
            let ghost_pos = rel * stretch;
            if ghost_pos.norm() > cfg.max_range_m {
                continue;
            }
            cloud.push(Point::new(
                ghost_pos + Vec3::new(0.0, 0.0, cfg.mount_height_m),
                p.doppler,
                cfg.cfar_threshold * self.rng.gen_range(1.0..1.8),
            ));
        }
        cloud
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_kinematics::gestures::{GestureId, GestureSet};
    use gp_kinematics::UserProfile;

    fn performance(distance: f64) -> Performance {
        let profile = UserProfile::generate(0, 42);
        let mut rng = StdRng::seed_from_u64(1);
        Performance::new(
            &profile,
            GestureSet::Asl15,
            GestureId(12),
            distance,
            &mut rng,
        )
    }

    #[test]
    fn geometric_capture_produces_motion_frames() {
        let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 7);
        let perf = performance(1.2);
        let frames = sim.capture_performance(&perf);
        let expected = (perf.total_duration() * 10.0).ceil() as usize;
        assert_eq!(frames.len(), expected);
        let (gs, ge) = perf.gesture_interval();
        let motion_points: usize = frames
            .iter()
            .filter(|f| f.timestamp >= gs && f.timestamp < ge)
            .map(Frame::len)
            .sum();
        let idle_points: usize = frames
            .iter()
            .filter(|f| f.timestamp < gs * 0.8)
            .map(Frame::len)
            .sum();
        assert!(
            motion_points > 30,
            "gesture should light up: {motion_points}"
        );
        let idle_frames = frames.iter().filter(|f| f.timestamp < gs * 0.8).count();
        assert!(
            (idle_points as f64 / idle_frames.max(1) as f64) < 4.0,
            "idle frames should be nearly empty: {idle_points} over {idle_frames}"
        );
    }

    #[test]
    fn point_count_decreases_with_distance() {
        let count_at = |d: f64| -> usize {
            let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 7);
            let perf = performance(d);
            sim.capture_performance(&perf).iter().map(Frame::len).sum()
        };
        let near = count_at(1.2);
        let mid = count_at(3.0);
        let far = count_at(4.8);
        assert!(near > mid, "near {near} vs mid {mid}");
        assert!(mid > far, "mid {mid} vs far {far}");
        assert!(far > 0, "torso still visible at 4.8 m");
    }

    #[test]
    fn deterministic_given_seed() {
        let perf = performance(1.2);
        let mut a = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 9);
        let mut b = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 9);
        let fa = a.capture_performance(&perf);
        let fb = b.capture_performance(&perf);
        assert_eq!(fa.len(), fb.len());
        for (x, y) in fa.iter().zip(fb.iter()) {
            assert_eq!(x.cloud, y.cloud);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let perf = performance(1.2);
        let mut a = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 1);
        let mut b = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 2);
        let pa: usize = a.capture_performance(&perf).iter().map(Frame::len).sum();
        let pb: usize = b.capture_performance(&perf).iter().map(Frame::len).sum();
        // Same expected statistics, different realisations.
        assert_ne!(pa, pb);
    }

    #[test]
    fn signal_chain_backend_works_end_to_end() {
        // Small config for speed; one frame mid-gesture.
        let cfg = RadarConfig::test_small();
        let perf = performance(1.2);
        let (gs, ge) = perf.gesture_interval();
        let mut sim = RadarSimulator::new(cfg, Backend::SignalChain, 7);
        let frame = sim.simulate_frame(&perf.scatterers_at((gs + ge) / 2.0), 0.0);
        assert!(
            !frame.is_empty(),
            "mid-gesture frame should contain detections"
        );
    }

    #[test]
    #[should_panic(expected = "invalid radar config")]
    fn invalid_config_panics() {
        let bad = RadarConfig {
            samples_per_chirp: 100,
            ..RadarConfig::default()
        };
        RadarSimulator::new(bad, Backend::Geometric, 0);
    }

    #[test]
    fn doppler_values_within_ambiguity() {
        let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 7);
        let perf = performance(1.2);
        let vmax = sim.config().max_velocity();
        for f in sim.capture_performance(&perf) {
            for p in f.cloud.iter() {
                assert!(
                    p.doppler.abs() <= vmax + 1e-9,
                    "doppler {} out of range",
                    p.doppler
                );
            }
        }
    }

    #[test]
    fn ghosts_are_rare_and_at_longer_range() {
        // Capture a gesture and check ghost statistics: points beyond the
        // user's reach envelope must be a small minority.
        let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 7);
        let perf = performance(1.2);
        let frames = sim.capture_performance(&perf);
        let total: usize = frames.iter().map(Frame::len).sum();
        let beyond: usize = frames
            .iter()
            .flat_map(|f| f.cloud.iter())
            .filter(|p| p.position.y > 2.0)
            .count();
        assert!(total > 0);
        assert!(
            (beyond as f64) < 0.12 * total as f64,
            "too many ghost points: {beyond}/{total}"
        );
    }
}
