//! Radar waveform and antenna configuration.
//!
//! Defaults reproduce the paper's IWR6843AOPEVM settings (§V): 60–64 GHz
//! RF band, 3 TX × 4 RX antennas, 10 fps, 0.04 m range resolution, 8.2 m
//! maximum range, ±2.7 m/s maximum radial velocity, 0.34 m/s velocity
//! resolution, mounted at 1.25 m height.

/// Speed of light (m/s).
pub const SPEED_OF_LIGHT: f64 = 2.997_924_58e8;

/// FMCW radar configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RadarConfig {
    /// Carrier (chirp start) frequency (Hz).
    pub carrier_hz: f64,
    /// Chirp sweep bandwidth (Hz); sets range resolution `c / 2B`.
    pub bandwidth_hz: f64,
    /// Fast-time samples per chirp (range FFT length; power of two).
    pub samples_per_chirp: usize,
    /// Chirps per frame (Doppler FFT length; power of two).
    pub chirps_per_frame: usize,
    /// Chirp repetition interval (s); sets the maximum unambiguous
    /// velocity `λ / 4·T_c`.
    pub chirp_interval_s: f64,
    /// Virtual antenna columns (azimuth, λ/2 spacing).
    pub azimuth_antennas: usize,
    /// Virtual antenna rows (elevation, λ/2 spacing).
    pub elevation_antennas: usize,
    /// Frame rate (frames per second).
    pub frame_rate_hz: f64,
    /// Maximum usable range (m); detections beyond this are discarded.
    pub max_range_m: f64,
    /// Mounting height of the sensor above the floor (m).
    pub mount_height_m: f64,
    /// Amplitude calibration constant: received amplitude is
    /// `k·√RCS / r²`.
    pub amplitude_k: f64,
    /// Thermal noise standard deviation per IF sample (complex, per
    /// component).
    pub noise_sigma: f64,
    /// CFAR threshold factor over the local noise estimate.
    pub cfar_threshold: f64,
}

impl Default for RadarConfig {
    fn default() -> Self {
        RadarConfig {
            carrier_hz: 60.25e9,
            bandwidth_hz: 3.747e9, // c / (2 · 0.04 m)
            samples_per_chirp: 256,
            chirps_per_frame: 16,
            chirp_interval_s: 4.6e-4,
            azimuth_antennas: 4,
            elevation_antennas: 3,
            frame_rate_hz: 10.0,
            max_range_m: 8.2,
            mount_height_m: 1.25,
            amplitude_k: 10.5,
            noise_sigma: 1.0,
            cfar_threshold: 8.0,
        }
    }
}

impl RadarConfig {
    /// A reduced configuration for fast unit tests: 64 range bins, 8
    /// chirps, 2×2 antennas. Keeps the same resolutions scaled down.
    pub fn test_small() -> Self {
        RadarConfig {
            samples_per_chirp: 64,
            chirps_per_frame: 8,
            azimuth_antennas: 2,
            elevation_antennas: 2,
            max_range_m: 0.04 * 60.0,
            ..RadarConfig::default()
        }
    }

    /// Carrier wavelength λ (m).
    pub fn wavelength(&self) -> f64 {
        SPEED_OF_LIGHT / self.carrier_hz
    }

    /// Range resolution `c / 2B` (m); 0.04 m for the paper's settings.
    pub fn range_resolution(&self) -> f64 {
        SPEED_OF_LIGHT / (2.0 * self.bandwidth_hz)
    }

    /// Maximum unambiguous radial velocity `λ / 4·T_c` (m/s); ±2.7 for
    /// the paper's settings.
    pub fn max_velocity(&self) -> f64 {
        self.wavelength() / (4.0 * self.chirp_interval_s)
    }

    /// Velocity resolution `λ / (2·N_c·T_c)` (m/s); 0.34 for the paper's
    /// settings.
    pub fn velocity_resolution(&self) -> f64 {
        self.wavelength() / (2.0 * self.chirps_per_frame as f64 * self.chirp_interval_s)
    }

    /// Total virtual antennas (azimuth × elevation); 12 for 3 TX × 4 RX.
    pub fn virtual_antennas(&self) -> usize {
        self.azimuth_antennas * self.elevation_antennas
    }

    /// Number of usable range bins (`max_range / range_resolution`,
    /// capped by the FFT length).
    pub fn usable_range_bins(&self) -> usize {
        ((self.max_range_m / self.range_resolution()) as usize).min(self.samples_per_chirp)
    }

    /// Frame interval (s).
    pub fn frame_interval(&self) -> f64 {
        1.0 / self.frame_rate_hz
    }

    /// Expected single-scatterer cell SNR (linear) after coherent range +
    /// Doppler integration, for a reflector of cross-section `rcs` at
    /// range `r`. Shared by both backends so their detection statistics
    /// agree.
    ///
    /// Derivation: amplitude `A = k·√rcs / r²`; Hann windows contribute a
    /// coherent gain ≈ 0.5 per FFT; coherent gains are `N_s·0.5` and
    /// `N_c·0.5`; noise power grows as `N_s·N_c`, giving
    /// `SNR = A²·N_s·N_c / (16·σ²)`.
    pub fn cell_snr(&self, rcs: f64, r: f64) -> f64 {
        if r < 1e-6 {
            return f64::INFINITY;
        }
        let a2 = self.amplitude_k * self.amplitude_k * rcs / r.powi(4);
        a2 * (self.samples_per_chirp as f64) * (self.chirps_per_frame as f64)
            / (16.0 * self.noise_sigma * self.noise_sigma)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.samples_per_chirp.is_power_of_two() {
            return Err(format!(
                "samples_per_chirp must be a power of two, got {}",
                self.samples_per_chirp
            ));
        }
        if !self.chirps_per_frame.is_power_of_two() {
            return Err(format!(
                "chirps_per_frame must be a power of two, got {}",
                self.chirps_per_frame
            ));
        }
        if self.azimuth_antennas == 0 || self.elevation_antennas == 0 {
            return Err("antenna counts must be non-zero".into());
        }
        if self.frame_rate_hz <= 0.0 {
            return Err("frame rate must be positive".into());
        }
        let frame_active = self.chirps_per_frame as f64 * self.chirp_interval_s;
        if frame_active > self.frame_interval() {
            return Err(format!(
                "chirp burst ({frame_active}s) exceeds the frame interval ({}s)",
                self.frame_interval()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = RadarConfig::default();
        assert!(
            (c.range_resolution() - 0.04).abs() < 1e-3,
            "{}",
            c.range_resolution()
        );
        assert!((c.max_velocity() - 2.7).abs() < 0.1, "{}", c.max_velocity());
        assert!(
            (c.velocity_resolution() - 0.34).abs() < 0.02,
            "{}",
            c.velocity_resolution()
        );
        assert_eq!(c.virtual_antennas(), 12);
        assert!((c.max_range_m - 8.2).abs() < 1e-9);
        assert!((c.mount_height_m - 1.25).abs() < 1e-9);
        assert_eq!(c.frame_rate_hz, 10.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn snr_falls_with_fourth_power_of_range() {
        let c = RadarConfig::default();
        let near = c.cell_snr(0.12, 1.2);
        let far = c.cell_snr(0.12, 2.4);
        assert!((near / far - 16.0).abs() < 1e-6);
    }

    #[test]
    fn snr_scales_linearly_with_rcs() {
        let c = RadarConfig::default();
        assert!((c.cell_snr(0.2, 2.0) / c.cell_snr(0.1, 2.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hand_detectable_at_near_range_marginal_at_far() {
        // Calibration target: hands (rcs 0.12) comfortably above the CFAR
        // threshold at 1.2–3.6 m, marginal beyond 4 m (paper Fig. 11).
        let c = RadarConfig::default();
        assert!(c.cell_snr(0.12, 1.2) > 10.0 * c.cfar_threshold);
        assert!(c.cell_snr(0.12, 3.6) > c.cfar_threshold);
        assert!(c.cell_snr(0.12, 4.8) < c.cfar_threshold);
        // Torso stays visible at the far end.
        assert!(c.cell_snr(1.0, 4.8) > c.cfar_threshold);
    }

    #[test]
    fn usable_bins_capped() {
        let c = RadarConfig::default();
        // 8.2 m / 0.04 m ≈ 205 bins (float rounding gives 204).
        assert!((204..=205).contains(&c.usable_range_bins()));
        let small = RadarConfig {
            max_range_m: 100.0,
            ..RadarConfig::default()
        };
        assert_eq!(small.usable_range_bins(), small.samples_per_chirp);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let bad = RadarConfig {
            samples_per_chirp: 100,
            ..RadarConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = RadarConfig {
            chirps_per_frame: 12,
            ..RadarConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = RadarConfig {
            chirp_interval_s: 1.0,
            ..RadarConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = RadarConfig {
            azimuth_antennas: 0,
            ..RadarConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn test_small_is_valid() {
        assert!(RadarConfig::test_small().validate().is_ok());
    }
}
