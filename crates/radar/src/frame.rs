//! Radar frames: timestamped point clouds.

use gp_pointcloud::PointCloud;

/// One radar frame: the point cloud detected during one chirp burst.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Frame {
    /// Frame timestamp (s, from the start of the capture).
    pub timestamp: f64,
    /// Detected points (world coordinates, floor at `z = 0`).
    pub cloud: PointCloud,
}

impl Frame {
    /// Creates a frame.
    pub fn new(timestamp: f64, cloud: PointCloud) -> Self {
        Frame { timestamp, cloud }
    }

    /// Number of points in the frame.
    pub fn len(&self) -> usize {
        self.cloud.len()
    }

    /// Whether the frame detected nothing.
    pub fn is_empty(&self) -> bool {
        self.cloud.is_empty()
    }
}

/// Aggregates the clouds of `frames[range]` into one cloud — the paper's
/// "aggregate points captured in the whole gesture process" step feeding
/// GesIDNet (§IV-C).
pub fn aggregate(frames: &[Frame]) -> PointCloud {
    let mut out = PointCloud::with_capacity(frames.iter().map(Frame::len).sum());
    for f in frames {
        out.merge(&f.cloud);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_pointcloud::{Point, Vec3};

    #[test]
    fn aggregate_concatenates() {
        let f1 = Frame::new(0.0, PointCloud::from_positions([Vec3::ZERO]));
        let f2 = Frame::new(
            0.1,
            PointCloud::from_points(vec![
                Point::at(Vec3::new(1.0, 0.0, 0.0)),
                Point::at(Vec3::new(2.0, 0.0, 0.0)),
            ]),
        );
        let all = aggregate(&[f1, f2]);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn aggregate_empty() {
        assert!(aggregate(&[]).is_empty());
    }

    #[test]
    fn frame_len_and_empty() {
        let f = Frame::new(0.0, PointCloud::new());
        assert_eq!(f.len(), 0);
        assert!(f.is_empty());
    }
}
