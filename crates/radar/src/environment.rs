//! Environment presets: the rooms of the paper's evaluation.
//!
//! Static walls and furniture are invisible after static clutter removal,
//! but *almost*-static objects (swaying plants, monitor stands nudged by
//! ventilation, curtains) leak residual micro-Doppler noise — exactly the
//! noise the paper's DBSCAN-based noise canceling targets (§IV-B). Each
//! preset seeds a set of such reflectors with environment-specific
//! density.

use gp_kinematics::Scatterer;
use gp_pointcloud::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The rooms used across the four datasets (paper Tab. I, Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Environment {
    /// Small office, 2.4 m × 4.1 m (GesturePrint dataset).
    Office,
    /// Large meeting room, 6.8 m × 7.6 m (GesturePrint dataset).
    MeetingRoom,
    /// Home living room (mHomeGes / mTransSee datasets).
    Home,
    /// Open space (Pantomime dataset).
    OpenSpace,
}

impl gp_codec::Encode for Environment {
    fn encode(&self) -> gp_codec::Value {
        gp_codec::Value::Str(self.tag().to_owned())
    }
}

impl gp_codec::Decode for Environment {
    fn decode(value: &gp_codec::Value) -> Result<Self, gp_codec::DecodeError> {
        let tag = value.as_str()?;
        Environment::ALL
            .into_iter()
            .find(|e| e.tag() == tag)
            .ok_or_else(|| gp_codec::DecodeError::new(format!("unknown environment '{tag}'")))
    }
}

/// A nearly-static reflector that sways slightly around an anchor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwayingReflector {
    /// Anchor position (world frame, m).
    pub anchor: Vec3,
    /// Sway amplitude (m).
    pub amplitude: f64,
    /// Sway frequency (Hz).
    pub frequency: f64,
    /// Phase offset (rad).
    pub phase: f64,
    /// Radar cross-section.
    pub rcs: f64,
}

impl SwayingReflector {
    /// The reflector's scatterer at time `t`.
    pub fn scatterer_at(&self, t: f64) -> Scatterer {
        let w = std::f64::consts::TAU * self.frequency;
        let s = (w * t + self.phase).sin();
        let c = (w * t + self.phase).cos();
        Scatterer {
            position: self.anchor + Vec3::new(self.amplitude * s, 0.0, self.amplitude * 0.4 * s),
            velocity: Vec3::new(self.amplitude * w * c, 0.0, self.amplitude * 0.4 * w * c),
            rcs: self.rcs,
        }
    }
}

impl Environment {
    /// Stable serialization tag (persisted in artifacts; do not rename).
    pub fn tag(self) -> &'static str {
        match self {
            Environment::Office => "office",
            Environment::MeetingRoom => "meeting_room",
            Environment::Home => "home",
            Environment::OpenSpace => "open_space",
        }
    }

    /// All presets.
    pub const ALL: [Environment; 4] = [
        Environment::Office,
        Environment::MeetingRoom,
        Environment::Home,
        Environment::OpenSpace,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Environment::Office => "Office",
            Environment::MeetingRoom => "Meeting Room",
            Environment::Home => "Home",
            Environment::OpenSpace => "Open Space",
        }
    }

    /// Room extent as `(width, depth)` in metres; the radar sits at the
    /// origin looking along +y.
    pub fn extent(self) -> (f64, f64) {
        match self {
            Environment::Office => (2.4, 4.1),
            Environment::MeetingRoom => (6.8, 7.6),
            Environment::Home => (4.5, 5.5),
            Environment::OpenSpace => (12.0, 12.0),
        }
    }

    /// Number of swaying reflectors typical for the preset.
    pub fn reflector_count(self) -> usize {
        match self {
            Environment::Office => 4,
            Environment::MeetingRoom => 3,
            Environment::Home => 4,
            Environment::OpenSpace => 1,
        }
    }

    /// Generates the preset's swaying reflectors deterministically from a
    /// seed. Reflectors are placed away from the user corridor (|x| >
    /// 0.6 m) so they perturb rather than overlap the gesture zone.
    pub fn reflectors(self, seed: u64) -> Vec<SwayingReflector> {
        let mut rng =
            StdRng::seed_from_u64(seed ^ ENV_SALT ^ (self as u64).wrapping_mul(0xA5A5_1234));
        let (w, d) = self.extent();
        (0..self.reflector_count())
            .map(|_| {
                let side = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                SwayingReflector {
                    anchor: Vec3::new(
                        side * rng.gen_range(0.6..(w / 2.0).max(0.7)),
                        rng.gen_range(0.8..d.min(6.0)),
                        rng.gen_range(0.4..1.6),
                    ),
                    amplitude: rng.gen_range(0.003..0.02),
                    frequency: rng.gen_range(0.4..2.2),
                    phase: rng.gen_range(0.0..std::f64::consts::TAU),
                    rcs: rng.gen_range(0.1..0.6),
                }
            })
            .collect()
    }
}

const ENV_SALT: u64 = 0x5EED_0FAC_u64; // salt for reflector seeding

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents_match_paper_floorplans() {
        assert_eq!(Environment::Office.extent(), (2.4, 4.1));
        assert_eq!(Environment::MeetingRoom.extent(), (6.8, 7.6));
    }

    #[test]
    fn reflectors_deterministic_per_seed() {
        let a = Environment::Office.reflectors(9);
        let b = Environment::Office.reflectors(9);
        assert_eq!(a, b);
        let c = Environment::Office.reflectors(10);
        assert_ne!(a, c);
    }

    #[test]
    fn reflectors_avoid_user_corridor() {
        for env in Environment::ALL {
            for r in env.reflectors(3) {
                assert!(
                    r.anchor.x.abs() >= 0.6,
                    "{env:?} reflector in corridor: {:?}",
                    r.anchor
                );
            }
        }
    }

    #[test]
    fn open_space_quieter_than_office() {
        assert!(Environment::OpenSpace.reflector_count() < Environment::Office.reflector_count());
    }

    #[test]
    fn sway_produces_small_velocity() {
        let r = SwayingReflector {
            anchor: Vec3::new(1.0, 2.0, 1.0),
            amplitude: 0.01,
            frequency: 1.0,
            phase: 0.0,
            rcs: 0.3,
        };
        let s = r.scatterer_at(0.0);
        assert!(
            s.velocity.norm() < 0.1,
            "sway velocity {}",
            s.velocity.norm()
        );
        assert!(s.position.distance(r.anchor) < 0.03);
        // Position oscillates: quarter period later it differs.
        let s2 = r.scatterer_at(0.25);
        assert!(s.position != s2.position);
    }
}
