//! Measures the signal chain's empirical false-alarm rate on noise-only
//! frames (calibration aid for the geometric backend).

use gp_radar::{Backend, RadarConfig, RadarSimulator};

fn main() {
    let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::SignalChain, 123);
    let frames = 40;
    let mut total = 0usize;
    let mut ys = Vec::new();
    for i in 0..frames {
        let f = sim.simulate_frame(&[], i as f64 * 0.1);
        total += f.len();
        for p in f.cloud.iter() {
            ys.push(p.position.y);
        }
    }
    println!(
        "false alarms: {total} over {frames} frames = {:.3}/frame",
        total as f64 / frames as f64
    );
    if !ys.is_empty() {
        ys.sort_by(f64::total_cmp);
        println!(
            "y range: {:.2}..{:.2}, median {:.2}",
            ys[0],
            ys[ys.len() - 1],
            ys[ys.len() / 2]
        );
    }
}
