//! Length-prefixed wire framing for streaming transports.
//!
//! `gp-net` carries gp-codec payloads over TCP / Unix-domain byte
//! streams; this module defines the frame envelope and an incremental
//! decoder that never desyncs on a *payload*-level problem:
//!
//! ```text
//!   ┌───────┬─────────┬──────────────┬──────────────┬───────────┐
//!   │ "GP"  │ version │ len (u32 BE) │ fnv32(payld) │  payload  │
//!   │ 2 B   │ 1 B     │ 4 B          │ 4 B          │  len B    │
//!   └───────┴─────────┴──────────────┴──────────────┴───────────┘
//! ```
//!
//! Error taxonomy (the part protocol robustness hangs on):
//!
//! * **Truncated** frames are not errors at all — [`FrameDecoder::next`]
//!   returns `Ok(None)` until the remaining bytes arrive.
//! * **Corrupt** payloads (checksum mismatch) are *recoverable*: the
//!   header told us the length, so the decoder skips exactly that
//!   payload, reports [`FrameError::Corrupt`] once, and the next call
//!   resumes at the following frame — the stream stays in sync.
//! * **Oversized** lengths and **bad magic/version** are *fatal*
//!   ([`FrameError::desyncs`]): a length past the cap is
//!   indistinguishable from garbage (trusting it could swallow the
//!   whole stream), so the connection must be dropped.
//!
//! The checksum is FNV-1a (32-bit): not cryptographic, just enough to
//! turn silent payload corruption into a counted, skippable error.

/// Leading magic bytes of every frame.
pub const FRAME_MAGIC: [u8; 2] = *b"GP";
/// Wire protocol version this codec emits and accepts.
pub const FRAME_VERSION: u8 = 1;
/// Envelope bytes preceding the payload.
pub const FRAME_HEADER_LEN: usize = 11;

/// FNV-1a 32-bit checksum over `bytes`.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// A framing problem in an incoming byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The stream did not start a frame with [`FRAME_MAGIC`] — the
    /// decoder has lost sync and the connection cannot be salvaged.
    BadMagic { found: [u8; 2] },
    /// A frame declared an unsupported protocol version.
    BadVersion { found: u8 },
    /// A frame declared a payload longer than the decoder's cap. The
    /// length cannot be trusted, so this is fatal.
    Oversized { len: usize, max: usize },
    /// A complete frame's payload failed its checksum. The envelope was
    /// intact, so the frame was skipped and decoding can continue.
    Corrupt { len: usize },
}

impl FrameError {
    /// Whether the stream is unrecoverable after this error (the caller
    /// must drop the connection rather than keep decoding).
    pub fn desyncs(&self) -> bool {
        !matches!(self, FrameError::Corrupt { .. })
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02X?} (stream desynced)")
            }
            FrameError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported frame version {found} (expected {FRAME_VERSION})"
                )
            }
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds cap {max}")
            }
            FrameError::Corrupt { len } => {
                write!(f, "checksum mismatch on {len}-byte payload (frame skipped)")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Wraps `payload` in the wire envelope.
///
/// # Errors
///
/// Returns [`FrameError::Oversized`] when `payload` exceeds `max` — the
/// sender-side mirror of the decoder cap, so an oversized message is
/// refused before it poisons the stream.
pub fn encode_frame(payload: &[u8], max: usize) -> Result<Vec<u8>, FrameError> {
    if payload.len() > max || payload.len() > u32::MAX as usize {
        return Err(FrameError::Oversized {
            len: payload.len(),
            max,
        });
    }
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&checksum(payload).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Incremental frame decoder over an arbitrary chunking of the stream.
///
/// Feed bytes with [`FrameDecoder::extend`] as they arrive; pull
/// complete payloads with [`FrameDecoder::next`]. Chunk boundaries are
/// invisible: any split of the byte stream yields the same sequence of
/// payloads and errors.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (compacted opportunistically).
    pos: usize,
    max_frame: usize,
    /// Set once a desyncing error was returned: all further input is
    /// garbage by definition.
    poisoned: bool,
}

impl FrameDecoder {
    /// A decoder rejecting payloads longer than `max_frame` bytes.
    pub fn new(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_frame,
            poisoned: false,
        }
    }

    /// Appends newly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by one
        // frame plus one read chunk.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete payload, if the buffer holds one.
    ///
    /// `Ok(None)` means "truncated — need more bytes". After an error
    /// with [`FrameError::desyncs`]` == false` (a skipped corrupt
    /// frame), the decoder continues with the following frame; after a
    /// desyncing error every further call returns that same error.
    pub fn next(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.poisoned {
            return Err(FrameError::BadMagic { found: *b"??" });
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        if avail[0..2] != FRAME_MAGIC {
            self.poisoned = true;
            return Err(FrameError::BadMagic {
                found: [avail[0], avail[1]],
            });
        }
        if avail[2] != FRAME_VERSION {
            self.poisoned = true;
            return Err(FrameError::BadVersion { found: avail[2] });
        }
        let len = u32::from_be_bytes([avail[3], avail[4], avail[5], avail[6]]) as usize;
        if len > self.max_frame {
            self.poisoned = true;
            return Err(FrameError::Oversized {
                len,
                max: self.max_frame,
            });
        }
        if avail.len() < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let declared = u32::from_be_bytes([avail[7], avail[8], avail[9], avail[10]]);
        let payload = &avail[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        let ok = checksum(payload) == declared;
        let payload = ok.then(|| payload.to_vec());
        self.pos += FRAME_HEADER_LEN + len;
        match payload {
            Some(p) => Ok(Some(p)),
            None => Err(FrameError::Corrupt { len }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(payload: &[u8]) -> Vec<u8> {
        encode_frame(payload, 1 << 20).unwrap()
    }

    #[test]
    fn roundtrip_single_frame() {
        let mut dec = FrameDecoder::new(1 << 20);
        dec.extend(&framed(b"hello"));
        assert_eq!(dec.next().unwrap(), Some(b"hello".to_vec()));
        assert_eq!(dec.next().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn empty_payload_is_legal() {
        let mut dec = FrameDecoder::new(16);
        dec.extend(&framed(b""));
        assert_eq!(dec.next().unwrap(), Some(Vec::new()));
    }

    #[test]
    fn byte_at_a_time_chunking_is_invisible() {
        let stream: Vec<u8> = [framed(b"one"), framed(b"two"), framed(b"three")].concat();
        let mut dec = FrameDecoder::new(64);
        let mut out = Vec::new();
        for &b in &stream {
            dec.extend(&[b]);
            while let Some(p) = dec.next().unwrap() {
                out.push(p);
            }
        }
        assert_eq!(
            out,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
    }

    #[test]
    fn corrupt_payload_is_skipped_without_desync() {
        let mut bad = framed(b"corrupt-me");
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        let stream: Vec<u8> = [framed(b"first"), bad, framed(b"after")].concat();
        let mut dec = FrameDecoder::new(64);
        dec.extend(&stream);
        assert_eq!(dec.next().unwrap(), Some(b"first".to_vec()));
        let err = dec.next().unwrap_err();
        assert_eq!(err, FrameError::Corrupt { len: 10 });
        assert!(!err.desyncs(), "corrupt frames are recoverable");
        assert_eq!(dec.next().unwrap(), Some(b"after".to_vec()));
    }

    #[test]
    fn oversized_and_bad_magic_are_fatal() {
        let mut dec = FrameDecoder::new(4);
        dec.extend(&encode_frame(b"tiny!", 64).unwrap());
        let err = dec.next().unwrap_err();
        assert_eq!(err, FrameError::Oversized { len: 5, max: 4 });
        assert!(err.desyncs());
        // The decoder stays poisoned even across more (valid) input.
        dec.extend(&framed(b"ok"));
        assert!(dec.next().is_err());

        let mut dec = FrameDecoder::new(64);
        dec.extend(b"XXjunk-that-is-long-enough");
        assert!(dec.next().unwrap_err().desyncs());
    }

    #[test]
    fn sender_refuses_oversized_payloads() {
        assert_eq!(
            encode_frame(&[0u8; 9], 8),
            Err(FrameError::Oversized { len: 9, max: 8 })
        );
    }

    #[test]
    fn bad_version_is_fatal() {
        let mut frame = framed(b"x");
        frame[2] = FRAME_VERSION + 1;
        let mut dec = FrameDecoder::new(64);
        dec.extend(&frame);
        let err = dec.next().unwrap_err();
        assert_eq!(
            err,
            FrameError::BadVersion {
                found: FRAME_VERSION + 1
            }
        );
        assert!(err.desyncs());
    }
}
