//! Self-describing serialization for GesturePrint artifacts.
//!
//! The workspace's persisted state — model weights, the feature and
//! preprocessor configurations that must match at inference time, and
//! the evaluation reports that justify deployment — flows through this
//! crate. It replaces the vendored no-op `serde` markers with a small
//! working stack:
//!
//! * [`Value`] — a self-describing data model (null / bool / int /
//!   float / str / bytes / seq / map) every persisted struct lowers
//!   into,
//! * [`json`] — a compact JSON encoder and a *strict* decoder for that
//!   model: full string escapes, a nesting limit, duplicate-key
//!   rejection, and precise `f64` round-tripping (every finite float
//!   survives encode → decode bit-exactly),
//! * [`binary`] — a canonical CBOR-style byte backend over the same
//!   model: raw bytes instead of base64, varint integers, strict
//!   sorted-key maps; interchangeable with JSON for every value JSON
//!   can express,
//! * [`Encode`] / [`Decode`] — the traits persistence-shaped APIs
//!   accept. Implementations are hand-written per struct (the workspace
//!   has no proc-macro budget for a real derive) and live next to the
//!   type they serialise.
//!
//! Bytes have no native JSON representation; [`Value::Bytes`] encodes
//! as the single-key object `{"$bytes": "<base64>"}` and the decoder
//! maps that marker back. The key `$bytes` is therefore reserved: maps
//! with exactly that one key cannot be expressed (the encoder rejects
//! them rather than corrupt a decode).
//!
//! ```
//! use gp_codec::{json, Decode, DecodeError, Encode, Value};
//!
//! struct Point { x: f64, tags: Vec<String> }
//!
//! impl Encode for Point {
//!     fn encode(&self) -> Value {
//!         Value::record([("x", self.x.encode()), ("tags", self.tags.encode())])
//!     }
//! }
//! impl Decode for Point {
//!     fn decode(value: &Value) -> Result<Self, DecodeError> {
//!         Ok(Point { x: value.get("x")?, tags: value.get("tags")? })
//!     }
//! }
//!
//! let p = Point { x: 1.5, tags: vec!["a".into()] };
//! let text = json::to_json(&p.encode()).unwrap();
//! assert_eq!(text, r#"{"tags":["a"],"x":1.5}"#);
//! let back = Point::decode(&json::from_json(&text).unwrap()).unwrap();
//! assert_eq!(back.x, 1.5);
//! ```

pub mod binary;
pub mod framing;
pub mod json;
pub mod value;

pub use binary::{decode_from_binary, encode_to_binary, from_binary, to_binary};
pub use framing::{encode_frame, FrameDecoder, FrameError};
pub use json::{from_json, to_json, EncodeError, JsonError};
pub use value::{DecodeError, Value};

/// Lowers a type into the self-describing [`Value`] model.
pub trait Encode {
    /// The value representation of `self`.
    fn encode(&self) -> Value;
}

/// Rebuilds a type from a [`Value`].
pub trait Decode: Sized {
    /// Decodes `value` into `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when `value` has the wrong shape.
    fn decode(value: &Value) -> Result<Self, DecodeError>;
}

/// Encodes a value straight to its compact JSON text.
///
/// # Errors
///
/// Returns [`EncodeError`] for non-finite floats, reserved-key maps, or
/// nesting beyond the codec limit.
pub fn encode_to_json<T: Encode>(value: &T) -> Result<String, EncodeError> {
    json::to_json(&value.encode())
}

/// Decodes a type from JSON text.
///
/// # Errors
///
/// Returns the JSON parse error or the value-shape error as a string —
/// callers that need to distinguish parse from shape errors should call
/// [`json::from_json`] and [`Decode::decode`] separately.
pub fn decode_from_json<T: Decode>(text: &str) -> Result<T, DecodeError> {
    let value = json::from_json(text).map_err(|e| DecodeError::new(format!("bad JSON: {e}")))?;
    T::decode(&value)
}

// ---------------------------------------------------------------------
// Primitive and container implementations.
// ---------------------------------------------------------------------

impl Encode for Value {
    fn encode(&self) -> Value {
        self.clone()
    }
}

impl Decode for Value {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        Ok(value.clone())
    }
}

impl Encode for bool {
    fn encode(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Decode for bool {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        value.as_bool()
    }
}

impl Encode for i64 {
    fn encode(&self) -> Value {
        Value::Int(*self)
    }
}

impl Decode for i64 {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        value.as_i64()
    }
}

impl Encode for u32 {
    fn encode(&self) -> Value {
        Value::Int(i64::from(*self))
    }
}

impl Decode for u32 {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        u32::try_from(value.as_i64()?).map_err(|_| DecodeError::new("integer out of range for u32"))
    }
}

impl Encode for u64 {
    fn encode(&self) -> Value {
        // The full u64 range is legal (seeds are arbitrary u64 bit
        // patterns); values past i64::MAX ride as a decimal string so
        // encoding never panics and never loses bits.
        match i64::try_from(*self) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Decode for u64 {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        match value {
            Value::Str(s) => s
                .parse::<u64>()
                .map_err(|_| DecodeError::new(format!("'{s}' is not a u64"))),
            other => u64::try_from(other.as_i64()?)
                .map_err(|_| DecodeError::new("negative integer for u64")),
        }
    }
}

impl Encode for usize {
    fn encode(&self) -> Value {
        (*self as u64).encode()
    }
}

impl Decode for usize {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        usize::try_from(u64::decode(value)?)
            .map_err(|_| DecodeError::new("integer out of range for usize"))
    }
}

impl Encode for f64 {
    fn encode(&self) -> Value {
        Value::Float(*self)
    }
}

impl Decode for f64 {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        value.as_f64()
    }
}

impl Encode for f32 {
    fn encode(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Decode for f32 {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        let wide = value.as_f64()?;
        let narrow = wide as f32;
        if narrow.is_finite() || !wide.is_finite() {
            Ok(narrow)
        } else {
            Err(DecodeError::new("float out of range for f32"))
        }
    }
}

impl Encode for String {
    fn encode(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Decode for String {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        Ok(value.as_str()?.to_owned())
    }
}

impl Encode for str {
    fn encode(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self) -> Value {
        Value::Seq(self.iter().map(Encode::encode).collect())
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        value.as_seq()?.iter().map(T::decode).collect()
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self) -> Value {
        Value::Seq(self.iter().map(Encode::encode).collect())
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self) -> Value {
        match self {
            Some(v) => v.encode(),
            None => Value::Null,
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        match value {
            Value::Null => Ok(None),
            other => T::decode(other).map(Some),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self) -> Value {
        Value::Seq(vec![self.0.encode(), self.1.encode()])
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        let seq = value.as_seq()?;
        if seq.len() != 2 {
            return Err(DecodeError::new(format!(
                "expected a 2-element seq, found {} elements",
                seq.len()
            )));
        }
        Ok((A::decode(&seq[0])?, B::decode(&seq[1])?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(bool::decode(&true.encode()).unwrap(), true);
        assert_eq!(i64::decode(&(-7i64).encode()).unwrap(), -7);
        assert_eq!(usize::decode(&42usize.encode()).unwrap(), 42);
        assert_eq!(f64::decode(&1.25f64.encode()).unwrap(), 1.25);
        assert_eq!(f32::decode(&1.25f32.encode()).unwrap(), 1.25);
        assert_eq!(String::decode(&"hi".encode()).unwrap(), "hi");
        assert_eq!(
            Vec::<i64>::decode(&vec![1i64, 2].encode()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<i64>::decode(&Value::Null).unwrap(), None);
        assert_eq!(Option::<i64>::decode(&Value::Int(3)).unwrap(), Some(3));
        assert_eq!(
            <(f64, f64)>::decode(&(0.25, 0.75).encode()).unwrap(),
            (0.25, 0.75)
        );
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u32::decode(&Value::Int(-1)).is_err());
        assert!(u64::decode(&Value::Int(-1)).is_err());
        assert!(usize::decode(&Value::Int(-1)).is_err());
        assert!(bool::decode(&Value::Int(1)).is_err());
        assert!(f32::decode(&Value::Float(1e300)).is_err());
    }

    #[test]
    fn full_u64_range_roundtrips_without_panicking() {
        for v in [0u64, 7, i64::MAX as u64, i64::MAX as u64 + 1, u64::MAX] {
            let encoded = v.encode();
            assert_eq!(u64::decode(&encoded).unwrap(), v, "{v}");
            // The wide half rides as a string; the narrow half as an int.
            match encoded {
                Value::Int(_) => assert!(v <= i64::MAX as u64),
                Value::Str(_) => assert!(v > i64::MAX as u64),
                other => panic!("unexpected encoding {other:?}"),
            }
        }
        assert!(u64::decode(&Value::Str("not a number".into())).is_err());
        assert_eq!(
            usize::decode(&u64::MAX.encode()).unwrap(),
            u64::MAX as usize
        );
    }

    #[test]
    fn json_convenience_roundtrip() {
        let v = vec![1.5f64, -2.25];
        let text = encode_to_json(&v).unwrap();
        let back: Vec<f64> = decode_from_json(&text).unwrap();
        assert_eq!(back, v);
    }
}
