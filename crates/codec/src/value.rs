//! The self-describing value model and its typed accessors.

use crate::Decode;
use std::collections::BTreeMap;

/// A self-describing value: the common shape every persisted struct
/// lowers into before hitting a byte format.
///
/// Maps are ordered (`BTreeMap`), so encoding is deterministic: the
/// same value always produces the same JSON bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// IEEE-754 double. Non-finite values are representable in memory
    /// but rejected by the JSON encoder (JSON has no NaN/±inf).
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes; JSON-encoded as the `{"$bytes": "<base64>"}` marker.
    Bytes(Vec<u8>),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// String-keyed map with deterministic (sorted) iteration order.
    Map(BTreeMap<String, Value>),
}

/// A value had the wrong shape for the type being decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    message: String,
}

impl DecodeError {
    /// Builds an error carrying `message`.
    pub fn new(message: impl Into<String>) -> Self {
        DecodeError {
            message: message.into(),
        }
    }

    /// A "field `name` missing" error.
    pub fn missing_field(name: &str) -> Self {
        DecodeError::new(format!("missing field '{name}'"))
    }

    /// Prefixes the message with a field context, so nested decode
    /// errors read as a path (`field 'train': field 'feature': ...`).
    #[must_use]
    pub fn in_field(self, name: &str) -> Self {
        DecodeError::new(format!("field '{name}': {}", self.message))
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DecodeError {}

impl Value {
    /// A one-word name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
            Value::Seq(_) => "seq",
            Value::Map(_) => "map",
        }
    }

    fn expected(&self, what: &str) -> DecodeError {
        DecodeError::new(format!("expected {what}, found {}", self.kind()))
    }

    /// Builds a map value from `(field, value)` pairs — the encoder-side
    /// counterpart of [`Value::get`].
    ///
    /// # Panics
    ///
    /// Panics if two fields share a name (a bug in the calling `Encode`
    /// implementation, not a data condition).
    pub fn record<'a>(fields: impl IntoIterator<Item = (&'a str, Value)>) -> Value {
        let mut map = BTreeMap::new();
        for (name, value) in fields {
            let clash = map.insert(name.to_owned(), value);
            assert!(clash.is_none(), "duplicate record field '{name}'");
        }
        Value::Map(map)
    }

    /// The boolean payload.
    ///
    /// # Errors
    ///
    /// Errors when the value is not a [`Value::Bool`].
    pub fn as_bool(&self) -> Result<bool, DecodeError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(other.expected("bool")),
        }
    }

    /// The integer payload.
    ///
    /// # Errors
    ///
    /// Errors when the value is not a [`Value::Int`].
    pub fn as_i64(&self) -> Result<i64, DecodeError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(other.expected("int")),
        }
    }

    /// The float payload; integers widen losslessly (JSON `3` and `3.0`
    /// both decode into an `f64` field).
    ///
    /// # Errors
    ///
    /// Errors when the value is neither a float nor an int.
    pub fn as_f64(&self) -> Result<f64, DecodeError> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(other.expected("float")),
        }
    }

    /// The string payload.
    ///
    /// # Errors
    ///
    /// Errors when the value is not a [`Value::Str`].
    pub fn as_str(&self) -> Result<&str, DecodeError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(other.expected("str")),
        }
    }

    /// The bytes payload.
    ///
    /// # Errors
    ///
    /// Errors when the value is not a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Result<&[u8], DecodeError> {
        match self {
            Value::Bytes(b) => Ok(b),
            other => Err(other.expected("bytes")),
        }
    }

    /// The sequence payload.
    ///
    /// # Errors
    ///
    /// Errors when the value is not a [`Value::Seq`].
    pub fn as_seq(&self) -> Result<&[Value], DecodeError> {
        match self {
            Value::Seq(s) => Ok(s),
            other => Err(other.expected("seq")),
        }
    }

    /// The map payload.
    ///
    /// # Errors
    ///
    /// Errors when the value is not a [`Value::Map`].
    pub fn as_map(&self) -> Result<&BTreeMap<String, Value>, DecodeError> {
        match self {
            Value::Map(m) => Ok(m),
            other => Err(other.expected("map")),
        }
    }

    /// The raw value of map field `name`.
    ///
    /// # Errors
    ///
    /// Errors when `self` is not a map or the field is absent.
    pub fn field(&self, name: &str) -> Result<&Value, DecodeError> {
        self.as_map()?
            .get(name)
            .ok_or_else(|| DecodeError::missing_field(name))
    }

    /// Decodes map field `name` into `T` — the workhorse of hand-written
    /// [`Decode`] implementations. Errors carry the field name.
    ///
    /// # Errors
    ///
    /// Errors when `self` is not a map, the field is absent, or its
    /// value does not decode as `T`.
    pub fn get<T: Decode>(&self, name: &str) -> Result<T, DecodeError> {
        T::decode(self.field(name)?).map_err(|e| e.in_field(name))
    }

    /// Decodes map field `name`, defaulting when absent or null — for
    /// schema evolution: fields added in later revisions decode from
    /// older artifacts via their default.
    ///
    /// # Errors
    ///
    /// Errors when `self` is not a map or a *present* field fails to
    /// decode.
    pub fn get_or<T: Decode>(&self, name: &str, default: T) -> Result<T, DecodeError> {
        match self.as_map()?.get(name) {
            None | Some(Value::Null) => Ok(default),
            Some(v) => T::decode(v).map_err(|e| e.in_field(name)),
        }
    }
}

// ---------------------------------------------------------------------
// Base64 (standard alphabet, padded) — the bytes ↔ JSON bridge.
// ---------------------------------------------------------------------

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Byte → six-bit value reverse table (0xFF = not in the alphabet);
/// decoding a model artifact walks megabytes of base64, so the lookup
/// must be O(1) per character, not a scan of the alphabet.
const BASE64_REVERSE: [u8; 256] = {
    let mut table = [0xFFu8; 256];
    let mut i = 0;
    while i < 64 {
        table[BASE64_ALPHABET[i] as usize] = i as u8;
        i += 1;
    }
    table
};

/// Encodes bytes as standard padded base64.
pub fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        let idx = [(n >> 18) & 63, (n >> 12) & 63, (n >> 6) & 63, n & 63];
        for (i, &ix) in idx.iter().enumerate() {
            if i <= chunk.len() {
                out.push(BASE64_ALPHABET[ix as usize] as char);
            } else {
                out.push('=');
            }
        }
    }
    out
}

/// Decodes standard padded base64.
///
/// # Errors
///
/// Errors on characters outside the alphabet, bad padding, or a length
/// that is not a multiple of four.
pub fn base64_decode(text: &str) -> Result<Vec<u8>, DecodeError> {
    let bytes = text.as_bytes();
    if bytes.len() % 4 != 0 {
        return Err(DecodeError::new("base64 length not a multiple of 4"));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (chunk_idx, chunk) in bytes.chunks(4).enumerate() {
        let is_last = (chunk_idx + 1) * 4 == bytes.len();
        let mut n = 0u32;
        let mut pad = 0usize;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' {
                // Padding only in the last chunk's final positions.
                if !is_last || i < 2 || chunk[i..].iter().any(|&t| t != b'=') {
                    return Err(DecodeError::new("misplaced base64 padding"));
                }
                pad += 1;
                0
            } else {
                match BASE64_REVERSE[c as usize] {
                    0xFF => return Err(DecodeError::new("invalid base64 character")),
                    v => u32::from(v),
                }
            };
            n = (n << 6) | v;
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_get() {
        let v = Value::record([("a", Value::Int(1)), ("b", Value::Str("x".into()))]);
        assert_eq!(v.get::<i64>("a").unwrap(), 1);
        assert_eq!(v.get::<String>("b").unwrap(), "x");
        let err = v.get::<i64>("missing").unwrap_err();
        assert!(err.to_string().contains("missing"));
        let err = v.get::<i64>("b").unwrap_err();
        assert!(err.to_string().contains("field 'b'"), "{err}");
    }

    #[test]
    fn get_or_defaults_only_when_absent_or_null() {
        let v = Value::record([("present", Value::Int(5)), ("nulled", Value::Null)]);
        assert_eq!(v.get_or("present", 0i64).unwrap(), 5);
        assert_eq!(v.get_or("nulled", 7i64).unwrap(), 7);
        assert_eq!(v.get_or("absent", 9i64).unwrap(), 9);
        assert!(v.get_or("present", String::new()).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate record field")]
    fn record_rejects_duplicate_fields() {
        Value::record([("a", Value::Int(1)), ("a", Value::Int(2))]);
    }

    #[test]
    fn ints_widen_to_floats_but_not_conversely() {
        assert_eq!(Value::Int(3).as_f64().unwrap(), 3.0);
        assert!(Value::Float(3.0).as_i64().is_err());
    }

    #[test]
    fn base64_known_vectors() {
        // RFC 4648 test vectors.
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        for v in [&b""[..], b"f", b"fo", b"foo", b"foob", b"fooba", b"foobar"] {
            assert_eq!(base64_decode(&base64_encode(v)).unwrap(), v);
        }
    }

    #[test]
    fn base64_rejects_garbage() {
        assert!(base64_decode("Zg=").is_err(), "bad length");
        assert!(base64_decode("Z!==").is_err(), "bad alphabet");
        assert!(base64_decode("=g==").is_err(), "padding first");
        assert!(base64_decode("Zg=A").is_err(), "padding mid-chunk");
        assert!(base64_decode("Zg==Zg==").is_err(), "padding before end");
    }

    #[test]
    fn base64_roundtrips_binary() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
    }
}
