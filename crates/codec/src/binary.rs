//! Compact binary encoder/decoder for [`Value`] — the byte backend
//! behind binary artifacts.
//!
//! JSON carries model weight streams as base64 (`{"$bytes": ...}`),
//! a ~33% size tax on what is by far the largest payload in any model
//! artifact. This module is a CBOR-style alternative over the *same*
//! value model: one tag byte per value, LEB128 varints for lengths and
//! integers, raw bytes for [`Value::Bytes`], IEEE-754 bits for floats.
//! The two backends are interchangeable — any `Value` a JSON document
//! can express round-trips identically through either — and the binary
//! form additionally admits non-finite floats and the reserved
//! `$bytes`-shaped map JSON cannot carry.
//!
//! The encoding is **canonical**: map keys are written in sorted order
//! (the `BTreeMap` order) and the decoder *requires* strictly ascending
//! keys, so equal values produce identical bytes and
//! `to_binary(from_binary(b)) == b` for every accepted input. The
//! decoder is strict in the same way the JSON decoder is: it bounds
//! nesting at [`crate::json::MAX_DEPTH`], validates UTF-8, rejects
//! duplicate keys, and refuses trailing content.
//!
//! Wire grammar (all multi-byte integers little-endian):
//!
//! ```text
//! value := 0x00                        # null
//!        | 0x01 | 0x02                 # false | true
//!        | 0x03 zigzag-varint          # int
//!        | 0x04 f64-le-bits            # float
//!        | 0x05 varint-len utf8        # str
//!        | 0x06 varint-len raw         # bytes
//!        | 0x07 varint-count value*    # seq
//!        | 0x08 varint-count (key value)*   # map
//! key   := varint(len << 1) utf8       # literal field name
//!        | varint(idx << 1 | 1)        # KEY_DICT reference
//! ```
//!
//! Map keys use a packed-key extension (in the spirit of CBOR's
//! packed/stringref extensions): field names in the static [`KEY_DICT`]
//! table encode as a one-byte index reference instead of inline text.
//! Canonical form requires the reference whenever the name is in the
//! table, and the table is **append-only** — positions are part of the
//! wire format.

use crate::json::{EncodeError, MAX_DEPTH};
use crate::value::{DecodeError, Value};
use std::collections::BTreeMap;

/// Well-known field names, encoded in maps as one-byte dictionary
/// references. **Append-only**: an entry's position is baked into every
/// binary artifact ever written — never reorder or remove, only push.
pub const KEY_DICT: &[&str] = &[
    "schema_version",
    "kind",
    "created_rev",
    "payload",
    "weights",
    "feature",
    "classes",
    "encode_seed",
    "mode",
    "gestures",
    "users",
    "gesture_model",
    "identifiers",
    "model",
    "epochs",
    "learning_rate",
    "batch_size",
    "augment",
    "seed",
    "num_points",
    "profile_shape",
    "doppler_span",
    "range_span",
    "max_frames",
    "threshold",
    "entries",
    "user",
    "centroid",
    "count",
    "dim",
    "version",
    "name",
    "value",
    "values",
    "scenario",
    "points",
];

fn dict_index(key: &str) -> Option<usize> {
    KEY_DICT.iter().position(|&k| k == key)
}

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_INT: u8 = 0x03;
const TAG_FLOAT: u8 = 0x04;
const TAG_STR: u8 = 0x05;
const TAG_BYTES: u8 = 0x06;
const TAG_SEQ: u8 = 0x07;
const TAG_MAP: u8 = 0x08;

/// Serialises a value into the canonical binary form.
///
/// # Errors
///
/// Returns [`EncodeError::TooDeep`] when nesting exceeds the codec
/// limit; unlike JSON, every other value (non-finite floats, maps of
/// any shape) has a binary form.
pub fn to_binary(value: &Value) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::new();
    write_value(value, 0, &mut out)?;
    Ok(out)
}

/// Encodes a type straight to canonical binary bytes.
///
/// # Errors
///
/// See [`to_binary`].
pub fn encode_to_binary<T: crate::Encode>(value: &T) -> Result<Vec<u8>, EncodeError> {
    to_binary(&value.encode())
}

/// Parses canonical binary bytes into a [`Value`], strictly.
///
/// # Errors
///
/// Errors on truncated input, trailing content, invalid tags or UTF-8,
/// non-canonical varints or map key order, or nesting past the limit.
pub fn from_binary(bytes: &[u8]) -> Result<Value, DecodeError> {
    let mut reader = Reader { bytes, pos: 0 };
    let value = reader.read_value(0)?;
    if reader.pos != bytes.len() {
        return Err(DecodeError::new(format!(
            "trailing content after binary value at byte {}",
            reader.pos
        )));
    }
    Ok(value)
}

/// Decodes a type from canonical binary bytes.
///
/// # Errors
///
/// Returns the binary parse error or the value-shape error.
pub fn decode_from_binary<T: crate::Decode>(bytes: &[u8]) -> Result<T, DecodeError> {
    T::decode(&from_binary(bytes)?)
}

fn write_value(value: &Value, depth: usize, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    if depth > MAX_DEPTH {
        return Err(EncodeError::TooDeep);
    }
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            write_varint(zigzag(*i), out);
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            write_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            write_varint(b.len() as u64, out);
            out.extend_from_slice(b);
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            write_varint(items.len() as u64, out);
            for item in items {
                write_value(item, depth + 1, out)?;
            }
        }
        Value::Map(map) => {
            out.push(TAG_MAP);
            write_varint(map.len() as u64, out);
            // BTreeMap iteration is sorted, which IS the canonical order.
            for (key, item) in map {
                match dict_index(key) {
                    Some(idx) => write_varint((idx as u64) << 1 | 1, out),
                    None => {
                        write_varint((key.len() as u64) << 1, out);
                        out.extend_from_slice(key.as_bytes());
                    }
                }
                write_value(item, depth + 1, out)?;
            }
        }
    }
    Ok(())
}

fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn err(&self, message: impl std::fmt::Display) -> DecodeError {
        DecodeError::new(format!("{message} at byte {}", self.pos))
    }

    fn take(&mut self, n: usize) -> Result<&[u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.err("truncated binary value"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn read_varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        for shift in 0..10 {
            let byte = self.take(1)?[0];
            let payload = u64::from(byte & 0x7F);
            // The 10th byte may only carry the single remaining bit.
            if shift == 9 && payload > 1 {
                return Err(self.err("varint overflows u64"));
            }
            v |= payload << (shift * 7);
            if byte & 0x80 == 0 {
                // Canonical form: no zero continuation tail.
                if byte == 0 && shift > 0 {
                    return Err(self.err("non-canonical varint"));
                }
                return Ok(v);
            }
        }
        Err(self.err("varint longer than 10 bytes"))
    }

    fn read_len(&mut self) -> Result<usize, DecodeError> {
        let len = self.read_varint()?;
        // A declared length can never exceed the bytes actually left, so
        // this also caps allocation before any `with_capacity`.
        if len > (self.bytes.len() - self.pos) as u64 {
            return Err(self.err(format!("declared length {len} exceeds input")));
        }
        Ok(len as usize)
    }

    fn read_string(&mut self) -> Result<String, DecodeError> {
        let len = self.read_len()?;
        let raw = self.take(len)?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| self.err("invalid UTF-8 in string"))
    }

    fn read_key(&mut self) -> Result<String, DecodeError> {
        let n = self.read_varint()?;
        if n & 1 == 1 {
            let idx = (n >> 1) as usize;
            return KEY_DICT
                .get(idx)
                .map(|&k| k.to_owned())
                .ok_or_else(|| self.err(format!("key dictionary index {idx} out of range")));
        }
        let len = n >> 1;
        if len > (self.bytes.len() - self.pos) as u64 {
            return Err(self.err(format!("declared key length {len} exceeds input")));
        }
        let raw = self.take(len as usize)?;
        let key = std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| self.err("invalid UTF-8 in map key"))?;
        // Canonical form: dictionary names must ride as references.
        if dict_index(&key).is_some() {
            return Err(self.err(format!("non-canonical literal key '{key}'")));
        }
        Ok(key)
    }

    fn read_value(&mut self, depth: usize) -> Result<Value, DecodeError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting exceeds {MAX_DEPTH}")));
        }
        let tag = self.take(1)?[0];
        match tag {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_INT => Ok(Value::Int(unzigzag(self.read_varint()?))),
            TAG_FLOAT => {
                let raw = self.take(8)?;
                let bits = u64::from_le_bytes(raw.try_into().expect("8 bytes"));
                Ok(Value::Float(f64::from_bits(bits)))
            }
            TAG_STR => Ok(Value::Str(self.read_string()?)),
            TAG_BYTES => {
                let len = self.read_len()?;
                Ok(Value::Bytes(self.take(len)?.to_vec()))
            }
            TAG_SEQ => {
                let count = self.read_len()?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.read_value(depth + 1)?);
                }
                Ok(Value::Seq(items))
            }
            TAG_MAP => {
                let count = self.read_len()?;
                let mut map = BTreeMap::new();
                let mut last_key: Option<String> = None;
                for _ in 0..count {
                    let key = self.read_key()?;
                    if let Some(prev) = &last_key {
                        if *prev >= key {
                            return Err(self.err(format!(
                                "map keys out of canonical order ('{prev}' then '{key}')"
                            )));
                        }
                    }
                    let value = self.read_value(depth + 1)?;
                    last_key = Some(key.clone());
                    map.insert(key, value);
                }
                Ok(Value::Map(map))
            }
            other => Err(self.err(format!("unknown value tag 0x{other:02X}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn roundtrip(v: Value) -> Value {
        from_binary(&to_binary(&v).expect("encode")).expect("decode")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(1e-300),
            Value::Float(f64::MAX),
            Value::Str(String::new()),
            Value::Str("hello λ 🦀 \"quoted\"\n".into()),
            Value::Bytes(vec![]),
            Value::Bytes((0..=255).collect()),
            Value::Seq(vec![Value::Int(1), Value::Null]),
            Value::record([("a", Value::Int(1)), ("b", Value::Str("x".into()))]),
        ] {
            assert_eq!(roundtrip(v.clone()), v, "{v:?}");
        }
    }

    #[test]
    fn binary_admits_what_json_cannot() {
        // Non-finite floats round-trip bit-exactly.
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let back = roundtrip(Value::Float(f));
            match back {
                Value::Float(b) => assert_eq!(b.to_bits(), f.to_bits()),
                other => panic!("expected float, got {other:?}"),
            }
        }
        // The $bytes-shaped map JSON reserves is a plain map here.
        let reserved = Value::record([(json::BYTES_KEY, Value::Str("Zm9v".into()))]);
        assert_eq!(roundtrip(reserved.clone()), reserved);
    }

    #[test]
    fn encoding_is_canonical() {
        let v = Value::record([
            ("weights", Value::Bytes(vec![7u8; 64])),
            ("kind", Value::Str("m".into())),
            ("n", Value::Int(-3)),
        ]);
        let bytes = to_binary(&v).unwrap();
        assert_eq!(to_binary(&from_binary(&bytes).unwrap()).unwrap(), bytes);
    }

    #[test]
    fn zigzag_varint_edges() {
        for i in [0i64, 1, -1, 63, -64, 64, -65, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(i)), i, "{i}");
            assert_eq!(roundtrip(Value::Int(i)), Value::Int(i));
        }
        // Small magnitudes stay small on the wire.
        assert_eq!(to_binary(&Value::Int(5)).unwrap().len(), 2);
        assert_eq!(to_binary(&Value::Int(-5)).unwrap().len(), 2);
    }

    #[test]
    fn bytes_carry_no_base64_tax() {
        let payload = Value::Bytes(vec![0xAB; 3000]);
        let binary = to_binary(&payload).unwrap();
        let json_text = json::to_json(&payload).unwrap();
        assert!(binary.len() < 3000 + 8);
        assert!(json_text.len() > 4000, "base64 tax: {}", json_text.len());
    }

    #[test]
    fn strictness() {
        // Truncations and garbage.
        for bad in [
            &[][..],
            &[0x03],             // int tag, no varint
            &[0x04, 0, 0],       // float tag, short payload
            &[0x05, 5, b'a'],    // declared 5, got 1
            &[0x06, 0xFF, 0xFF], // truncated varint for a length
            &[0x09],             // unknown tag
            &[0x00, 0x00],       // trailing content
            &[0x05, 1, 0xFF],    // invalid UTF-8
            &[0x03, 0x80],       // unterminated varint
            &[0x03, 0x80, 0x00], // non-canonical varint (zero tail)
            &[0x07, 2, 0x00],    // seq declares 2, holds 1
            &[0x08, 1, 1, b'a'], // map entry missing its value
        ] {
            assert!(from_binary(bad).is_err(), "accepted {bad:?}");
        }
        // Varint overflowing u64 (10th byte carries more than one bit).
        let overflow = [
            0x03, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02,
        ];
        assert!(from_binary(&overflow).is_err());
    }

    #[test]
    fn map_key_order_is_enforced() {
        // Hand-build b-before-a: tag, count 2, then entries (literal
        // keys carry their length shifted left one bit).
        let mut bytes = vec![TAG_MAP, 2];
        bytes.extend([2, b'b', TAG_NULL]);
        bytes.extend([2, b'a', TAG_NULL]);
        let err = from_binary(&bytes).unwrap_err();
        assert!(err.to_string().contains("canonical order"), "{err}");
        // Duplicate keys are out of order by definition.
        let mut dup = vec![TAG_MAP, 2];
        dup.extend([2, b'a', TAG_NULL]);
        dup.extend([2, b'a', TAG_NULL]);
        assert!(from_binary(&dup).is_err());
    }

    #[test]
    fn well_known_keys_pack_to_one_byte() {
        let v = Value::record([("kind", Value::Null)]);
        let bytes = to_binary(&v).unwrap();
        // tag, count, dict ref (index of "kind" << 1 | 1), null.
        let idx = KEY_DICT.iter().position(|&k| k == "kind").unwrap() as u8;
        assert_eq!(bytes, vec![TAG_MAP, 1, (idx << 1) | 1, TAG_NULL]);
        assert_eq!(from_binary(&bytes).unwrap(), v);
        // The literal spelling of a dictionary name is non-canonical.
        let mut literal = vec![TAG_MAP, 1, (4u8) << 1];
        literal.extend(b"kind");
        literal.push(TAG_NULL);
        let err = from_binary(&literal).unwrap_err();
        assert!(err.to_string().contains("non-canonical"), "{err}");
        // Out-of-range dictionary references fail cleanly.
        let bad_ref = vec![TAG_MAP, 1, 0xFF, 0x01, TAG_NULL];
        assert!(from_binary(&bad_ref).is_err());
        // Empty literal keys still work (len 0 << 1 = 0).
        let empty = Value::record([("", Value::Int(1))]);
        assert_eq!(roundtrip(empty.clone()), empty);
    }

    #[test]
    fn nesting_limit_enforced_both_ways() {
        let mut deep = Value::Int(1);
        for _ in 0..=MAX_DEPTH {
            deep = Value::Seq(vec![deep]);
        }
        assert_eq!(to_binary(&deep), Err(EncodeError::TooDeep));

        let mut bytes = Vec::new();
        for _ in 0..MAX_DEPTH + 2 {
            bytes.extend([TAG_SEQ, 1]);
        }
        bytes.push(TAG_NULL);
        assert!(from_binary(&bytes).is_err());

        let mut ok = Value::Int(1);
        for _ in 0..MAX_DEPTH {
            ok = Value::Seq(vec![ok]);
        }
        assert_eq!(roundtrip(ok.clone()), ok);
    }

    #[test]
    fn convenience_helpers_roundtrip() {
        let v = vec![1.5f64, -2.25];
        let bytes = encode_to_binary(&v).unwrap();
        let back: Vec<f64> = decode_from_binary(&bytes).unwrap();
        assert_eq!(back, v);
    }
}
