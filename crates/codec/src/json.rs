//! Compact JSON encoder and strict decoder for [`Value`].
//!
//! The encoder emits minimal JSON (no whitespace, sorted map keys), so
//! equal values produce byte-identical text. The decoder is *strict*:
//! it enforces the JSON grammar (no trailing commas, no leading zeros,
//! no unescaped control characters), rejects duplicate map keys, bounds
//! nesting at [`MAX_DEPTH`], and refuses trailing content.
//!
//! Floats round-trip precisely: every finite `f64` is printed with
//! Rust's shortest-round-trip formatting (plus a `.0` when the text
//! would otherwise look like an integer) and parses back bit-exactly.
//! JSON has no NaN/±inf, so the encoder rejects non-finite floats with
//! [`EncodeError::NonFiniteFloat`] instead of silently corrupting them.

use crate::value::{base64_decode, base64_encode, Value};
use std::collections::BTreeMap;

/// Maximum nesting depth both encoder and decoder accept.
pub const MAX_DEPTH: usize = 128;

/// The JSON object key marking a [`Value::Bytes`] payload.
pub const BYTES_KEY: &str = "$bytes";

/// Errors from [`to_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A float was NaN or ±inf; JSON cannot represent those.
    NonFiniteFloat,
    /// Value nesting exceeded [`MAX_DEPTH`].
    TooDeep,
    /// A map consisted of exactly the reserved [`BYTES_KEY`] key with a
    /// string value, which would decode as bytes instead.
    ReservedKey,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::NonFiniteFloat => write!(f, "non-finite float has no JSON form"),
            EncodeError::TooDeep => write!(f, "value nesting exceeds {MAX_DEPTH}"),
            EncodeError::ReservedKey => {
                write!(f, "map {{\"{BYTES_KEY}\": <str>}} is reserved for bytes")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Errors from [`from_json`], with the byte offset they occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Serialises a value as compact JSON.
///
/// # Errors
///
/// See [`EncodeError`].
pub fn to_json(value: &Value) -> Result<String, EncodeError> {
    let mut out = String::new();
    write_value(value, 0, &mut out)?;
    Ok(out)
}

fn write_value(value: &Value, depth: usize, out: &mut String) -> Result<(), EncodeError> {
    if depth > MAX_DEPTH {
        return Err(EncodeError::TooDeep);
    }
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(EncodeError::NonFiniteFloat);
            }
            // Rust's `{}` is the shortest decimal that round-trips the
            // exact f64; keep a float marker so the decoder does not
            // read `1.0` back as the int `1`.
            let text = f.to_string();
            out.push_str(&text);
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Bytes(b) => {
            out.push_str("{\"");
            out.push_str(BYTES_KEY);
            out.push_str("\":\"");
            out.push_str(&base64_encode(b));
            out.push_str("\"}");
        }
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, depth + 1, out)?;
            }
            out.push(']');
        }
        Value::Map(map) => {
            if map.len() == 1 {
                if let Some(Value::Str(_)) = map.get(BYTES_KEY) {
                    return Err(EncodeError::ReservedKey);
                }
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, depth + 1, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`], strictly.
///
/// # Errors
///
/// See [`JsonError`]; the offset points at the offending byte.
pub fn from_json(text: &str) -> Result<Value, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing content after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting exceeds {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(depth),
            Some(b'{') => self.parse_map(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn parse_seq(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_map(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(map));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            if map.insert(key, value).is_some() {
                return Err(JsonError {
                    message: "duplicate map key".into(),
                    offset: key_offset,
                });
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
        // The bytes marker: exactly {"$bytes": "<base64>"}.
        if map.len() == 1 {
            if let Some(Value::Str(b64)) = map.get(BYTES_KEY) {
                let bytes = base64_decode(b64)
                    .map_err(|e| self.err(format!("bad {BYTES_KEY} payload: {e}")))?;
                return Ok(Value::Bytes(bytes));
            }
        }
        Ok(Value::Map(map))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let n = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(n).ok_or_else(|| self.err("bad surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                c if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                _ => {
                    // Consume one UTF-8 encoded char (input is &str, so
                    // the encoding is already valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).expect("valid utf8"));
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut n = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            n = (n << 4) | d;
            self.pos += 1;
        }
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0 | [1-9][0-9]* (strict: no leading zeros).
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            // Magnitude beyond i64: fall through to the float path (the
            // standard JSON reading of big integer literals).
        }
        let f: f64 = text
            .parse()
            .map_err(|_| self.err("malformed number literal"))?;
        if f.is_finite() {
            Ok(Value::Float(f))
        } else {
            Err(self.err("number overflows f64"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) -> Value {
        from_json(&to_json(&v).expect("encode")).expect("decode")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(0.0),
            Value::Float(-1.5),
            Value::Float(1e-300),
            Value::Float(f64::MAX),
            Value::Float(f64::MIN_POSITIVE),
            Value::Str(String::new()),
            Value::Str("hello \"quoted\" \\ / \n\t\r\u{8}\u{c}\u{1} λ 🦀".into()),
            Value::Bytes(vec![]),
            Value::Bytes((0..=255).collect()),
        ] {
            assert_eq!(roundtrip(v.clone()), v, "{v:?}");
        }
    }

    #[test]
    fn whole_floats_keep_their_floatness() {
        assert_eq!(to_json(&Value::Float(1.0)).unwrap(), "1.0");
        assert_eq!(to_json(&Value::Float(-0.0)).unwrap(), "-0.0");
        assert_eq!(roundtrip(Value::Float(3.0)), Value::Float(3.0));
        assert_eq!(from_json("3").unwrap(), Value::Int(3));
        assert_eq!(from_json("3.0").unwrap(), Value::Float(3.0));
        assert_eq!(from_json("3e2").unwrap(), Value::Float(300.0));
    }

    #[test]
    fn compact_and_deterministic() {
        let v = Value::record([
            ("b", Value::Seq(vec![Value::Int(1), Value::Null])),
            ("a", Value::Float(2.5)),
        ]);
        assert_eq!(to_json(&v).unwrap(), r#"{"a":2.5,"b":[1,null]}"#);
    }

    #[test]
    fn nonfinite_floats_rejected() {
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                to_json(&Value::Float(f)),
                Err(EncodeError::NonFiniteFloat),
                "{f}"
            );
        }
    }

    #[test]
    fn bytes_marker_is_reserved() {
        let fake = Value::Map(
            [(BYTES_KEY.to_string(), Value::Str("Zm9v".into()))]
                .into_iter()
                .collect(),
        );
        assert_eq!(to_json(&fake), Err(EncodeError::ReservedKey));
        // A map with $bytes among *other* keys is fine and stays a map.
        let mixed = Value::record([(BYTES_KEY, Value::Str("x".into())), ("k", Value::Int(1))]);
        assert_eq!(roundtrip(mixed.clone()), mixed);
        // A $bytes key with a non-string value also stays a map.
        let nonstr = Value::record([(BYTES_KEY, Value::Int(3))]);
        assert_eq!(roundtrip(nonstr.clone()), nonstr);
    }

    #[test]
    fn bad_bytes_payload_is_an_error() {
        assert!(from_json(r#"{"$bytes":"!!!"}"#).is_err());
    }

    #[test]
    fn decoder_accepts_whitespace() {
        let v = from_json(" {\n  \"a\" : [ 1 , 2 ] ,\t\"b\" : null\r\n} ").unwrap();
        assert_eq!(
            v,
            Value::record([
                ("a", Value::Seq(vec![Value::Int(1), Value::Int(2)])),
                ("b", Value::Null),
            ])
        );
    }

    #[test]
    fn strictness() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{a:1}",
            "01",
            "-",
            "1.",
            ".5",
            "1e",
            "+1",
            "nul",
            "truex",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"ctrl \u{1} char\"",
            "\"\\ud800\"",
            "\"\\udc00\"",
            "\"\\ud800\\u0041\"",
            "1 2",
            "[1] []",
            "{\"a\":1,\"a\":2}",
            "1e999",
        ] {
            assert!(from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            from_json("\"\\ud83e\\udd80\"").unwrap(),
            Value::Str("🦀".into())
        );
    }

    #[test]
    fn nesting_limit_enforced_both_ways() {
        let mut deep = Value::Int(1);
        for _ in 0..=MAX_DEPTH {
            deep = Value::Seq(vec![deep]);
        }
        assert_eq!(to_json(&deep), Err(EncodeError::TooDeep));

        let text = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 2),
            "]".repeat(MAX_DEPTH + 2)
        );
        assert!(from_json(&text).is_err());

        // Exactly at the limit is fine.
        let mut ok = Value::Int(1);
        for _ in 0..MAX_DEPTH {
            ok = Value::Seq(vec![ok]);
        }
        let text = to_json(&ok).unwrap();
        assert_eq!(from_json(&text).unwrap(), ok);
    }

    #[test]
    fn big_integer_literals_become_floats() {
        assert_eq!(
            from_json("123456789012345678901234567890").unwrap(),
            Value::Float(123456789012345678901234567890.0)
        );
    }
}
