//! Property tests for the wire framing: arbitrary message sequences
//! survive arbitrary chunk splits; corrupt payloads are rejected
//! *without* panicking or desyncing the stream; header-level damage and
//! oversized declarations fail closed (fatal, never a panic); raw
//! garbage never panics the decoder.

use gp_codec::framing::{checksum, FRAME_HEADER_LEN};
use gp_codec::{encode_frame, FrameDecoder, FrameError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MAX_FRAME: usize = 256;

fn gen_payload(rng: &mut StdRng) -> Vec<u8> {
    let n = rng.gen_range(0usize..48);
    (0..n).map(|_| rng.gen_range(0u32..256) as u8).collect()
}

/// Feeds `stream` into `dec` in random chunks, collecting every decoded
/// payload and recoverable error.
fn drive(
    dec: &mut FrameDecoder,
    stream: &[u8],
    rng: &mut StdRng,
) -> (Vec<Vec<u8>>, Vec<FrameError>) {
    let mut out = Vec::new();
    let mut errs = Vec::new();
    let mut pos = 0;
    while pos < stream.len() {
        let take = rng.gen_range(1usize..16).min(stream.len() - pos);
        dec.extend(&stream[pos..pos + take]);
        pos += take;
        loop {
            match dec.next() {
                Ok(Some(p)) => out.push(p),
                Ok(None) => break,
                Err(e) if e.desyncs() => {
                    errs.push(e);
                    return (out, errs);
                }
                Err(e) => errs.push(e),
            }
        }
    }
    (out, errs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arbitrary_chunking_roundtrips_every_message(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let messages: Vec<Vec<u8>> = (0..rng.gen_range(1usize..8))
            .map(|_| gen_payload(&mut rng))
            .collect();
        let stream: Vec<u8> = messages
            .iter()
            .map(|m| encode_frame(m, MAX_FRAME).unwrap())
            .collect::<Vec<_>>()
            .concat();
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let (out, errs) = drive(&mut dec, &stream, &mut rng);
        prop_assert!(errs.is_empty(), "clean stream produced {errs:?}");
        prop_assert_eq!(out, messages);
        prop_assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn corrupt_payload_never_desyncs_the_following_frames(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let before = gen_payload(&mut rng);
        // Non-empty victim so there is a payload byte to flip.
        let mut victim = gen_payload(&mut rng);
        victim.push(rng.gen_range(0u32..256) as u8);
        let after = gen_payload(&mut rng);

        let mut corrupted = encode_frame(&victim, MAX_FRAME).unwrap();
        let idx = FRAME_HEADER_LEN + rng.gen_range(0usize..victim.len());
        let flip = (rng.gen_range(1u32..256)) as u8; // non-zero: guaranteed change
        corrupted[idx] ^= flip;
        // The flip must actually break the checksum (FNV-1a is not
        // collision-free in principle; in practice a single-byte xor
        // always changes it — assert so a silent pass can't hide).
        prop_assert_ne!(checksum(&corrupted[FRAME_HEADER_LEN..]), checksum(&victim));

        let stream: Vec<u8> = [
            encode_frame(&before, MAX_FRAME).unwrap(),
            corrupted,
            encode_frame(&after, MAX_FRAME).unwrap(),
        ]
        .concat();
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let (out, errs) = drive(&mut dec, &stream, &mut rng);
        prop_assert_eq!(out, vec![before, after]);
        prop_assert_eq!(errs, vec![FrameError::Corrupt { len: victim.len() }]);
    }

    #[test]
    fn header_damage_fails_closed_without_panicking(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let payload = gen_payload(&mut rng);
        let mut frame = encode_frame(&payload, MAX_FRAME).unwrap();
        // Damage one of the first 7 bytes (magic, version or length).
        let idx = rng.gen_range(0usize..7);
        frame[idx] ^= (rng.gen_range(1u32..256)) as u8;
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let (out, _errs) = drive(&mut dec, &frame, &mut rng);
        // A length flip can only shrink-or-grow the declared payload:
        // grown past the cap → Oversized (fatal); shrunk → the checksum
        // (over the wrong slice) almost surely fails → Corrupt; magic or
        // version flips are fatal. In *no* case may the damaged frame
        // decode as the original payload, and nothing may panic.
        prop_assert!(!out.contains(&payload), "damaged header decoded the original");
    }

    #[test]
    fn oversized_declarations_are_fatal(extra in 1usize..1024) {
        let payload = vec![0xABu8; MAX_FRAME + extra];
        // Sender refuses…
        prop_assert_eq!(
            encode_frame(&payload, MAX_FRAME),
            Err(FrameError::Oversized { len: MAX_FRAME + extra, max: MAX_FRAME })
        );
        // …and a decoder receiving one (framed under a laxer cap) drops
        // the connection instead of trusting the length.
        let frame = encode_frame(&payload, 1 << 20).unwrap();
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.extend(&frame);
        let err = dec.next().unwrap_err();
        prop_assert!(err.desyncs());
        prop_assert_eq!(err, FrameError::Oversized { len: MAX_FRAME + extra, max: MAX_FRAME });
    }

    #[test]
    fn raw_garbage_never_panics(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0usize..512);
        let garbage: Vec<u8> = (0..n).map(|_| rng.gen_range(0u32..256) as u8).collect();
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let (_out, _errs) = drive(&mut dec, &garbage, &mut rng);
        // Reaching here without a panic is the property; drive() stops
        // at the first fatal error, which garbage usually hits fast.
    }
}
