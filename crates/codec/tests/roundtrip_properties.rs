//! Property tests: arbitrary `Value` → JSON → `Value` is the identity
//! for every JSON-representable value, the binary backend agrees with
//! JSON on their shared domain, and the documented policies
//! (non-finite floats, nesting limits, reserved bytes key) hold.

use gp_codec::binary::{from_binary, to_binary};
use gp_codec::json::{from_json, to_json, EncodeError, MAX_DEPTH};
use gp_codec::Value;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Draws one arbitrary value: scalars biased over containers so trees
/// stay small, strings biased toward escape-heavy characters, depth
/// capped well inside the codec limit.
fn gen_value(rng: &mut StdRng, depth: usize) -> Value {
    let roll = if depth >= 5 {
        rng.gen_range(0usize..6) // scalars only at the depth cap
    } else {
        rng.gen_range(0usize..9)
    };
    match roll {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.gen_range(i64::MIN..i64::MAX)),
        3 => {
            // Mix plain magnitudes with bit-pattern floats so subnormals
            // and extreme exponents hit the round-trip check too.
            if rng.gen_bool(0.5) {
                Value::Float(rng.gen_range(-1e12f64..1e12))
            } else {
                let f = f64::from_bits(rng.gen_range(0u64..u64::MAX));
                Value::Float(if f.is_finite() { f } else { 0.5 })
            }
        }
        4 => Value::Str(gen_string(rng)),
        5 => Value::Bytes(
            (0..rng.gen_range(0usize..24))
                .map(|_| rng.gen_range(0u32..256) as u8)
                .collect(),
        ),
        6 => Value::Seq(
            (0..rng.gen_range(0usize..5))
                .map(|_| gen_value(rng, depth + 1))
                .collect(),
        ),
        _ => {
            let mut map = BTreeMap::new();
            for _ in 0..rng.gen_range(0usize..5) {
                map.insert(gen_string(rng), gen_value(rng, depth + 1));
            }
            // `{"$bytes": <str>}` is the reserved bytes marker; nudge a
            // collided draw out of the reserved shape instead of
            // generating an unencodable value.
            if map.len() == 1 {
                if let Some(Value::Str(_)) = map.get("$bytes") {
                    map.insert("k".into(), Value::Null);
                }
            }
            Value::Map(map)
        }
    }
}

/// Escape-heavy strings: quotes, backslashes, control characters,
/// multi-byte UTF-8, and astral-plane chars (surrogate-pair escapes).
fn gen_string(rng: &mut StdRng) -> String {
    const POOL: &[char] = &[
        'a',
        'Z',
        '0',
        ' ',
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{8}',
        '\u{c}',
        '\u{1}',
        '\u{1f}',
        'é',
        'λ',
        '中',
        '\u{2028}',
        '🦀',
        '\u{10FFFF}',
    ];
    let n = rng.gen_range(0usize..12);
    (0..n)
        .map(|_| POOL[rng.gen_range(0usize..POOL.len())])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn json_roundtrip_is_identity(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = gen_value(&mut rng, 0);
        let text = to_json(&value).expect("finite values encode");
        let back = from_json(&text)
            .unwrap_or_else(|e| panic!("decode failed: {e}\n  json: {text}"));
        prop_assert_eq!(&back, &value, "json: {}", text);
        // Encoding is deterministic: same value, same bytes.
        prop_assert_eq!(to_json(&back).unwrap(), text);
    }

    #[test]
    fn binary_roundtrip_is_identity_and_agrees_with_json(seed in any::<u64>()) {
        // The two backends must be interchangeable on their shared
        // domain (every JSON-representable value): value → binary →
        // value and value → JSON → value land on the same tree, and
        // both encoders are deterministic. This is what lets the
        // artifact registry re-encode JSON artifacts as binary (and
        // vice versa) without semantic drift.
        let mut rng = StdRng::seed_from_u64(seed);
        let value = gen_value(&mut rng, 0);
        let bytes = to_binary(&value).expect("finite values encode");
        let via_binary = from_binary(&bytes)
            .unwrap_or_else(|e| panic!("binary decode failed: {e}"));
        prop_assert_eq!(&via_binary, &value);
        let via_json = from_json(&to_json(&value).unwrap()).unwrap();
        prop_assert_eq!(&via_binary, &via_json);
        // Canonical: re-encoding the decoded tree reproduces the bytes.
        prop_assert_eq!(to_binary(&via_binary).unwrap(), bytes);
    }

    #[test]
    fn binary_stays_smaller_on_artifact_shaped_payloads(
        users in 1usize..6,
        dim in 4usize..64,
        seed in any::<u64>(),
    ) {
        // Size regression guard for the payload shape the store
        // persists: byte-blob-heavy records (gallery templates, model
        // weights). JSON pays base64 plus quoting on these; the binary
        // backend must never give that advantage back.
        let mut rng = StdRng::seed_from_u64(seed);
        let entries: Vec<Value> = (0..users)
            .map(|u| {
                let blob: Vec<u8> = (0..dim * 8).map(|_| rng.gen_range(0u32..256) as u8).collect();
                Value::record([
                    ("user", Value::Str(format!("user-{u}"))),
                    ("sum", Value::Bytes(blob)),
                    ("count", Value::Int(rng.gen_range(1i64..100))),
                ])
            })
            .collect();
        let payload = Value::record([
            ("version", Value::Int(1)),
            ("dim", Value::Int(dim as i64)),
            ("threshold", Value::Float(rng.gen_range(0.0f64..10.0))),
            ("entries", Value::Seq(entries)),
        ]);
        let binary = to_binary(&payload).unwrap();
        let json = to_json(&payload).unwrap();
        prop_assert!(
            binary.len() < json.len(),
            "binary ({}) must beat JSON ({}) on blob-heavy records",
            binary.len(),
            json.len()
        );
        prop_assert_eq!(from_binary(&binary).unwrap(), from_json(&json).unwrap());
    }

    #[test]
    fn nonfinite_floats_are_rejected_wherever_they_hide(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bad = match rng.gen_range(0usize..3) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        // Bury the bad float at a random spot in a small tree.
        let value = Value::Seq(vec![
            gen_value(&mut rng, 4),
            Value::record([("x", Value::Float(bad))]),
        ]);
        prop_assert_eq!(to_json(&value), Err(EncodeError::NonFiniteFloat));
    }

    #[test]
    fn deep_nesting_policy(extra in 1usize..4) {
        // Beyond the limit: both directions refuse.
        let mut deep = Value::Int(7);
        for _ in 0..MAX_DEPTH + extra {
            deep = Value::Seq(vec![deep]);
        }
        prop_assert_eq!(to_json(&deep), Err(EncodeError::TooDeep));
        let text = format!(
            "{}7{}",
            "[".repeat(MAX_DEPTH + extra + 1),
            "]".repeat(MAX_DEPTH + extra + 1)
        );
        prop_assert!(from_json(&text).is_err(), "decoder accepted depth past the limit");
    }

    #[test]
    fn float_text_reparses_bit_exactly(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = f64::from_bits(rng.gen_range(0u64..u64::MAX));
        if !f.is_finite() {
            return Ok(());
        }
        let text = to_json(&Value::Float(f)).unwrap();
        match from_json(&text).unwrap() {
            Value::Float(back) => prop_assert_eq!(back.to_bits(), f.to_bits(), "text {}", text),
            other => prop_assert!(false, "float decoded as {:?}", other),
        }
    }
}
