//! Softmax, cross-entropy, and small prediction helpers.

use crate::matrix::Matrix;

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum.max(1e-30)).collect()
}

/// Softmax cross-entropy against a one-hot `label`.
///
/// Returns `(loss, grad_logits)` where `grad = softmax(logits) − onehot`.
///
/// # Panics
///
/// Panics if `label >= logits.len()`.
pub fn softmax_cross_entropy(logits: &[f32], label: usize) -> (f32, Vec<f32>) {
    assert!(
        label < logits.len(),
        "label {label} out of range {}",
        logits.len()
    );
    let probs = softmax(logits);
    let loss = -(probs[label].max(1e-12)).ln();
    let mut grad = probs;
    grad[label] -= 1.0;
    (loss, grad)
}

/// Row-wise softmax over a batch of logit rows.
///
/// The batched counterpart of [`softmax`]: row `r` of the result is
/// `softmax(logits.row(r))`. Used by the batched inference path
/// (`PointModel::logits_batch` consumers) so probabilities come out in
/// the same `(batch × classes)` shape the logits went in.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..logits.rows() {
        let probs = softmax(logits.row(r));
        out.row_mut(r).copy_from_slice(&probs);
    }
    out
}

/// Index of the maximum element (first on ties).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn argmax(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
        .expect("non-empty")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn cross_entropy_loss_and_grad() {
        let (loss, grad) = softmax_cross_entropy(&[0.0, 0.0], 0);
        assert!((loss - (2.0f32).ln()).abs() < 1e-6);
        assert!((grad[0] + 0.5).abs() < 1e-6);
        assert!((grad[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let (loss, _) = softmax_cross_entropy(&[10.0, -10.0], 0);
        assert!(loss < 1e-3);
        let (bad_loss, _) = softmax_cross_entropy(&[10.0, -10.0], 1);
        assert!(bad_loss > 5.0);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let logits = [0.5f32, -1.2, 2.0, 0.3];
        let label = 2;
        let (_, grad) = softmax_cross_entropy(&logits, label);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut plus = logits;
            plus[i] += eps;
            let mut minus = logits;
            minus[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, label);
            let (lm, _) = softmax_cross_entropy(&minus, label);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((grad[i] - numeric).abs() < 1e-3, "logit {i}");
        }
    }

    #[test]
    fn softmax_rows_matches_per_row_softmax() {
        let logits = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-4.0, 0.0, 4.0]]);
        let probs = softmax_rows(&logits);
        for r in 0..logits.rows() {
            let expected = softmax(logits.row(r));
            assert_eq!(probs.row(r), expected.as_slice());
            let sum: f32 = probs.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_rows_empty_batch() {
        let logits = Matrix::zeros(0, 3);
        let probs = softmax_rows(&logits);
        assert_eq!(probs.rows(), 0);
        assert_eq!(probs.cols(), 3);
    }

    #[test]
    fn argmax_ties_take_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn label_bounds_checked() {
        softmax_cross_entropy(&[1.0, 2.0], 2);
    }
}
