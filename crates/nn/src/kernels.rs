//! Blocked f32 GEMM kernels: the FLOP floor under every model.
//!
//! All three `Matrix` products (`A·B`, `A·Bᵀ`, `Aᵀ·B`) funnel into one
//! packed, register-blocked, cache-tiled engine:
//!
//! * **Packing** — `B` is repacked into `NR`-wide column panels laid out
//!   k-major, and `A` into `MR`-tall row panels, so the micro-kernel
//!   streams both operands contiguously regardless of the requested
//!   transpose orientation (the orientation is absorbed at pack time).
//! * **Register blocking** — the micro-kernel computes an `MR × NR`
//!   block of `C` in local accumulators, broadcasting one `A` value
//!   against `NR` packed `B` values per lane-step.
//! * **Cache tiling** — the shared dimension is processed in `KC`-sized
//!   blocks, so one packed `B` block (≤ `KC·NR` floats per panel) stays
//!   resident while every row block of `A` streams past it.
//!
//! # Determinism contract
//!
//! Every output element is produced by a **single accumulator summing in
//! ascending-k order** (per `KC` block, with blocks themselves combined
//! in ascending order). No pairwise trees, no FMA contraction — the
//! SIMD paths use explicit multiply-then-add so rounding matches the
//! scalar path lane for lane. Consequences:
//!
//! * results are bit-identical run to run,
//! * the scalar, SSE2, and AVX2 micro-kernels are bit-identical to each
//!   other (verified by `tests/kernel_properties.rs` under
//!   `--features simd`), so enabling the feature never changes logits,
//! * each output row is a function of its input rows alone, preserving
//!   the batch-size-independence that `GesIDNet::forward_batch`'s
//!   bit-exactness guarantee rests on.
//!
//! The pre-existing naive triple loops are retained below as
//! [`naive_matmul`]/[`naive_matmul_transpose`]/[`naive_transpose_matmul`]
//! — the property-test oracle and the honest baseline for
//! `benches/matmul.rs`. They are not called on any production path.

use crate::matrix::Matrix;

/// Micro-kernel height: rows of `C` computed per register block.
pub const MR: usize = 4;
/// Micro-kernel width: columns of `C` computed per register block.
pub const NR: usize = 8;
/// Cache tile over the shared dimension.
pub const KC: usize = 256;

/// Below this many multiply-adds the blocked engine's packing overhead
/// outweighs its locality win, so a straight-line loop (with the same
/// per-element accumulation order — see the module docs) runs instead.
const SMALL_FLOPS: usize = 8 * 1024;

/// Which micro-kernel executes the inner loop.
///
/// `Auto` resolves via [`active_backend`]; the explicit variants exist
/// so tests can pin a backend and assert cross-backend bit-equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar micro-kernel (always available).
    Scalar,
    /// SSE2 (baseline on `x86_64`); only built under `--features simd`.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    Sse2,
    /// AVX2, runtime-detected; only built under `--features simd`.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    Avx2,
}

/// The backend `Matrix`'s products dispatch to on this machine: the
/// widest SIMD micro-kernel the CPU supports when the `simd` feature is
/// enabled, otherwise the scalar one. (All backends are bit-identical;
/// this only selects speed.)
pub fn active_backend() -> Backend {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use std::sync::atomic::{AtomicU8, Ordering};
        static DETECTED: AtomicU8 = AtomicU8::new(0);
        match DETECTED.load(Ordering::Relaxed) {
            1 => return Backend::Avx2,
            2 => return Backend::Sse2,
            _ => {}
        }
        let backend = if std::arch::is_x86_feature_detected!("avx2") {
            DETECTED.store(1, Ordering::Relaxed);
            Backend::Avx2
        } else {
            DETECTED.store(2, Ordering::Relaxed);
            Backend::Sse2
        };
        return backend;
    }
    #[allow(unreachable_code)]
    Backend::Scalar
}

/// `a · b` through the blocked engine (production path of
/// [`Matrix::matmul`]). Shapes must already be validated by the caller.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    gemm(a, false, b, false, active_backend())
}

/// `a · bᵀ` through the blocked engine ([`Matrix::matmul_transpose`]).
pub fn matmul_transpose(a: &Matrix, b: &Matrix) -> Matrix {
    gemm(a, false, b, true, active_backend())
}

/// `aᵀ · b` through the blocked engine ([`Matrix::transpose_matmul`]).
pub fn transpose_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    gemm(a, true, b, false, active_backend())
}

/// The blocked engine with a pinned [`Backend`], bypassing the
/// small-shape fast path so the micro-kernel under test actually runs.
/// Test/bench entry point; production code uses the `Matrix` methods.
pub fn gemm_with_backend(
    a: &Matrix,
    a_trans: bool,
    b: &Matrix,
    b_trans: bool,
    backend: Backend,
) -> Matrix {
    let (m, n, k) = gemm_dims(a, a_trans, b, b_trans);
    let mut c = Matrix::zeros(m, n);
    gemm_blocked(a, a_trans, b, b_trans, m, n, k, backend, &mut c);
    c
}

fn gemm_dims(a: &Matrix, a_trans: bool, b: &Matrix, b_trans: bool) -> (usize, usize, usize) {
    let (m, ka) = if a_trans {
        (a.cols(), a.rows())
    } else {
        (a.rows(), a.cols())
    };
    let (kb, n) = if b_trans {
        (b.cols(), b.rows())
    } else {
        (b.rows(), b.cols())
    };
    debug_assert_eq!(ka, kb, "gemm shared-dimension mismatch");
    (m, n, ka)
}

fn gemm(a: &Matrix, a_trans: bool, b: &Matrix, b_trans: bool, backend: Backend) -> Matrix {
    let (m, n, k) = gemm_dims(a, a_trans, b, b_trans);
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    // Small shapes: packing costs more than it saves, and the simple
    // loops below share the blocked engine's exact accumulation order
    // (ascending k, single accumulator per element, k ≤ KC here), so
    // dispatching by size never changes a single bit of the result.
    if m * n * k <= SMALL_FLOPS && k <= KC {
        gemm_small(a, a_trans, b, b_trans, m, k, &mut c);
        return c;
    }
    gemm_blocked(a, a_trans, b, b_trans, m, n, k, backend, &mut c);
    c
}

/// Straight-line kernels for tiny operands. One loop nest per
/// orientation, chosen so the innermost loop walks contiguous memory;
/// all keep the single-accumulator ascending-k order.
fn gemm_small(
    a: &Matrix,
    a_trans: bool,
    b: &Matrix,
    b_trans: bool,
    m: usize,
    k: usize,
    c: &mut Matrix,
) {
    match (a_trans, b_trans) {
        (false, false) => {
            // ikj: C rows accumulate scaled B rows.
            for i in 0..m {
                let a_row = a.row(i);
                for (kk, &av) in a_row.iter().enumerate() {
                    let b_row = b.row(kk);
                    let c_row = c.row_mut(i);
                    for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv += av * bv;
                    }
                }
            }
        }
        (false, true) => {
            // Row-by-row dot products over contiguous rows of both.
            for i in 0..m {
                let a_row = a.row(i);
                let c_row = c.row_mut(i);
                for (j, cv) in c_row.iter_mut().enumerate() {
                    let b_row = b.row(j);
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += a_row[kk] * b_row[kk];
                    }
                    *cv = acc;
                }
            }
        }
        (true, false) => {
            // r-outer: each shared row of A and B rank-1-updates C.
            for r in 0..k {
                let a_row = a.row(r);
                let b_row = b.row(r);
                for (i, &av) in a_row.iter().enumerate() {
                    let c_row = c.row_mut(i);
                    for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv += av * bv;
                    }
                }
            }
        }
        (true, true) => {
            // Not used by any Matrix product; provided for completeness.
            for i in 0..m {
                let c_row = c.row_mut(i);
                for (j, cv) in c_row.iter_mut().enumerate() {
                    let b_row = b.row(j);
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += a.at(kk, i) * b_row[kk];
                    }
                    *cv = acc;
                }
            }
        }
    }
}

/// The packed, tiled engine. `c` must be zeroed `m × n`.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    a: &Matrix,
    a_trans: bool,
    b: &Matrix,
    b_trans: bool,
    m: usize,
    n: usize,
    k: usize,
    backend: Backend,
    c: &mut Matrix,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let panels = n.div_ceil(NR);
    let mut bpack = vec![0.0f32; panels * NR * k.min(KC)];
    let mut apack = [0.0f32; MR * KC];
    let mut k0 = 0;
    while k0 < k {
        let klen = KC.min(k - k0);
        pack_b(b, b_trans, k0, klen, n, &mut bpack);
        let mut i0 = 0;
        while i0 < m {
            let mlen = MR.min(m - i0);
            pack_a(a, a_trans, k0, klen, i0, mlen, &mut apack);
            for p in 0..panels {
                let j0 = p * NR;
                let nlen = NR.min(n - j0);
                let panel = &bpack[p * NR * klen..(p + 1) * NR * klen];
                let mut acc = [[0.0f32; NR]; MR];
                run_microkernel(&apack[..klen * MR], panel, klen, &mut acc, backend);
                for (ii, acc_row) in acc.iter().enumerate().take(mlen) {
                    let row = &mut c.row_mut(i0 + ii)[j0..j0 + nlen];
                    for (cv, &av) in row.iter_mut().zip(acc_row.iter()) {
                        *cv += av;
                    }
                }
            }
            i0 += MR;
        }
        k0 += KC;
    }
}

/// Packs `B`'s logical block `[k0..k0+klen) × [0..n)` into `NR`-wide
/// panels, k-major within each panel: `bpack[(p·klen + k)·NR + jj] =
/// B(k0+k, p·NR+jj)` (transposed read when `b_trans`). Ragged tail
/// columns are zero-filled; their lanes are discarded at writeback.
fn pack_b(b: &Matrix, b_trans: bool, k0: usize, klen: usize, n: usize, bpack: &mut [f32]) {
    let panels = n.div_ceil(NR);
    for p in 0..panels {
        let j0 = p * NR;
        let nlen = NR.min(n - j0);
        let dst = &mut bpack[p * NR * klen..(p + 1) * NR * klen];
        if b_trans {
            // B(k, j) = b[j][k]: gather NR rows of b, one column at a time.
            for (kk, slot) in dst.chunks_exact_mut(NR).enumerate() {
                for (jj, v) in slot.iter_mut().enumerate() {
                    *v = if jj < nlen {
                        b.at(j0 + jj, k0 + kk)
                    } else {
                        0.0
                    };
                }
            }
        } else {
            // Contiguous copy out of each row of b.
            for (kk, slot) in dst.chunks_exact_mut(NR).enumerate() {
                let src = &b.row(k0 + kk)[j0..j0 + nlen];
                slot[..nlen].copy_from_slice(src);
                slot[nlen..].fill(0.0);
            }
        }
    }
}

/// Packs `A`'s logical block `[i0..i0+mlen) × [k0..k0+klen)` k-major:
/// `apack[k·MR + ii] = A(i0+ii, k0+k)` (transposed read when `a_trans`).
/// Ragged tail rows are zero-filled and discarded at writeback.
fn pack_a(
    a: &Matrix,
    a_trans: bool,
    k0: usize,
    klen: usize,
    i0: usize,
    mlen: usize,
    apack: &mut [f32; MR * KC],
) {
    if a_trans {
        if mlen == MR {
            for kk in 0..klen {
                let src = &a.row(k0 + kk)[i0..i0 + MR];
                apack[kk * MR..kk * MR + MR].copy_from_slice(src);
            }
        } else {
            for kk in 0..klen {
                let src = a.row(k0 + kk);
                let slot = &mut apack[kk * MR..kk * MR + MR];
                for (ii, v) in slot.iter_mut().enumerate() {
                    *v = if ii < mlen { src[i0 + ii] } else { 0.0 };
                }
            }
        }
    } else if mlen == MR {
        // Branch-free interleave of the four full rows (the common case:
        // every block but the last ragged one).
        let r0 = &a.row(i0)[k0..k0 + klen];
        let r1 = &a.row(i0 + 1)[k0..k0 + klen];
        let r2 = &a.row(i0 + 2)[k0..k0 + klen];
        let r3 = &a.row(i0 + 3)[k0..k0 + klen];
        for (kk, slot) in apack[..klen * MR].chunks_exact_mut(MR).enumerate() {
            slot[0] = r0[kk];
            slot[1] = r1[kk];
            slot[2] = r2[kk];
            slot[3] = r3[kk];
        }
    } else {
        for kk in 0..klen {
            let slot = &mut apack[kk * MR..kk * MR + MR];
            for (ii, v) in slot.iter_mut().enumerate() {
                *v = if ii < mlen {
                    a.row(i0 + ii)[k0 + kk]
                } else {
                    0.0
                };
            }
        }
    }
}

fn run_microkernel(
    apack: &[f32],
    bpanel: &[f32],
    klen: usize,
    acc: &mut [[f32; NR]; MR],
    backend: Backend,
) {
    match backend {
        Backend::Scalar => microkernel_scalar(apack, bpanel, klen, acc),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Backend::Sse2 => microkernel_sse2(apack, bpanel, klen, acc),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: Avx2 is only ever produced by `active_backend` after
        // runtime detection, or passed explicitly by tests that did the
        // same check.
        Backend::Avx2 => unsafe { microkernel_avx2(apack, bpanel, klen, acc) },
    }
}

/// Portable micro-kernel: `MR` broadcast lanes against `NR` packed `B`
/// values per k step. The accumulators live in a function-local array —
/// written back exactly once after the k loop — so LLVM can promote all
/// `MR·NR` of them to vector registers instead of round-tripping through
/// the caller's stack slot every k step. Independent accumulators per
/// output element let the autovectorizer work the `jj` loop without
/// reassociating any sum.
fn microkernel_scalar(apack: &[f32], bpanel: &[f32], klen: usize, acc: &mut [[f32; NR]; MR]) {
    let mut local = *acc;
    for kk in 0..klen {
        let bs: &[f32; NR] = bpanel[kk * NR..kk * NR + NR].try_into().unwrap();
        let avs: &[f32; MR] = apack[kk * MR..kk * MR + MR].try_into().unwrap();
        for (acc_row, &av) in local.iter_mut().zip(avs.iter()) {
            for (accv, &bv) in acc_row.iter_mut().zip(bs.iter()) {
                *accv += av * bv;
            }
        }
    }
    *acc = local;
}

/// SSE2 micro-kernel: the `NR` lane runs as two 128-bit halves.
/// Multiply-then-add (no FMA) keeps rounding identical to the scalar
/// kernel lane for lane.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn microkernel_sse2(apack: &[f32], bpanel: &[f32], klen: usize, acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    // SAFETY: SSE2 is part of the x86_64 baseline; all pointer reads are
    // within the packed slices (`klen·NR` / `klen·MR` long).
    unsafe {
        let mut lanes = [[_mm_setzero_ps(); 2]; MR];
        for kk in 0..klen {
            let b0 = _mm_loadu_ps(bpanel.as_ptr().add(kk * NR));
            let b1 = _mm_loadu_ps(bpanel.as_ptr().add(kk * NR + 4));
            for (ii, lane) in lanes.iter_mut().enumerate() {
                let av = _mm_set1_ps(*apack.get_unchecked(kk * MR + ii));
                lane[0] = _mm_add_ps(lane[0], _mm_mul_ps(av, b0));
                lane[1] = _mm_add_ps(lane[1], _mm_mul_ps(av, b1));
            }
        }
        for (acc_row, lane) in acc.iter_mut().zip(lanes.iter()) {
            _mm_storeu_ps(acc_row.as_mut_ptr(), lane[0]);
            _mm_storeu_ps(acc_row.as_mut_ptr().add(4), lane[1]);
        }
    }
}

/// AVX2 micro-kernel: one 256-bit accumulator per `C` row. As with
/// SSE2, explicit mul+add — not `fmadd` — so all backends round alike.
///
/// # Safety
///
/// The CPU must support AVX2 (callers go through [`active_backend`]).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn microkernel_avx2(apack: &[f32], bpanel: &[f32], klen: usize, acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    let mut lanes = [_mm256_setzero_ps(); MR];
    for kk in 0..klen {
        let b = _mm256_loadu_ps(bpanel.as_ptr().add(kk * NR));
        for (ii, lane) in lanes.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*apack.get_unchecked(kk * MR + ii));
            *lane = _mm256_add_ps(*lane, _mm256_mul_ps(av, b));
        }
    }
    for (acc_row, lane) in acc.iter_mut().zip(lanes.iter()) {
        _mm256_storeu_ps(acc_row.as_mut_ptr(), *lane);
    }
}

// ---------------------------------------------------------------------
// Naive oracles — the original triple loops, retained for property
// tests and as the honest baseline in `benches/matmul.rs`.
// ---------------------------------------------------------------------

/// The original naive `a · b` (ikj loop), kept verbatim as the test
/// oracle — including the per-element sparsity branch the production
/// kernels dropped (on dense operands it cost a branch per multiply for
/// nothing; see `benches/matmul.rs`).
pub fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        let a_row = a.row(i);
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            let o_row = out.row_mut(i);
            for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// The original naive `a · bᵀ` (row-dot loop), writing through row
/// slices rather than per-element bounds-checked `set` calls.
pub fn naive_matmul_transpose(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_transpose dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let o_row = out.row_mut(i);
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for k in 0..a_row.len() {
                acc += a_row[k] * b_row[k];
            }
            *o = acc;
        }
    }
    out
}

/// The original naive `aᵀ · b` (rank-1 update loop), kept verbatim as
/// the test oracle — sparsity branch included, as shipped.
pub fn naive_transpose_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "transpose_matmul dimension mismatch");
    let mut out = Matrix::zeros(a.cols(), b.cols());
    for r in 0..a.rows() {
        let a_row = a.row(r);
        let b_row = b.row(r);
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let o_row = out.row_mut(i);
            for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}
