//! Optimizers: [`Adam`] and [`Sgd`].
//!
//! Optimizers are *cursor-based*: call [`Adam::begin_step`] once per
//! update, then feed every `(param, grad)` pair in a stable order (use
//! [`crate::Parameterized::for_each_param`]). Per-parameter moment
//! buffers are allocated lazily on first sight. Gradients are zeroed
//! after consumption.

/// The Adam optimizer (Kingma & Ba, 2015).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    t: i32,
    cursor: usize,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the standard betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            cursor: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Starts an update step (resets the parameter cursor, bumps the
    /// bias-correction time).
    pub fn begin_step(&mut self) {
        self.t += 1;
        self.cursor = 0;
    }

    /// Updates one parameter tensor in place and zeroes its gradient.
    ///
    /// # Panics
    ///
    /// Panics if the tensor size changes between steps.
    pub fn update(&mut self, param: &mut [f32], grad: &mut [f32]) {
        if self.cursor == self.m.len() {
            self.m.push(vec![0.0; param.len()]);
            self.v.push(vec![0.0; param.len()]);
        }
        let m = &mut self.m[self.cursor];
        let v = &mut self.v[self.cursor];
        assert_eq!(
            m.len(),
            param.len(),
            "parameter shape changed between steps"
        );
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for i in 0..param.len() {
            let g = grad[i];
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let mh = m[i] / bc1;
            let vh = v[i] / bc2;
            param[i] -= self.lr * mh / (vh.sqrt() + self.eps);
            grad[i] = 0.0;
        }
        self.cursor += 1;
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (`0` = vanilla SGD).
    pub momentum: f32,
    cursor: usize,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            cursor: 0,
            velocity: Vec::new(),
        }
    }

    /// Starts an update step.
    pub fn begin_step(&mut self) {
        self.cursor = 0;
    }

    /// Updates one parameter tensor in place and zeroes its gradient.
    pub fn update(&mut self, param: &mut [f32], grad: &mut [f32]) {
        if self.cursor == self.velocity.len() {
            self.velocity.push(vec![0.0; param.len()]);
        }
        let vel = &mut self.velocity[self.cursor];
        assert_eq!(
            vel.len(),
            param.len(),
            "parameter shape changed between steps"
        );
        for i in 0..param.len() {
            vel[i] = self.momentum * vel[i] + grad[i];
            param[i] -= self.lr * vel[i];
            grad[i] = 0.0;
        }
        self.cursor += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x − 3)² with each optimizer.
    fn quadratic_descent(update: &mut dyn FnMut(&mut [f32], &mut [f32])) -> f32 {
        let mut x = vec![0.0f32];
        for _ in 0..500 {
            let mut grad = vec![2.0 * (x[0] - 3.0)];
            update(&mut x, &mut grad);
        }
        x[0]
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.05);
        let x = quadratic_descent(&mut |p, g| {
            adam.begin_step();
            adam.update(p, g);
        });
        assert!((x - 3.0).abs() < 0.05, "x = {x}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.05, 0.9);
        let x = quadratic_descent(&mut |p, g| {
            sgd.begin_step();
            sgd.update(p, g);
        });
        assert!((x - 3.0).abs() < 0.05, "x = {x}");
    }

    #[test]
    fn gradients_are_zeroed() {
        let mut adam = Adam::new(0.01);
        adam.begin_step();
        let mut p = vec![1.0f32, 2.0];
        let mut g = vec![0.5f32, -0.5];
        adam.update(&mut p, &mut g);
        assert_eq!(g, vec![0.0, 0.0]);
    }

    #[test]
    fn multiple_tensors_tracked_independently() {
        let mut adam = Adam::new(0.1);
        let mut a = vec![0.0f32];
        let mut b = vec![0.0f32];
        for _ in 0..200 {
            let mut ga = vec![2.0 * (a[0] - 1.0)];
            let mut gb = vec![2.0 * (b[0] + 2.0)];
            adam.begin_step();
            adam.update(&mut a, &mut ga);
            adam.update(&mut b, &mut gb);
        }
        assert!((a[0] - 1.0).abs() < 0.1, "a = {}", a[0]);
        assert!((b[0] + 2.0).abs() < 0.1, "b = {}", b[0]);
    }

    #[test]
    #[should_panic(expected = "shape changed")]
    fn shape_change_detected() {
        let mut adam = Adam::new(0.1);
        adam.begin_step();
        let mut p = vec![0.0f32; 2];
        let mut g = vec![0.0f32; 2];
        adam.update(&mut p, &mut g);
        adam.begin_step();
        let mut p2 = vec![0.0f32; 3];
        let mut g2 = vec![0.0f32; 3];
        adam.update(&mut p2, &mut g2);
    }
}
