//! A single-layer LSTM with full backpropagation through time, used by
//! the temporal (Pantomime/Tesla-style) baseline.

use crate::init::xavier_uniform;
use crate::Parameterized;
use rand::Rng;

/// Standard LSTM: gates `i, f, g, o` with weights over `[x_t, h_{t−1}]`.
#[derive(Debug, Clone)]
pub struct Lstm {
    input: usize,
    hidden: usize,
    // Gate weights: 4·hidden × (input + hidden); rows ordered i,f,g,o.
    w: Vec<f32>,
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
}

/// Cached activations of one forward pass (needed for BPTT).
#[derive(Debug, Clone, Default)]
pub struct LstmTrace {
    xs: Vec<Vec<f32>>,
    hs: Vec<Vec<f32>>,    // h_0..h_T (h_0 = zeros)
    cs: Vec<Vec<f32>>,    // c_0..c_T
    gates: Vec<Vec<f32>>, // per step: i,f,g,o (post-activation), 4·hidden
}

impl Lstm {
    /// Creates an LSTM layer; forget-gate biases start at 1.
    pub fn new<R: Rng>(input: usize, hidden: usize, rng: &mut R) -> Self {
        let cols = input + hidden;
        let mut b = vec![0.0; 4 * hidden];
        for v in b.iter_mut().take(2 * hidden).skip(hidden) {
            *v = 1.0; // forget gate bias
        }
        Lstm {
            input,
            hidden,
            w: xavier_uniform(cols, hidden, 4 * hidden * cols, rng),
            b,
            gw: vec![0.0; 4 * hidden * cols],
            gb: vec![0.0; 4 * hidden],
        }
    }

    /// Hidden state size.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Runs the sequence, returning the final hidden state and the trace
    /// for [`Lstm::backward`].
    ///
    /// # Panics
    ///
    /// Panics if any step has the wrong feature count.
    pub fn forward(&self, sequence: &[Vec<f32>]) -> (Vec<f32>, LstmTrace) {
        let mut trace = LstmTrace {
            xs: sequence.to_vec(),
            hs: vec![vec![0.0; self.hidden]],
            cs: vec![vec![0.0; self.hidden]],
            gates: Vec::with_capacity(sequence.len()),
        };
        for x in sequence {
            assert_eq!(x.len(), self.input, "lstm input width mismatch");
            let h_prev = trace.hs.last().expect("non-empty").clone();
            let c_prev = trace.cs.last().expect("non-empty").clone();
            let mut gates = vec![0.0f32; 4 * self.hidden];
            let cols = self.input + self.hidden;
            for (gi, gate) in gates.iter_mut().enumerate() {
                let wrow = &self.w[gi * cols..(gi + 1) * cols];
                let mut acc = self.b[gi];
                for (wv, xv) in wrow[..self.input].iter().zip(x.iter()) {
                    acc += wv * xv;
                }
                for (wv, hv) in wrow[self.input..].iter().zip(h_prev.iter()) {
                    acc += wv * hv;
                }
                *gate = acc;
            }
            let h = self.hidden;
            let mut c = vec![0.0f32; h];
            let mut hn = vec![0.0f32; h];
            for j in 0..h {
                let i_g = sigmoid(gates[j]);
                let f_g = sigmoid(gates[h + j]);
                let g_g = gates[2 * h + j].tanh();
                let o_g = sigmoid(gates[3 * h + j]);
                gates[j] = i_g;
                gates[h + j] = f_g;
                gates[2 * h + j] = g_g;
                gates[3 * h + j] = o_g;
                c[j] = f_g * c_prev[j] + i_g * g_g;
                hn[j] = o_g * c[j].tanh();
            }
            trace.gates.push(gates);
            trace.cs.push(c);
            trace.hs.push(hn);
        }
        (trace.hs.last().expect("non-empty").clone(), trace)
    }

    /// Backpropagates a gradient on the final hidden state through the
    /// whole sequence, accumulating parameter gradients.
    pub fn backward(&mut self, trace: &LstmTrace, grad_h_final: &[f32]) {
        let h = self.hidden;
        let cols = self.input + h;
        let steps = trace.gates.len();
        let mut dh = grad_h_final.to_vec();
        let mut dc = vec![0.0f32; h];
        for t in (0..steps).rev() {
            let gates = &trace.gates[t];
            let c = &trace.cs[t + 1];
            let c_prev = &trace.cs[t];
            let h_prev = &trace.hs[t];
            let x = &trace.xs[t];
            let mut dgates = vec![0.0f32; 4 * h];
            for j in 0..h {
                let i_g = gates[j];
                let f_g = gates[h + j];
                let g_g = gates[2 * h + j];
                let o_g = gates[3 * h + j];
                let tc = c[j].tanh();
                let dcj = dc[j] + dh[j] * o_g * (1.0 - tc * tc);
                dgates[j] = dcj * g_g * i_g * (1.0 - i_g);
                dgates[h + j] = dcj * c_prev[j] * f_g * (1.0 - f_g);
                dgates[2 * h + j] = dcj * i_g * (1.0 - g_g * g_g);
                dgates[3 * h + j] = dh[j] * tc * o_g * (1.0 - o_g);
                dc[j] = dcj * f_g;
            }
            let mut dh_prev = vec![0.0f32; h];
            for gi in 0..4 * h {
                let g = dgates[gi];
                if g == 0.0 {
                    continue;
                }
                self.gb[gi] += g;
                let wrow = &self.w[gi * cols..(gi + 1) * cols];
                let gwrow = &mut self.gw[gi * cols..(gi + 1) * cols];
                for k in 0..self.input {
                    gwrow[k] += g * x[k];
                }
                for k in 0..h {
                    gwrow[self.input + k] += g * h_prev[k];
                    dh_prev[k] += g * wrow[self.input + k];
                }
            }
            dh = dh_prev;
        }
    }
}

impl Parameterized for Lstm {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&[f32])) {
        f(&self.w);
        f(&self.b);
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let lstm = Lstm::new(3, 5, &mut rng);
        let seq = vec![vec![0.1, 0.2, 0.3]; 7];
        let (hf, trace) = lstm.forward(&seq);
        assert_eq!(hf.len(), 5);
        assert_eq!(trace.hs.len(), 8);
        assert_eq!(trace.gates.len(), 7);
    }

    #[test]
    fn hidden_state_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(2, 4, &mut rng);
        let seq: Vec<Vec<f32>> = (0..50).map(|i| vec![(i as f32).sin() * 5.0, 3.0]).collect();
        let (hf, _) = lstm.forward(&seq);
        assert!(
            hf.iter().all(|v| v.abs() <= 1.0),
            "|h| ≤ 1 by construction: {hf:?}"
        );
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let seq = vec![vec![0.5, -0.3], vec![0.2, 0.8], vec![-0.6, 0.1]];
        // Loss = ½‖h_T‖².
        let (hf, trace) = lstm.forward(&seq);
        lstm.zero_grads();
        lstm.backward(&trace, &hf);
        let mut analytic = Vec::new();
        lstm.for_each_param(&mut |_, g| analytic.extend_from_slice(g));

        let loss = |l: &Lstm| -> f32 {
            let (h, _) = l.forward(&seq);
            h.iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        let eps = 1e-2f32;
        let mut idx = 0;
        let mut numeric = Vec::new();
        loop {
            let mut touched = false;
            let mut pos = 0;
            lstm.for_each_param(&mut |p, _| {
                if idx >= pos && idx < pos + p.len() {
                    p[idx - pos] += eps;
                    touched = true;
                }
                pos += p.len();
            });
            if !touched {
                break;
            }
            let lp = loss(&lstm);
            let mut pos = 0;
            lstm.for_each_param(&mut |p, _| {
                if idx >= pos && idx < pos + p.len() {
                    p[idx - pos] -= 2.0 * eps;
                }
                pos += p.len();
            });
            let lm = loss(&lstm);
            let mut pos = 0;
            lstm.for_each_param(&mut |p, _| {
                if idx >= pos && idx < pos + p.len() {
                    p[idx - pos] += eps;
                }
                pos += p.len();
            });
            numeric.push((lp - lm) / (2.0 * eps));
            idx += 1;
        }
        // Spot-check a sample of parameters (full sweep is slow in debug).
        for i in (0..analytic.len()).step_by(7) {
            assert!(
                (analytic[i] - numeric[i]).abs() < 3e-2 * (1.0 + numeric[i].abs()),
                "param {i}: analytic {} numeric {}",
                analytic[i],
                numeric[i]
            );
        }
    }

    #[test]
    fn can_learn_sequence_discrimination() {
        // Classify rising vs falling two-step sequences via a linear
        // readout of the final hidden state.
        let mut rng = StdRng::seed_from_u64(3);
        let mut lstm = Lstm::new(1, 6, &mut rng);
        let mut readout = crate::Linear::new(6, 2, &mut rng);
        let mut adam = Adam::new(0.02);
        let data: Vec<(Vec<Vec<f32>>, usize)> = (0..20)
            .map(|i| {
                let a = (i as f32) * 0.05;
                if i % 2 == 0 {
                    (vec![vec![a], vec![a + 0.5]], 0usize) // rising
                } else {
                    (vec![vec![a + 0.5], vec![a]], 1usize) // falling
                }
            })
            .collect();
        for _ in 0..150 {
            for (seq, label) in &data {
                let (h, trace) = lstm.forward(seq);
                let x = crate::Matrix::from_rows(&[h.clone()]);
                let logits = readout.forward(&x);
                let (_, grad) = crate::softmax_cross_entropy(logits.row(0), *label);
                let gh = readout.backward(&x, &crate::Matrix::from_rows(&[grad]));
                lstm.backward(&trace, gh.row(0));
                adam.begin_step();
                lstm.for_each_param(&mut |p, g| adam.update(p, g));
                readout.for_each_param(&mut |p, g| adam.update(p, g));
            }
        }
        let mut correct = 0;
        for (seq, label) in &data {
            let (h, _) = lstm.forward(seq);
            let logits = readout.forward(&crate::Matrix::from_rows(&[h]));
            if crate::argmax(logits.row(0)) == *label {
                correct += 1;
            }
        }
        assert!(correct >= 18, "LSTM failed to learn: {correct}/20");
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn input_width_checked() {
        let mut rng = StdRng::seed_from_u64(0);
        let lstm = Lstm::new(3, 2, &mut rng);
        lstm.forward(&[vec![1.0, 2.0]]);
    }
}
