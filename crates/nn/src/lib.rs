//! A minimal pure-Rust neural-network substrate.
//!
//! The offline environment has no deep-learning ecosystem, so GesIDNet
//! and the baselines are built on this crate: dense matrices, layers with
//! explicit forward/backward (no autograd graph — models own their
//! intermediates), cross-entropy losses, and Adam/SGD optimizers.
//!
//! Design notes:
//!
//! * **Stateless forward** — layers do not cache activations; `forward`
//!   is `&self` and `backward` takes the original input back. This lets
//!   one shared MLP be applied to many point groups (PointNet++-style
//!   weight sharing) without aliasing issues.
//! * **Gradient accumulation** — `backward` adds into the layer's `grad`
//!   buffers; the optimizer consumes and zeroes them via
//!   [`Parameterized::for_each_param`].
//! * **Determinism** — all initialisation is seeded, and the matmul
//!   kernels ([`kernels`]) accumulate every output element in a fixed
//!   ascending-k order, so results are bit-stable run to run and across
//!   the scalar/SIMD backends (`--features simd`).
//!
//! # Example
//!
//! ```
//! use gp_nn::{Linear, Relu, Adam, softmax_cross_entropy, Matrix, Parameterized};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut layer = Linear::new(4, 3, &mut rng);
//! let mut adam = Adam::new(1e-2);
//! let x = Matrix::from_rows(&[vec![0.2, -0.1, 0.5, 1.0]]);
//! for _ in 0..200 {
//!     let logits = layer.forward(&x);
//!     let (loss, grad) = softmax_cross_entropy(logits.row(0), 2);
//!     let _ = loss;
//!     let grad_m = Matrix::from_rows(&[grad]);
//!     layer.backward(&x, &grad_m);
//!     adam.begin_step();
//!     layer.for_each_param(&mut |p, g| adam.update(p, g));
//! }
//! let logits = layer.forward(&x);
//! let pred = gp_nn::argmax(logits.row(0));
//! assert_eq!(pred, 2);
//! ```

pub mod conv;
pub mod init;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod lstm;
pub mod matrix;
pub mod optim;
pub mod serialize;

pub use conv::Conv2d;
pub use layers::{Linear, MaxPool, Relu};
pub use loss::{argmax, softmax, softmax_cross_entropy, softmax_rows};
pub use lstm::Lstm;
pub use matrix::Matrix;
pub use optim::{Adam, Sgd};

/// Types exposing trainable parameters to an optimizer.
///
/// Implementations must visit parameters in a stable order; optimizers
/// key their per-parameter state on visit order.
pub trait Parameterized {
    /// Calls `f(param, grad)` for every parameter tensor.
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));

    /// Calls `f(param)` for every parameter tensor, read-only and in
    /// the same order as [`Parameterized::for_each_param`] — the export
    /// side of serialization, which must not require `&mut` access to a
    /// trained model.
    fn visit_params(&self, f: &mut dyn FnMut(&[f32]));

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Zeroes all gradient buffers.
    fn zero_grads(&mut self) {
        self.for_each_param(&mut |_, g| g.iter_mut().for_each(|v| *v = 0.0));
    }
}
