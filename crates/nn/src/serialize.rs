//! Flat binary (de)serialisation of parameter vectors.
//!
//! Trained models are saved as a simple tagged stream: magic, version,
//! tensor count, then `len: u32` + little-endian `f32` payload per
//! tensor. Loading requires the exact same architecture (tensor count and
//! shapes), which the loader verifies.

use crate::Parameterized;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u32 = 0x4750_4E4E; // "GPNN"
const VERSION: u32 = 1;

/// Serialises all parameters of `model` into a byte buffer.
///
/// Export is read-only ([`Parameterized::visit_params`]): saving a
/// trained model does not require `&mut` access to it.
pub fn save_params(model: &dyn Parameterized) -> Bytes {
    let mut tensors: Vec<Vec<f32>> = Vec::new();
    model.visit_params(&mut |p| tensors.push(p.to_vec()));
    let mut buf =
        BytesMut::with_capacity(16 + tensors.iter().map(|t| 4 + t.len() * 4).sum::<usize>());
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(tensors.len() as u32);
    for t in &tensors {
        buf.put_u32_le(t.len() as u32);
        for &v in t {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Errors from [`load_params`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadParamsError {
    /// The buffer does not start with the expected magic/version.
    BadHeader,
    /// The buffer ended early or tensor sizes disagree with the model.
    ShapeMismatch {
        /// Index of the offending tensor.
        tensor: usize,
    },
    /// The stream had a different number of tensors than the model.
    TensorCountMismatch {
        /// Tensors in the stream.
        stored: usize,
        /// Tensors in the model.
        expected: usize,
    },
}

impl std::fmt::Display for LoadParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadParamsError::BadHeader => write!(f, "bad header magic or version"),
            LoadParamsError::ShapeMismatch { tensor } => {
                write!(f, "tensor {tensor} size mismatch or truncated stream")
            }
            LoadParamsError::TensorCountMismatch { stored, expected } => {
                write!(f, "stream has {stored} tensors, model expects {expected}")
            }
        }
    }
}

impl std::error::Error for LoadParamsError {}

/// Loads parameters saved by [`save_params`] into `model`.
///
/// # Errors
///
/// Returns [`LoadParamsError`] when the stream is malformed or its shapes
/// do not match the model's parameters.
pub fn load_params(model: &mut dyn Parameterized, bytes: &[u8]) -> Result<(), LoadParamsError> {
    let mut buf = bytes;
    if buf.remaining() < 12 {
        return Err(LoadParamsError::BadHeader);
    }
    if buf.get_u32_le() != MAGIC || buf.get_u32_le() != VERSION {
        return Err(LoadParamsError::BadHeader);
    }
    let count = buf.get_u32_le() as usize;

    // Validate the untrusted header count against the model before any
    // count-sized allocation, so a corrupt file errors instead of
    // requesting absurd capacity.
    let mut shapes = Vec::new();
    model.visit_params(&mut |p| shapes.push(p.len()));
    if shapes.len() != count {
        return Err(LoadParamsError::TensorCountMismatch {
            stored: count,
            expected: shapes.len(),
        });
    }

    // Parse and verify every tensor before mutating anything.
    let mut tensors: Vec<Vec<f32>> = Vec::with_capacity(count);
    for (i, &expected) in shapes.iter().enumerate() {
        if buf.remaining() < 4 {
            return Err(LoadParamsError::ShapeMismatch { tensor: i });
        }
        let len = buf.get_u32_le() as usize;
        if len != expected || buf.remaining() < len * 4 {
            return Err(LoadParamsError::ShapeMismatch { tensor: i });
        }
        let mut t = Vec::with_capacity(len);
        for _ in 0..len {
            t.push(buf.get_f32_le());
        }
        tensors.push(t);
    }

    let mut iter = tensors.into_iter();
    model.for_each_param(&mut |p, _| {
        let t = iter.next().expect("count verified");
        p.copy_from_slice(&t);
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = Linear::new(6, 4, &mut rng);
        let bytes = save_params(&mut a);
        let mut b = Linear::new(6, 4, &mut StdRng::seed_from_u64(99));
        load_params(&mut b, &bytes).unwrap();
        let x = crate::Matrix::from_rows(&[vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]]);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn rejects_wrong_architecture() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = Linear::new(6, 4, &mut rng);
        let bytes = save_params(&mut a);
        let mut b = Linear::new(5, 4, &mut rng);
        assert!(matches!(
            load_params(&mut b, &bytes),
            Err(LoadParamsError::ShapeMismatch { tensor: 0 })
        ));
    }

    #[test]
    fn rejects_garbage() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = Linear::new(2, 2, &mut rng);
        assert_eq!(
            load_params(&mut a, b"nonsense"),
            Err(LoadParamsError::BadHeader)
        );
        assert_eq!(load_params(&mut a, &[]), Err(LoadParamsError::BadHeader));
    }

    #[test]
    fn rejects_absurd_tensor_count_header() {
        // A corrupt 12-byte file announcing u32::MAX tensors must error,
        // not attempt a count-sized allocation.
        let mut a = Linear::new(2, 2, &mut StdRng::seed_from_u64(1));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            load_params(&mut a, &bytes),
            Err(LoadParamsError::TensorCountMismatch { stored, .. }) if stored == u32::MAX as usize
        ));
    }

    #[test]
    fn rejects_truncated_stream() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = Linear::new(4, 4, &mut rng);
        let bytes = save_params(&mut a);
        let truncated = &bytes[..bytes.len() - 8];
        assert!(matches!(
            load_params(&mut a, truncated),
            Err(LoadParamsError::ShapeMismatch { .. })
        ));
    }
}
