//! A small 2-D convolution layer for the profile-CNN baseline
//! (mGesNet/mSeeNet operate on concentrated position–Doppler profiles).

use crate::init::he_uniform;
use crate::Parameterized;
use rand::Rng;

/// A 3×3 same-padding convolution over `(channels, height, width)`
/// feature maps stored as flat `Vec<f32>` in channel-major order.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    // weights: out × in × 3 × 3
    w: Vec<f32>,
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
}

impl Conv2d {
    /// Creates a 3×3 convolution.
    pub fn new<R: Rng>(in_channels: usize, out_channels: usize, rng: &mut R) -> Self {
        let n = out_channels * in_channels * 9;
        Conv2d {
            in_channels,
            out_channels,
            w: he_uniform(in_channels * 9, n, rng),
            b: vec![0.0; out_channels],
            gw: vec![0.0; n],
            gb: vec![0.0; out_channels],
        }
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    #[inline]
    fn widx(&self, o: usize, i: usize, ky: usize, kx: usize) -> usize {
        ((o * self.in_channels + i) * 3 + ky) * 3 + kx
    }

    /// Forward: input `(in_channels · h · w)` → output
    /// `(out_channels · h · w)` with zero padding.
    ///
    /// # Panics
    ///
    /// Panics if the input length is not `in_channels · h · w`.
    pub fn forward(&self, x: &[f32], h: usize, w: usize) -> Vec<f32> {
        assert_eq!(
            x.len(),
            self.in_channels * h * w,
            "conv input shape mismatch"
        );
        let mut y = vec![0.0f32; self.out_channels * h * w];
        for o in 0..self.out_channels {
            for yy in 0..h {
                for xx in 0..w {
                    let mut acc = self.b[o];
                    for i in 0..self.in_channels {
                        for ky in 0..3usize {
                            let sy = yy as isize + ky as isize - 1;
                            if sy < 0 || sy >= h as isize {
                                continue;
                            }
                            for kx in 0..3usize {
                                let sx = xx as isize + kx as isize - 1;
                                if sx < 0 || sx >= w as isize {
                                    continue;
                                }
                                acc += self.w[self.widx(o, i, ky, kx)]
                                    * x[(i * h + sy as usize) * w + sx as usize];
                            }
                        }
                    }
                    y[(o * h + yy) * w + xx] = acc;
                }
            }
        }
        y
    }

    /// Backward: accumulates parameter gradients, returns input gradient.
    pub fn backward(&mut self, x: &[f32], grad_out: &[f32], h: usize, w: usize) -> Vec<f32> {
        assert_eq!(grad_out.len(), self.out_channels * h * w);
        let mut gx = vec![0.0f32; self.in_channels * h * w];
        for o in 0..self.out_channels {
            for yy in 0..h {
                for xx in 0..w {
                    let g = grad_out[(o * h + yy) * w + xx];
                    if g == 0.0 {
                        continue;
                    }
                    self.gb[o] += g;
                    for i in 0..self.in_channels {
                        for ky in 0..3usize {
                            let sy = yy as isize + ky as isize - 1;
                            if sy < 0 || sy >= h as isize {
                                continue;
                            }
                            for kx in 0..3usize {
                                let sx = xx as isize + kx as isize - 1;
                                if sx < 0 || sx >= w as isize {
                                    continue;
                                }
                                let xi = (i * h + sy as usize) * w + sx as usize;
                                let wi = self.widx(o, i, ky, kx);
                                self.gw[wi] += g * x[xi];
                                gx[xi] += g * self.w[wi];
                            }
                        }
                    }
                }
            }
        }
        gx
    }
}

impl Parameterized for Conv2d {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&[f32])) {
        f(&self.w);
        f(&self.b);
    }
}

/// 2×2 max pooling (stride 2) over `(channels, h, w)` maps. Returns the
/// pooled map and argmax indices for the backward pass.
pub fn maxpool2x2(x: &[f32], channels: usize, h: usize, w: usize) -> (Vec<f32>, Vec<usize>) {
    let oh = h / 2;
    let ow = w / 2;
    let mut y = vec![f32::NEG_INFINITY; channels * oh * ow];
    let mut arg = vec![0usize; channels * oh * ow];
    for c in 0..channels {
        for yy in 0..oh {
            for xx in 0..ow {
                let oi = (c * oh + yy) * ow + xx;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let xi = (c * h + yy * 2 + dy) * w + xx * 2 + dx;
                        if x[xi] > y[oi] {
                            y[oi] = x[xi];
                            arg[oi] = xi;
                        }
                    }
                }
            }
        }
    }
    (y, arg)
}

/// Backward of [`maxpool2x2`].
pub fn maxpool2x2_backward(grad_out: &[f32], arg: &[usize], input_len: usize) -> Vec<f32> {
    let mut gx = vec![0.0f32; input_len];
    for (&a, &g) in arg.iter().zip(grad_out.iter()) {
        gx[a] += g;
    }
    gx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_passes_through() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, &mut rng);
        // Set the kernel to a centred delta.
        conv.for_each_param(&mut |p, _| {
            if p.len() == 9 {
                p.copy_from_slice(&[0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
            } else if p.len() == 1 {
                p[0] = 0.0;
            }
        });
        let x: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let y = conv.forward(&x, 4, 4);
        assert_eq!(y, x);
    }

    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(2, 3, &mut rng);
        let x: Vec<f32> = (0..2 * 4 * 4).map(|v| (v as f32 * 0.37).sin()).collect();
        let y = conv.forward(&x, 4, 4);
        // Loss = ½‖y‖² → grad_out = y.
        conv.zero_grads();
        let gx = conv.backward(&x, &y, 4, 4);

        // Finite-difference check of a few input gradients.
        let eps = 1e-2f32;
        let loss = |y: &[f32]| y.iter().map(|v| v * v).sum::<f32>() / 2.0;
        for &i in &[0usize, 7, 20, 31] {
            let mut xp = x.clone();
            xp[i] += eps;
            let lp = loss(&conv.forward(&xp, 4, 4));
            let mut xm = x.clone();
            xm[i] -= eps;
            let lm = loss(&conv.forward(&xm, 4, 4));
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (gx[i] - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "input {i}: analytic {} numeric {numeric}",
                gx[i]
            );
        }
    }

    #[test]
    fn maxpool_and_backward() {
        let x = vec![
            1.0, 2.0, 5.0, 6.0, //
            3.0, 4.0, 7.0, 8.0, //
            0.0, 0.0, 1.0, 0.0, //
            0.0, 9.0, 0.0, 0.0,
        ];
        let (y, arg) = maxpool2x2(&x, 1, 4, 4);
        assert_eq!(y, vec![4.0, 8.0, 9.0, 1.0]);
        let gx = maxpool2x2_backward(&[1.0, 1.0, 1.0, 1.0], &arg, 16);
        assert_eq!(gx.iter().sum::<f32>(), 4.0);
        assert_eq!(gx[5], 1.0); // where 4.0 lived
        assert_eq!(gx[13], 1.0); // where 9.0 lived
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn conv_checks_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(1, 1, &mut rng);
        conv.forward(&[0.0; 10], 4, 4);
    }
}
