//! Core layers: [`Linear`], [`Relu`], [`MaxPool`].

use crate::init::he_uniform;
use crate::matrix::Matrix;
use crate::Parameterized;
use rand::Rng;

/// A fully connected layer `y = x·Wᵀ + b`.
///
/// Used both as a classic dense layer (batch rows) and as a *shared MLP*
/// across points: pass a `(points × features)` matrix and every point is
/// transformed with the same weights, exactly PointNet's weight sharing.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Matrix,   // out × in
    b: Vec<f32>, // out
    gw: Matrix,  // gradient accumulator
    gb: Vec<f32>,
}

impl Linear {
    /// Creates a layer with He initialisation.
    pub fn new<R: Rng>(input: usize, output: usize, rng: &mut R) -> Self {
        Linear {
            w: Matrix::from_vec(output, input, he_uniform(input, output * input, rng)),
            b: vec![0.0; output],
            gw: Matrix::zeros(output, input),
            gb: vec![0.0; output],
        }
    }

    /// Input feature count.
    pub fn input_size(&self) -> usize {
        self.w.cols()
    }

    /// Output feature count.
    pub fn output_size(&self) -> usize {
        self.w.rows()
    }

    /// Forward pass: `(n × in) → (n × out)`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul_transpose(&self.w);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (v, b) in row.iter_mut().zip(self.b.iter()) {
                *v += b;
            }
        }
        y
    }

    /// Forward pass over rows gathered from scattered slices: stacks
    /// them into one matrix and runs a single multi-row
    /// [`Linear::forward`]. Each output row is bit-identical to
    /// forwarding that row alone — the matmul computes every row's dot
    /// products independently — so batch-capable callers can stack
    /// per-sample feature vectors without changing results.
    pub fn forward_batch(&self, rows: &[&[f32]]) -> Matrix {
        self.forward(&Matrix::from_row_slices(rows))
    }

    /// Backward pass: accumulates weight/bias gradients and returns the
    /// gradient w.r.t. the input. `x` must be the same matrix given to
    /// [`Linear::forward`].
    pub fn backward(&mut self, x: &Matrix, grad_out: &Matrix) -> Matrix {
        debug_assert_eq!(grad_out.cols(), self.w.rows());
        debug_assert_eq!(x.rows(), grad_out.rows());
        // gw += grad_outᵀ · x
        let gw = grad_out.transpose_matmul(x);
        self.gw.add_assign(&gw);
        for r in 0..grad_out.rows() {
            for (gb, &g) in self.gb.iter_mut().zip(grad_out.row(r)) {
                *gb += g;
            }
        }
        // grad_in = grad_out · W
        grad_out.matmul(&self.w)
    }
}

impl Parameterized for Linear {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.w.as_mut_slice(), self.gw.as_mut_slice());
        f(&mut self.b, &mut self.gb);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&[f32])) {
        f(self.w.as_slice());
        f(&self.b);
    }
}

/// Element-wise rectified linear unit.
#[derive(Debug, Clone, Copy, Default)]
pub struct Relu;

impl Relu {
    /// Forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        y
    }

    /// Backward pass; `x` is the pre-activation input.
    pub fn backward(&self, x: &Matrix, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for (gv, &xv) in g.as_mut_slice().iter_mut().zip(x.as_slice()) {
            if xv <= 0.0 {
                *gv = 0.0;
            }
        }
        g
    }
}

/// Column-wise max pooling over the rows of a matrix (PointNet's
/// permutation-invariant aggregation over a point set).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxPool;

impl MaxPool {
    /// Pools `(n × c)` down to a `c`-vector, returning the argmax row per
    /// column for the backward pass. Empty inputs yield zeros.
    pub fn forward(&self, x: &Matrix) -> (Vec<f32>, Vec<usize>) {
        let c = x.cols();
        if x.rows() == 0 {
            return (vec![0.0; c], vec![0; c]);
        }
        let mut out = x.row(0).to_vec();
        let mut arg = vec![0usize; c];
        for r in 1..x.rows() {
            for (j, &v) in x.row(r).iter().enumerate() {
                if v > out[j] {
                    out[j] = v;
                    arg[j] = r;
                }
            }
        }
        (out, arg)
    }

    /// Segmented column-wise max over stacked rows: `lens[k]`
    /// consecutive rows of `x` form segment `k`, and each segment pools
    /// to one output row. Bit-identical to running
    /// [`MaxPool::forward`] on each segment alone (same scan order,
    /// same `>` comparison); empty segments yield zero rows, matching
    /// `forward` on an empty matrix.
    ///
    /// This is the batched-inference kernel: many point groups (or many
    /// samples' rows) pool in one pass instead of one small call per
    /// group.
    ///
    /// # Panics
    ///
    /// Panics if `lens` does not sum to `x.rows()`.
    pub fn forward_segments(&self, x: &Matrix, lens: &[usize]) -> Matrix {
        let total: usize = lens.iter().sum();
        assert_eq!(total, x.rows(), "segment lengths must cover all rows");
        let mut out = Matrix::zeros(lens.len(), x.cols());
        let mut base = 0;
        for (k, &len) in lens.iter().enumerate() {
            if len == 0 {
                continue;
            }
            out.row_mut(k).copy_from_slice(x.row(base));
            for r in base + 1..base + len {
                let row = x.row(r);
                let dst = out.row_mut(k);
                for (j, &v) in row.iter().enumerate() {
                    if v > dst[j] {
                        dst[j] = v;
                    }
                }
            }
            base += len;
        }
        out
    }

    /// Like [`MaxPool::forward_segments`], but also returns each
    /// segment's per-column argmax (row index *local to the segment*)
    /// so training can route gradients back through the pooled max —
    /// the batched sibling of [`MaxPool::forward`]'s `(out, arg)` pair.
    /// Empty segments yield zero rows and empty argmax vectors.
    ///
    /// # Panics
    ///
    /// Panics if `lens` does not sum to `x.rows()`.
    pub fn forward_segments_trace(&self, x: &Matrix, lens: &[usize]) -> (Matrix, Vec<Vec<usize>>) {
        let total: usize = lens.iter().sum();
        assert_eq!(total, x.rows(), "segment lengths must cover all rows");
        let mut out = Matrix::zeros(lens.len(), x.cols());
        let mut args = Vec::with_capacity(lens.len());
        let mut base = 0;
        for (k, &len) in lens.iter().enumerate() {
            if len == 0 {
                args.push(Vec::new());
                continue;
            }
            out.row_mut(k).copy_from_slice(x.row(base));
            let mut arg = vec![0usize; x.cols()];
            for r in 1..len {
                let row = x.row(base + r);
                let dst = out.row_mut(k);
                for (j, &v) in row.iter().enumerate() {
                    if v > dst[j] {
                        dst[j] = v;
                        arg[j] = r;
                    }
                }
            }
            args.push(arg);
            base += len;
        }
        (out, args)
    }

    /// Scatters per-segment pooled gradients back to the argmax rows of
    /// the stacked input: row `k` of `grad_out` is segment `k`'s pooled
    /// gradient, `args[k]` the segment-local argmax from
    /// [`MaxPool::forward_segments_trace`]. Returns the gradient w.r.t.
    /// the stacked `(Σ lens × c)` input.
    ///
    /// # Panics
    ///
    /// Panics if `lens`, `args`, and `grad_out` disagree on the number
    /// of segments.
    pub fn backward_segments(
        &self,
        lens: &[usize],
        args: &[Vec<usize>],
        grad_out: &Matrix,
    ) -> Matrix {
        assert_eq!(lens.len(), args.len(), "segment count mismatch");
        assert_eq!(lens.len(), grad_out.rows(), "segment count mismatch");
        let total: usize = lens.iter().sum();
        let mut g = Matrix::zeros(total, grad_out.cols());
        let mut base = 0;
        for (k, &len) in lens.iter().enumerate() {
            if len == 0 {
                continue;
            }
            for (j, (&r, &gv)) in args[k].iter().zip(grad_out.row(k)).enumerate() {
                g.row_mut(base + r)[j] += gv;
            }
            base += len;
        }
        g
    }

    /// Scatters the pooled gradient back to the argmax rows.
    pub fn backward(&self, rows: usize, arg: &[usize], grad_out: &[f32]) -> Matrix {
        let mut g = Matrix::zeros(rows, grad_out.len());
        if rows == 0 {
            return g;
        }
        for (j, (&r, &gv)) in arg.iter().zip(grad_out.iter()).enumerate() {
            g.set(r, j, gv);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn finite_difference_check(
        layer: &mut Linear,
        x: &Matrix,
        target_grad: impl Fn(&Matrix) -> (f32, Matrix),
    ) {
        // Analytic gradients.
        let (_, grad_out) = target_grad(&layer.forward(x));
        layer.zero_grads();
        layer.backward(x, &grad_out);
        let mut analytic: Vec<f32> = Vec::new();
        layer.for_each_param(&mut |_, g| analytic.extend_from_slice(g));

        // Numeric gradients.
        let mut numeric = Vec::new();
        let eps = 1e-3f32;
        let mut idx = 0;
        loop {
            let mut touched = false;
            let mut flat_pos = 0;
            layer.for_each_param(&mut |p, _| {
                if idx >= flat_pos && idx < flat_pos + p.len() {
                    p[idx - flat_pos] += eps;
                    touched = true;
                }
                flat_pos += p.len();
            });
            if !touched {
                break;
            }
            let (loss_plus, _) = target_grad(&layer.forward(x));
            let mut flat_pos = 0;
            layer.for_each_param(&mut |p, _| {
                if idx >= flat_pos && idx < flat_pos + p.len() {
                    p[idx - flat_pos] -= 2.0 * eps;
                }
                flat_pos += p.len();
            });
            let (loss_minus, _) = target_grad(&layer.forward(x));
            let mut flat_pos = 0;
            layer.for_each_param(&mut |p, _| {
                if idx >= flat_pos && idx < flat_pos + p.len() {
                    p[idx - flat_pos] += eps;
                }
                flat_pos += p.len();
            });
            numeric.push((loss_plus - loss_minus) / (2.0 * eps));
            idx += 1;
        }

        assert_eq!(analytic.len(), numeric.len());
        for (i, (a, n)) in analytic.iter().zip(numeric.iter()).enumerate() {
            assert!(
                (a - n).abs() < 2e-2 * (1.0 + n.abs()),
                "param {i}: analytic {a} vs numeric {n}"
            );
        }
    }

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(5, 3, &mut rng);
        let x = Matrix::zeros(7, 5);
        let y = l.forward(&x);
        assert_eq!((y.rows(), y.cols()), (7, 3));
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new(4, 3, &mut rng);
        let x = Matrix::from_rows(&[vec![0.3, -0.2, 0.8, 0.1], vec![1.0, 0.5, -0.4, 0.2]]);
        // Loss = sum of squares of outputs / 2 → grad = outputs.
        finite_difference_check(&mut l, &x, |y| {
            let loss: f32 = y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0;
            (loss, y.clone())
        });
    }

    #[test]
    fn linear_input_gradient() {
        // For y = x·Wᵀ, dL/dx = dL/dy · W; check numerically on one entry.
        let mut rng = StdRng::seed_from_u64(5);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Matrix::from_rows(&[vec![0.4, -0.7, 0.2]]);
        let y = l.forward(&x);
        let grad_out = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let gin = l.backward(&x, &grad_out);
        let eps = 1e-3;
        for j in 0..3 {
            let mut xp = x.clone();
            xp.set(0, j, xp.at(0, j) + eps);
            let yp = l.forward(&xp);
            let numeric: f32 =
                (yp.as_slice().iter().sum::<f32>() - y.as_slice().iter().sum::<f32>()) / eps;
            assert!((gin.at(0, j) - numeric).abs() < 1e-2, "col {j}");
        }
    }

    #[test]
    fn relu_clamps_and_masks() {
        let x = Matrix::from_rows(&[vec![-1.0, 0.0, 2.0]]);
        let y = Relu.forward(&x);
        assert_eq!(y.row(0), &[0.0, 0.0, 2.0]);
        let g = Relu.backward(&x, &Matrix::from_rows(&[vec![5.0, 5.0, 5.0]]));
        assert_eq!(g.row(0), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn maxpool_forward_backward() {
        let x = Matrix::from_rows(&[vec![1.0, 9.0], vec![5.0, 2.0], vec![3.0, 4.0]]);
        let (out, arg) = MaxPool.forward(&x);
        assert_eq!(out, vec![5.0, 9.0]);
        assert_eq!(arg, vec![1, 0]);
        let g = MaxPool.backward(3, &arg, &[1.0, 2.0]);
        assert_eq!(g.at(1, 0), 1.0);
        assert_eq!(g.at(0, 1), 2.0);
        assert_eq!(g.at(2, 0), 0.0);
    }

    #[test]
    fn forward_batch_matches_per_row_forward() {
        let mut rng = StdRng::seed_from_u64(9);
        let l = Linear::new(4, 3, &mut rng);
        let rows = vec![
            vec![0.3f32, -0.2, 0.8, 0.1],
            vec![1.0, 0.5, -0.4, 0.2],
            vec![-0.7, 0.0, 0.25, 2.0],
        ];
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let batched = l.forward_batch(&refs);
        for (i, row) in rows.iter().enumerate() {
            let single = l.forward(&Matrix::from_rows(&[row.clone()]));
            assert_eq!(batched.row(i), single.row(0), "row {i}");
        }
    }

    #[test]
    fn forward_segments_matches_per_segment_forward() {
        let x = Matrix::from_rows(&[
            vec![1.0, 9.0],
            vec![5.0, 2.0],
            vec![3.0, 4.0],
            vec![-1.0, -2.0],
            vec![7.0, 0.5],
        ]);
        let lens = [3usize, 0, 2];
        let pooled = MaxPool.forward_segments(&x, &lens);
        assert_eq!(pooled.rows(), 3);
        assert_eq!(pooled.row(0), &[5.0, 9.0]);
        assert_eq!(pooled.row(1), &[0.0, 0.0], "empty segment pools to zeros");
        assert_eq!(pooled.row(2), &[7.0, 0.5]);
        // Bit-exact vs the per-segment scalar kernel.
        let (seg0, _) = MaxPool.forward(&Matrix::from_rows(&[
            x.row(0).to_vec(),
            x.row(1).to_vec(),
            x.row(2).to_vec(),
        ]));
        assert_eq!(pooled.row(0), seg0.as_slice());
    }

    #[test]
    #[should_panic(expected = "segment lengths must cover all rows")]
    fn forward_segments_checks_coverage() {
        MaxPool.forward_segments(&Matrix::zeros(3, 2), &[2]);
    }

    #[test]
    fn forward_segments_trace_matches_forward_segments() {
        let x = Matrix::from_rows(&[
            vec![1.0, 9.0],
            vec![5.0, 2.0],
            vec![3.0, 4.0],
            vec![-1.0, -2.0],
            vec![7.0, 0.5],
        ]);
        let lens = [3usize, 0, 2];
        let pooled = MaxPool.forward_segments(&x, &lens);
        let (traced, args) = MaxPool.forward_segments_trace(&x, &lens);
        assert_eq!(pooled, traced);
        // Per-segment argmax matches the single-segment kernel's.
        let (_, arg0) = MaxPool.forward(&Matrix::from_rows(&[
            x.row(0).to_vec(),
            x.row(1).to_vec(),
            x.row(2).to_vec(),
        ]));
        assert_eq!(args[0], arg0);
        assert!(args[1].is_empty(), "empty segment has no argmax");
        assert_eq!(args[2], vec![1, 1]);
    }

    #[test]
    fn backward_segments_matches_per_segment_backward() {
        let x = Matrix::from_rows(&[
            vec![1.0, 9.0],
            vec![5.0, 2.0],
            vec![3.0, 4.0],
            vec![-1.0, -2.0],
            vec![7.0, 0.5],
        ]);
        let lens = [3usize, 0, 2];
        let (_, args) = MaxPool.forward_segments_trace(&x, &lens);
        let grad_out = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = MaxPool.backward_segments(&lens, &args, &grad_out);
        assert_eq!((g.rows(), g.cols()), (5, 2));
        // Segment 0: same scatter as the scalar backward.
        let g0 = MaxPool.backward(3, &args[0], grad_out.row(0));
        for r in 0..3 {
            assert_eq!(g.row(r), g0.row(r), "segment 0 row {r}");
        }
        // Segment 1 is empty: its gradient row block is absent entirely.
        // Segment 2 rows follow immediately.
        let g2 = MaxPool.backward(2, &args[2], grad_out.row(2));
        assert_eq!(g.row(3), g2.row(0));
        assert_eq!(g.row(4), g2.row(1));
    }

    #[test]
    fn maxpool_empty_input() {
        let x = Matrix::zeros(0, 4);
        let (out, arg) = MaxPool.forward(&x);
        assert_eq!(out, vec![0.0; 4]);
        assert_eq!(arg, vec![0; 4]);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(10, 4, &mut rng);
        assert_eq!(l.param_count(), 44);
    }
}
