//! Weight initialisation.

use rand::Rng;

/// He (Kaiming) uniform initialisation for a layer with `fan_in` inputs:
/// uniform in `±√(6 / fan_in)` — appropriate before ReLU.
pub fn he_uniform<R: Rng>(fan_in: usize, n: usize, rng: &mut R) -> Vec<f32> {
    let bound = (6.0 / fan_in.max(1) as f64).sqrt() as f32;
    (0..n).map(|_| rng.gen_range(-bound..bound)).collect()
}

/// Xavier uniform initialisation: uniform in `±√(6 / (fan_in + fan_out))`
/// — appropriate before tanh/sigmoid (LSTM gates).
pub fn xavier_uniform<R: Rng>(fan_in: usize, fan_out: usize, n: usize, rng: &mut R) -> Vec<f32> {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt() as f32;
    (0..n).map(|_| rng.gen_range(-bound..bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn he_bounds_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = he_uniform(64, 10_000, &mut rng);
        let bound = (6.0f64 / 64.0).sqrt() as f32;
        assert!(w.iter().all(|v| v.abs() <= bound));
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        // Enough spread to break symmetry.
        let nonzero = w.iter().filter(|v| v.abs() > bound / 10.0).count();
        assert!(nonzero > w.len() / 2);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = xavier_uniform(32, 64, 5_000, &mut rng);
        let bound = (6.0f64 / 96.0).sqrt() as f32;
        assert!(w.iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn deterministic() {
        let a = he_uniform(8, 100, &mut StdRng::seed_from_u64(7));
        let b = he_uniform(8, 100, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
