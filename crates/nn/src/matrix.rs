//! A dense row-major `f32` matrix.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or there are no rows.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by stacking borrowed row slices (the zero-copy
    /// sibling of [`Matrix::from_rows`], for gathering rows scattered
    /// across other matrices into one multi-row kernel input).
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or there are no rows.
    pub fn from_row_slices(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self · other` through the blocked kernel engine (see
    /// [`crate::kernels`] for the tiling and determinism contract).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        crate::kernels::matmul(self, other)
    }

    /// `self · otherᵀ` through the blocked kernel engine.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_transpose dimension mismatch");
        crate::kernels::matmul_transpose(self, other)
    }

    /// `selfᵀ · other` through the blocked kernel engine.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "transpose_matmul dimension mismatch");
        crate::kernels::transpose_matmul(self, other)
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.at(r, c));
            }
        }
        out
    }

    /// Adds `other` element-wise in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Scales all elements in place.
    pub fn scale_assign(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let id = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[vec![1.0], vec![10.0], vec![100.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.at(0, 0), 321.0);
    }

    #[test]
    fn transpose_variants_agree() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]); // 3×2
        let b = Matrix::from_rows(&[vec![1.0, -1.0], vec![0.5, 2.0], vec![3.0, 1.0]]); // 3×2
                                                                                       // aᵀ·b via helper vs explicit transpose.
        let fast = a.transpose_matmul(&b);
        let slow = a.transposed().matmul(&b);
        assert_eq!(fast, slow);
        // a·bᵀ via helper vs explicit transpose.
        let fast2 = a.matmul_transpose(&b);
        let slow2 = a.matmul(&b.transposed());
        assert_eq!(fast2, slow2);
    }

    #[test]
    fn from_row_slices_matches_from_rows() {
        let owned = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let borrowed: Vec<&[f32]> = owned.iter().map(|r| r.as_slice()).collect();
        assert_eq!(
            Matrix::from_row_slices(&borrowed),
            Matrix::from_rows(&owned)
        );
    }

    #[test]
    fn row_access() {
        let mut m = Matrix::zeros(2, 3);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(m.at(1, 2), 3.0);
    }

    #[test]
    #[should_panic(expected = "matmul inner dimension mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_rejected() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, -1.0]]);
        a.add_assign(&b);
        assert_eq!(a.row(0), &[4.0, 1.0]);
        a.scale_assign(0.5);
        assert_eq!(a.row(0), &[2.0, 0.5]);
    }
}
