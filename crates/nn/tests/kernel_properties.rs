//! Property tests for the blocked GEMM kernels against the retained
//! naive oracles, plus the determinism contract:
//!
//! * every `Matrix` product matches its naive oracle within a tight
//!   relative epsilon across ragged shapes (1×1 up through sizes that
//!   are not multiples of the `MR`/`NR` tiles and cross the `KC` cache
//!   tile),
//! * two runs of the blocked kernel are bit-identical,
//! * under `--features simd`, every available SIMD backend is
//!   bit-identical to the pinned scalar backend (not merely close).

use gp_nn::kernels::{self, Backend, KC, MR, NR};
use gp_nn::Matrix;
use proptest::prelude::*;

/// Deterministic pseudo-random matrix with signed values spanning a few
/// orders of magnitude, plus exact zeros so the oracle's sparsity
/// branch is exercised.
fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            let z = next();
            if z % 11 == 0 {
                0.0
            } else {
                let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
                ((unit - 0.5) * 4.0) as f32 * if z % 3 == 0 { 0.01 } else { 1.0 }
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Relative-epsilon comparison: `|a - b| ≤ tol · (1 + max(|a|, |b|))`.
fn assert_close(a: &Matrix, b: &Matrix, tol: f32, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{what}: element {i}: {x} vs {y}"
        );
    }
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All three products agree with their naive oracles across ragged
    /// shapes, from 1×1 up through non-multiple-of-tile sizes.
    #[test]
    fn products_match_naive_oracle(
        m in 1usize..=2 * MR * NR + 3,
        n in 1usize..=2 * MR * NR + 3,
        k in 1usize..=40,
        seed in 0u64..1000,
    ) {
        let a = filled(m, k, seed);
        let b = filled(k, n, seed ^ 0xB0B);
        prop_assert_eq!(a.matmul(&b).rows(), m);
        assert_close(&a.matmul(&b), &kernels::naive_matmul(&a, &b), 1e-5, "matmul");

        let bt = filled(n, k, seed ^ 0xB0B);
        assert_close(
            &a.matmul_transpose(&bt),
            &kernels::naive_matmul_transpose(&a, &bt),
            1e-5,
            "matmul_transpose",
        );

        let a_tall = filled(k, m, seed ^ 0xA11);
        assert_close(
            &a_tall.transpose_matmul(&b),
            &kernels::naive_transpose_matmul(&a_tall, &b),
            1e-5,
            "transpose_matmul",
        );
    }

    /// Shapes whose shared dimension crosses the `KC` cache tile still
    /// match the oracle (the per-element sum is split across k blocks).
    #[test]
    fn k_tiling_matches_oracle(
        m in 1usize..=9,
        n in 1usize..=17,
        k_extra in 0usize..=70,
        seed in 0u64..200,
    ) {
        let k = KC - 5 + k_extra; // straddles the KC boundary
        let a = filled(m, k, seed);
        let b = filled(k, n, seed ^ 0xFEED);
        assert_close(&a.matmul(&b), &kernels::naive_matmul(&a, &b), 1e-4, "matmul(k>KC)");
        let bt = filled(n, k, seed ^ 0xFEED);
        assert_close(
            &a.matmul_transpose(&bt),
            &kernels::naive_matmul_transpose(&a, &bt),
            1e-4,
            "matmul_transpose(k>KC)",
        );
    }

    /// Two runs of the blocked kernel are bit-identical, and the result
    /// does not depend on whether the small-shape fast path or the full
    /// blocked engine computed it (same per-element accumulation order).
    #[test]
    fn blocked_kernel_is_bit_deterministic(
        m in 1usize..=33,
        n in 1usize..=33,
        k in 1usize..=33,
        seed in 0u64..1000,
    ) {
        let a = filled(m, k, seed);
        let b = filled(k, n, seed ^ 0xD1CE);
        let first = a.matmul(&b);
        prop_assert_eq!(bits(&first), bits(&a.matmul(&b)), "run-to-run");
        // Pinning the scalar backend bypasses the size dispatch: the
        // answer must not change by a single bit.
        let forced = kernels::gemm_with_backend(&a, false, &b, false, Backend::Scalar);
        prop_assert_eq!(bits(&first), bits(&forced), "dispatch-independence");

        let bt = filled(n, k, seed ^ 0xD1CE);
        let nt = a.matmul_transpose(&bt);
        let nt_forced = kernels::gemm_with_backend(&a, false, &bt, true, Backend::Scalar);
        prop_assert_eq!(bits(&nt), bits(&nt_forced), "matmul_transpose dispatch");

        let a_tall = filled(k, m, seed ^ 0x7A11);
        let tn = a_tall.transpose_matmul(&b);
        let tn_forced = kernels::gemm_with_backend(&a_tall, true, &b, false, Backend::Scalar);
        prop_assert_eq!(bits(&tn), bits(&tn_forced), "transpose_matmul dispatch");
    }
}

/// Under `--features simd`, every backend the machine supports must be
/// bit-identical to the scalar micro-kernel — the contract that makes
/// the feature flag a pure speed knob.
#[cfg(feature = "simd")]
#[test]
fn simd_backends_bit_identical_to_scalar() {
    let backends = [Backend::Sse2, kernels::active_backend()];
    for (m, n, k) in [
        (1, 1, 1),
        (3, 5, 7),
        (MR, NR, 16),
        (MR + 1, NR + 3, 31),
        (2 * MR + 3, 3 * NR + 5, KC + 17),
        (64, 96, 67),
    ] {
        for seed in 0..4u64 {
            let a = filled(m, k, seed);
            let b = filled(k, n, seed ^ 0x51D);
            let bt = filled(n, k, seed ^ 0x51D);
            let a_tall = filled(k, m, seed ^ 0x717);
            for (at, bx, bt_flag, label) in [
                (&a, &b, (false, false), "matmul"),
                (&a, &bt, (false, true), "matmul_transpose"),
                (&a_tall, &b, (true, false), "transpose_matmul"),
            ] {
                let scalar =
                    kernels::gemm_with_backend(at, bt_flag.0, bx, bt_flag.1, Backend::Scalar);
                for backend in backends {
                    let simd = kernels::gemm_with_backend(at, bt_flag.0, bx, bt_flag.1, backend);
                    assert_eq!(
                        bits(&scalar),
                        bits(&simd),
                        "{label} {m}x{k}·{k}x{n}: {backend:?} diverged from Scalar"
                    );
                }
            }
        }
    }
}

/// Two runs of the SIMD-dispatched kernel are bit-identical (the
/// feature-flag half of the determinism satellite).
#[cfg(feature = "simd")]
#[test]
fn simd_kernel_is_run_to_run_deterministic() {
    let backend = kernels::active_backend();
    let a = filled(37, KC + 9, 99);
    let b = filled(KC + 9, 29, 7);
    let first = kernels::gemm_with_backend(&a, false, &b, false, backend);
    let second = kernels::gemm_with_backend(&a, false, &b, false, backend);
    assert_eq!(bits(&first), bits(&second));
}
