//! Property tests: the batched GesIDNet forward must be bit-exact with
//! the per-sample path for every batch size 1..=8, mixed raw point-cloud
//! sizes, mixed resampling widths, and duplicated inputs — the
//! guarantee `gp-serve`'s micro-batching executor and `gp-core`'s
//! batched entry points rely on for worker-count determinism.

use gp_models::features::{encode, FeatureConfig, ModelInput};
use gp_models::{GesIDNet, GesIDNetConfig, PointModel};
use gp_pointcloud::{Point, PointCloud, Vec3};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic synthetic gesture cloud with `points` raw points.
fn cloud(seed: u64, points: usize, shift: f64) -> PointCloud {
    (0..points)
        .map(|i| {
            let t = i as f64 * 0.37 + seed as f64 * 0.11;
            Point::new(
                Vec3::new(
                    shift + t.sin() * 0.3,
                    1.2 + t.cos() * 0.2,
                    1.0 + (t * 0.7).sin() * 0.3,
                ),
                (t * 1.3).sin(),
                8.0 + (i % 13) as f64,
            )
        })
        .collect()
}

fn input(seed: u64, points: usize, num_points: usize, shift: f64) -> ModelInput {
    let mut rng = StdRng::seed_from_u64(seed);
    encode(
        &cloud(seed, points, shift),
        &[],
        &FeatureConfig {
            num_points,
            ..FeatureConfig::default()
        },
        &mut rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `forward_batch` (and through it `logits_batch`) is bit-exact
    /// with per-sample `logits` for batch sizes 1..=8 over clouds of
    /// mixed raw sizes, including sparse ones below the resampling
    /// width.
    #[test]
    fn logits_batch_bit_exact_for_mixed_batches(
        seed in 0u64..200,
        batch in 1usize..=8,
        num_points in 16usize..=48,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = GesIDNet::new(GesIDNetConfig::for_classes(4), &mut rng);
        let inputs: Vec<ModelInput> = (0..batch)
            .map(|k| {
                // Mixed cloud sizes within one batch: 5..=64 raw points.
                let raw = 5 + ((seed as usize + 13 * k) % 60);
                input(seed ^ k as u64, raw, num_points, 0.1 * k as f64)
            })
            .collect();
        let batched = net.logits_batch(&inputs);
        prop_assert_eq!(batched.rows(), batch);
        for (i, sample) in inputs.iter().enumerate() {
            let single = net.logits(sample);
            prop_assert_eq!(batched.row(i), single.as_slice(), "row {}", i);
        }
    }

    /// Duplicated inputs (which the batched path deduplicates to share
    /// FPS/grouping work) still land exact per-row logits.
    #[test]
    fn deduplicated_rows_stay_bit_exact(
        seed in 0u64..100,
        copies in 2usize..=5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = GesIDNet::new(GesIDNetConfig::for_classes(3), &mut rng);
        let a = input(seed, 24, 24, 0.0);
        let b = input(seed + 1, 40, 24, 0.3);
        let mut inputs = vec![b.clone()];
        inputs.extend(std::iter::repeat_with(|| a.clone()).take(copies));
        inputs.push(b);
        let batched = net.logits_batch(&inputs);
        for (i, sample) in inputs.iter().enumerate() {
            let single = net.logits(sample);
            prop_assert_eq!(batched.row(i), single.as_slice(), "row {}", i);
        }
        // All duplicate rows are identical (they share one forward).
        for k in 2..=copies {
            prop_assert_eq!(batched.row(1), batched.row(k));
        }
    }
}
