//! GesIDNet and the baseline classifiers.
//!
//! * [`GesIDNet`] — the paper's architecture (§IV-C): multiscale
//!   PointNet++-style set abstraction over the aggregated gesture cloud,
//!   an **attention-based multilevel feature fusion** module combining
//!   low- and high-level features with adaptively learned weights
//!   (Eqs. 2–3), and a primary + auxiliary classification head.
//! * [`baselines`] — representative reimplementations of the comparison
//!   systems' input families: raw point set (PointNet-style, for
//!   PanArch/Tesla), position–Doppler profile CNN (mGesNet/mSeeNet
//!   style), and a per-frame temporal LSTM (Pantomime-style).
//!
//! All models implement [`PointModel`], so the training/evaluation
//! harness in `gp-core` treats them interchangeably.

pub mod baselines;
pub mod features;
pub mod gesidnet;

pub use baselines::{LstmNet, PointNet, ProfileCnn};
pub use features::{FeatureConfig, ModelInput};
pub use gesidnet::{GesIDNet, GesIDNetConfig};

use gp_nn::{Matrix, Parameterized};

/// A classifier over preprocessed gesture samples.
///
/// `Send + Sync` because inference is `&self` and trained models are
/// shared across serving workers (`gp-serve` holds one system behind an
/// `Arc` while micro-batches run on a thread pool).
pub trait PointModel: Parameterized + Send + Sync {
    /// Class count.
    fn classes(&self) -> usize;

    /// Inference: class logits for one sample.
    fn logits(&self, input: &ModelInput) -> Vec<f32>;

    /// Batched inference: one row of class logits per input.
    ///
    /// The default maps [`PointModel::logits`] over the batch; models
    /// with genuinely batched kernels can override it without changing
    /// callers. The serving executor and `gp-core`'s batched entry point
    /// go through this, so the whole path is already batch-shaped.
    fn logits_batch(&self, inputs: &[ModelInput]) -> Matrix {
        if inputs.is_empty() {
            return Matrix::zeros(0, self.classes());
        }
        let rows: Vec<Vec<f32>> = inputs.iter().map(|i| self.logits(i)).collect();
        Matrix::from_rows(&rows)
    }

    /// Training: forward + backward for one `(input, label)` pair,
    /// accumulating parameter gradients. Returns the loss.
    fn train_step(&mut self, input: &ModelInput, label: usize) -> f32;

    /// Training over a mini-batch: accumulates gradients for every
    /// `(input, label)` pair before the caller takes one optimizer step.
    /// Returns the summed loss over the batch.
    ///
    /// The default loops [`PointModel::train_step`] in order, so it is
    /// bit-identical to the historical sample-at-a-time loop; models
    /// with genuinely batched backward passes (GesIDNet) override it to
    /// push the whole mini-batch through multi-row kernels. Overrides
    /// compute the same mathematical gradient sum but may associate the
    /// floating-point additions differently.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `labels` have different lengths.
    fn train_step_batch(&mut self, inputs: &[&ModelInput], labels: &[usize]) -> f32 {
        assert_eq!(inputs.len(), labels.len(), "inputs/labels length mismatch");
        inputs
            .iter()
            .zip(labels)
            .map(|(x, &y)| self.train_step(x, y))
            .sum()
    }

    /// Model name for reports.
    fn name(&self) -> &'static str;

    /// Taps intermediate features for visualisation (paper Fig. 6);
    /// returns `(low, high, fused)` when the model exposes them.
    fn feature_taps(&self, _input: &ModelInput) -> Option<(Vec<f32>, Vec<f32>, Vec<f32>)> {
        None
    }
}
