//! Sample encoding: preprocessed gesture samples → model inputs.
//!
//! One [`ModelInput`] carries all three representations the model zoo
//! needs, so a dataset is encoded once and every architecture reads its
//! own view:
//!
//! * `points`/`positions` — a fixed-size point set with per-point
//!   features (GesIDNet, PointNet),
//! * `profile` — a range×Doppler occupancy histogram (profile CNN),
//! * `sequence` — per-frame summary features (temporal LSTM).

use gp_nn::Matrix;
use gp_pipeline::LabeledSample;
use gp_pointcloud::sampling::resample_to;
use gp_pointcloud::{PointCloud, Vec3};
use rand::Rng;

/// Per-point feature count: raw `(x, y, z)`, Doppler, normalised SNR.
///
/// Coordinates are deliberately *not* centred: the paper feeds raw point
/// clouds, so absolute geometry (user height, arm span, stance) stays
/// visible to the identifier; robustness to position shifts comes from
/// training-time augmentation (paper Fig. 12).
pub const POINT_FEATURES: usize = 5;

/// Encoding options.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureConfig {
    /// Points per sample after resampling.
    pub num_points: usize,
    /// Range×Doppler profile grid (rows = Doppler bins, cols = range bins).
    pub profile_shape: (usize, usize),
    /// Profile extents: half Doppler span (m/s) and range span around the
    /// cloud centroid (m).
    pub doppler_span: f64,
    /// Range window half-width around the centroid (m).
    pub range_span: f64,
    /// Maximum sequence length (frames) for the temporal view.
    pub max_frames: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            num_points: 96,
            profile_shape: (16, 24),
            doppler_span: 2.7,
            range_span: 0.96,
            max_frames: 40,
        }
    }
}

impl gp_codec::Encode for FeatureConfig {
    fn encode(&self) -> gp_codec::Value {
        gp_codec::Value::record([
            ("num_points", self.num_points.encode()),
            ("profile_shape", self.profile_shape.encode()),
            ("doppler_span", self.doppler_span.encode()),
            ("range_span", self.range_span.encode()),
            ("max_frames", self.max_frames.encode()),
        ])
    }
}

impl gp_codec::Decode for FeatureConfig {
    fn decode(value: &gp_codec::Value) -> Result<Self, gp_codec::DecodeError> {
        Ok(FeatureConfig {
            num_points: value.get("num_points")?,
            profile_shape: value.get("profile_shape")?,
            doppler_span: value.get("doppler_span")?,
            range_span: value.get("range_span")?,
            max_frames: value.get("max_frames")?,
        })
    }
}

/// An encoded sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInput {
    /// `(num_points × POINT_FEATURES)` matrix.
    pub points: Matrix,
    /// Raw world positions, parallel to `points` rows.
    pub positions: Vec<Vec3>,
    /// Flattened Doppler×range histogram.
    pub profile: Vec<f32>,
    /// Profile shape `(doppler_bins, range_bins)`.
    pub profile_shape: (usize, usize),
    /// Per-frame summary features (8 per frame).
    pub sequence: Vec<Vec<f32>>,
}

/// Width of each per-frame summary vector in [`ModelInput::sequence`].
pub const SEQUENCE_FEATURES: usize = 8;

/// Encodes a preprocessed cloud (and optional temporal view) into a
/// [`ModelInput`].
pub fn encode<R: Rng>(
    cloud: &PointCloud,
    frame_clouds: &[PointCloud],
    config: &FeatureConfig,
    rng: &mut R,
) -> ModelInput {
    let centroid = cloud.centroid().unwrap_or(Vec3::ZERO);
    let fixed = resample_to(cloud, config.num_points, rng);

    let mut rows = Vec::with_capacity(config.num_points);
    let mut positions = Vec::with_capacity(config.num_points);
    for p in fixed.iter() {
        positions.push(p.position);
        rows.push(vec![
            p.position.x as f32,
            p.position.y as f32,
            p.position.z as f32,
            p.doppler as f32,
            ((1.0 + p.snr.max(0.0)).ln() / 10.0) as f32,
        ]);
    }
    let points = Matrix::from_rows(&rows);

    // Concentrated position–Doppler profile (mGesNes/mSeeNet input): a
    // 2-D histogram of (range-offset, Doppler), intensity-weighted.
    let (dop_bins, rng_bins) = config.profile_shape;
    let mut profile = vec![0.0f32; dop_bins * rng_bins];
    for p in cloud.iter() {
        let range_off = (p.position - centroid).y; // depth axis offset
        let rb = (((range_off + config.range_span) / (2.0 * config.range_span)) * rng_bins as f64)
            .floor();
        let db = (((p.doppler + config.doppler_span) / (2.0 * config.doppler_span))
            * dop_bins as f64)
            .floor();
        if rb < 0.0 || db < 0.0 {
            continue;
        }
        let (rb, db) = (rb as usize, db as usize);
        if rb >= rng_bins || db >= dop_bins {
            continue;
        }
        profile[db * rng_bins + rb] += ((1.0 + p.snr.max(0.0)).ln() / 10.0) as f32;
    }

    // Temporal summary: per frame (count, centroid offset xyz, mean |v|,
    // mean v, spatial spread, max snr-norm).
    let mut sequence = Vec::with_capacity(frame_clouds.len().min(config.max_frames));
    for fc in frame_clouds.iter().take(config.max_frames) {
        if fc.is_empty() {
            sequence.push(vec![0.0; SEQUENCE_FEATURES]);
            continue;
        }
        let c = fc.centroid().expect("non-empty") - centroid;
        let n = fc.len() as f64;
        let mean_abs_v = fc.iter().map(|p| p.doppler.abs()).sum::<f64>() / n;
        let mean_v = fc.iter().map(|p| p.doppler).sum::<f64>() / n;
        let spread = fc
            .iter()
            .map(|p| (p.position - centroid - c).norm())
            .sum::<f64>()
            / n;
        let max_snr = fc
            .iter()
            .map(|p| (1.0 + p.snr.max(0.0)).ln() / 10.0)
            .fold(0.0, f64::max);
        sequence.push(vec![
            (n / 20.0) as f32,
            c.x as f32,
            c.y as f32,
            c.z as f32,
            mean_abs_v as f32,
            mean_v as f32,
            spread as f32,
            max_snr as f32,
        ]);
    }
    if sequence.is_empty() {
        sequence.push(vec![0.0; SEQUENCE_FEATURES]);
    }

    ModelInput {
        points,
        positions,
        profile,
        profile_shape: config.profile_shape,
        sequence,
    }
}

/// Encodes a [`LabeledSample`] (convenience wrapper).
pub fn encode_sample<R: Rng>(
    sample: &LabeledSample,
    config: &FeatureConfig,
    rng: &mut R,
) -> ModelInput {
    encode(&sample.cloud, &sample.frame_clouds, config, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_pointcloud::Point;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cloud() -> PointCloud {
        (0..40)
            .map(|i| {
                Point::new(
                    Vec3::new(0.02 * i as f64, 1.2 + 0.01 * i as f64, 1.0),
                    (i as f64 * 0.11).sin(),
                    10.0 + i as f64,
                )
            })
            .collect()
    }

    #[test]
    fn shapes_are_fixed() {
        let cfg = FeatureConfig::default();
        let mut rng = StdRng::seed_from_u64(0);
        let input = encode(&cloud(), &[], &cfg, &mut rng);
        assert_eq!(input.points.rows(), cfg.num_points);
        assert_eq!(input.points.cols(), POINT_FEATURES);
        assert_eq!(input.positions.len(), cfg.num_points);
        assert_eq!(input.profile.len(), 16 * 24);
        assert_eq!(input.sequence.len(), 1, "no frames → one zero step");
    }

    #[test]
    fn positions_are_raw() {
        // Absolute geometry must survive encoding (paper feeds raw
        // clouds; see POINT_FEATURES docs).
        let cfg = FeatureConfig::default();
        let mut rng = StdRng::seed_from_u64(0);
        let input = encode(&cloud(), &[], &cfg, &mut rng);
        let mean = input.positions.iter().fold(Vec3::ZERO, |a, p| a + *p)
            * (1.0 / input.positions.len() as f64);
        let true_centroid = cloud().centroid().unwrap();
        assert!(
            mean.distance(true_centroid) < 0.3,
            "raw positions expected, got mean {mean:?}"
        );
    }

    #[test]
    fn profile_collects_mass() {
        let cfg = FeatureConfig::default();
        let mut rng = StdRng::seed_from_u64(0);
        let input = encode(&cloud(), &[], &cfg, &mut rng);
        let mass: f32 = input.profile.iter().sum();
        assert!(mass > 0.0);
    }

    #[test]
    fn sequence_respects_max_frames() {
        let cfg = FeatureConfig {
            max_frames: 5,
            ..FeatureConfig::default()
        };
        let frames = vec![cloud(); 12];
        let mut rng = StdRng::seed_from_u64(0);
        let input = encode(&cloud(), &frames, &cfg, &mut rng);
        assert_eq!(input.sequence.len(), 5);
        assert_eq!(input.sequence[0].len(), SEQUENCE_FEATURES);
    }

    #[test]
    fn empty_cloud_still_encodes() {
        let cfg = FeatureConfig::default();
        let mut rng = StdRng::seed_from_u64(0);
        let input = encode(&PointCloud::new(), &[], &cfg, &mut rng);
        assert_eq!(input.points.rows(), cfg.num_points);
        assert!(input.profile.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn doppler_preserved_in_features() {
        let cfg = FeatureConfig {
            num_points: 4,
            ..FeatureConfig::default()
        };
        let c: PointCloud = (0..4)
            .map(|i| Point::new(Vec3::new(i as f64, 1.0, 1.0), 1.5, 5.0))
            .collect();
        let mut rng = StdRng::seed_from_u64(0);
        let input = encode(&c, &[], &cfg, &mut rng);
        for r in 0..4 {
            assert!((input.points.at(r, 3) - 1.5).abs() < 1e-6);
        }
    }
}
