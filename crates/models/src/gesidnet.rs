//! GesIDNet: multiscale set abstraction + attention-based multilevel
//! feature fusion (paper §IV-C, Fig. 5).
//!
//! The same architecture is trained twice — once with gesture labels for
//! recognition, once with user labels for identification. Its pieces:
//!
//! 1. **Set abstraction (SA1)** — farthest-point-sample `n₁` centroids;
//!    per centroid and per scale, group the nearest points within radius
//!    `dᵢ`, run a shared MLP and max-pool (PointNet++ MSG block). The
//!    per-scale features are concatenated (`f^s`).
//! 2. **Low level (l₁)** — a shared projection over SA1 features,
//!    max-pooled into the low-level global feature `F¹`.
//! 3. **SA2 + high level (l₂)** — a second abstraction over SA1
//!    centroids, pooled into the high-level global feature `F²`.
//! 4. **Attention fusion (Eqs. 2–3)** — at each level the *other* level's
//!    feature is resized by a Resizing Block (Linear+ReLU); a learned
//!    scoring layer `g(·)` assigns each candidate a logit and the
//!    softmax-weighted sum forms the fusion feature `Y^k`.
//! 5. **Heads + auxiliary loss** — `Y¹` feeds the primary classifier
//!    (P1), `Y²` the auxiliary one (P2); training minimises
//!    `CE(P1) + aux_weight·CE(P2)`, inference uses P1 (paper uses plain
//!    sum, i.e. `aux_weight = 1`).

use crate::features::{ModelInput, POINT_FEATURES};
use crate::PointModel;
use gp_nn::{softmax, softmax_cross_entropy, Linear, Matrix, MaxPool, Parameterized, Relu};
use gp_pointcloud::sampling::farthest_point_indices;
use gp_pointcloud::{neighbors, PointCloud, Vec3};
use rand::Rng;

/// One grouping scale of a set-abstraction block.
#[derive(Debug, Clone, PartialEq)]
pub struct SaScale {
    /// Ball-query radius `d` (m).
    pub radius: f64,
    /// Points per group `m`.
    pub max_points: usize,
    /// Hidden width of the shared MLP.
    pub hidden: usize,
    /// Output width of the shared MLP.
    pub out: usize,
}

/// GesIDNet hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GesIDNetConfig {
    /// Number of classes (gestures or users).
    pub classes: usize,
    /// SA1 centroid count `n₁`.
    pub sa1_centroids: usize,
    /// SA1 multiscale grouping configuration.
    pub sa1_scales: Vec<SaScale>,
    /// SA2 centroid count `n₂`.
    pub sa2_centroids: usize,
    /// SA2 grouping configuration.
    pub sa2_scale: SaScale,
    /// Low-level global feature width (`F¹`).
    pub low_dim: usize,
    /// High-level global feature width (`F²`).
    pub high_dim: usize,
    /// Hidden width of the classification heads.
    pub head_hidden: usize,
    /// Enables the attention fusion module (ablation: `false` uses
    /// `Y^k = F^k` directly, the paper's "w/o Feature Fusion" arm).
    pub fusion: bool,
    /// Weight of the auxiliary loss.
    pub aux_weight: f32,
}

impl GesIDNetConfig {
    /// The default configuration for `classes` outputs.
    pub fn for_classes(classes: usize) -> Self {
        GesIDNetConfig {
            classes,
            sa1_centroids: 24,
            sa1_scales: vec![
                SaScale {
                    radius: 0.3,
                    max_points: 8,
                    hidden: 24,
                    out: 32,
                },
                SaScale {
                    radius: 0.6,
                    max_points: 12,
                    hidden: 32,
                    out: 48,
                },
            ],
            sa2_centroids: 8,
            sa2_scale: SaScale {
                radius: 0.8,
                max_points: 6,
                hidden: 64,
                out: 96,
            },
            low_dim: 96,
            high_dim: 192,
            head_hidden: 64,
            fusion: true,
            aux_weight: 1.0,
        }
    }

    /// A tiny configuration for gradient tests.
    pub fn tiny(classes: usize) -> Self {
        GesIDNetConfig {
            classes,
            sa1_centroids: 4,
            sa1_scales: vec![SaScale {
                radius: 0.5,
                max_points: 3,
                hidden: 5,
                out: 6,
            }],
            sa2_centroids: 2,
            sa2_scale: SaScale {
                radius: 1.0,
                max_points: 2,
                hidden: 7,
                out: 8,
            },
            low_dim: 6,
            high_dim: 10,
            head_hidden: 5,
            fusion: true,
            aux_weight: 1.0,
        }
    }
}

/// A two-layer shared MLP (Linear→ReLU→Linear→ReLU) applied point-wise.
#[derive(Debug, Clone)]
struct SharedMlp {
    l1: Linear,
    l2: Linear,
}

#[derive(Debug, Clone)]
struct SharedMlpTrace {
    x: Matrix,
    pre1: Matrix,
    act1: Matrix,
    pre2: Matrix,
}

impl SharedMlp {
    fn new<R: Rng>(input: usize, hidden: usize, out: usize, rng: &mut R) -> Self {
        SharedMlp {
            l1: Linear::new(input, hidden, rng),
            l2: Linear::new(hidden, out, rng),
        }
    }

    /// Inference-only forward (no trace): the batched path stacks many
    /// groups into one matrix and runs both layers as single multi-row
    /// kernels. Row-for-row bit-identical to [`SharedMlp::forward`].
    fn infer(&self, x: &Matrix) -> Matrix {
        Relu.forward(&self.l2.forward(&Relu.forward(&self.l1.forward(x))))
    }

    fn forward(&self, x: Matrix) -> (Matrix, SharedMlpTrace) {
        let pre1 = self.l1.forward(&x);
        let act1 = Relu.forward(&pre1);
        let pre2 = self.l2.forward(&act1);
        let out = Relu.forward(&pre2);
        (
            out,
            SharedMlpTrace {
                x,
                pre1,
                act1,
                pre2,
            },
        )
    }

    fn backward(&mut self, t: &SharedMlpTrace, grad_out: &Matrix) -> Matrix {
        let g = Relu.backward(&t.pre2, grad_out);
        let g = self.l2.backward(&t.act1, &g);
        let g = Relu.backward(&t.pre1, &g);
        self.l1.backward(&t.x, &g)
    }
}

impl Parameterized for SharedMlp {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.l1.for_each_param(f);
        self.l2.for_each_param(f);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&[f32])) {
        self.l1.visit_params(f);
        self.l2.visit_params(f);
    }
}

/// One pooled group: member indices, MLP trace, pool argmax.
#[derive(Debug, Clone)]
struct GroupTrace {
    members: Vec<usize>,
    mlp: SharedMlpTrace,
    pool_arg: Vec<usize>,
    group_rows: usize,
}

/// Trace of a full forward pass.
#[derive(Debug, Clone)]
struct Trace {
    // SA1: per scale, per centroid.
    sa1: Vec<Vec<GroupTrace>>,
    sa1_concat: Matrix, // n1 × c1
    low_pre: Matrix,
    low_act: Matrix,
    low_arg: Vec<usize>,
    f1: Vec<f32>,
    // SA2.
    c2_of_c1: Vec<GroupTrace>, // per sa2 centroid, members index into SA1 centroids
    sa2_out: Matrix,           // n2 × out
    high_pre: Matrix,
    high_act: Matrix,
    high_arg: Vec<usize>,
    f2: Vec<f32>,
    // Fusion level 1.
    fusion1: Option<FusionTrace>,
    y1: Vec<f32>,
    // Fusion level 2.
    fusion2: Option<FusionTrace>,
    y2: Vec<f32>,
    // Heads.
    h1_pre: Matrix,
    h1_act: Matrix,
    logits1: Vec<f32>,
    h2_pre_a: Matrix,
    h2_act_a: Matrix,
    h2_pre_b: Matrix,
    h2_act_b: Matrix,
    logits2: Vec<f32>,
}

/// Attention-fusion intermediates at one level: the resized feature, the
/// two attention logits and weights.
#[derive(Debug, Clone)]
struct FusionTrace {
    other_input: Vec<f32>, // the raw other-level feature fed to the RB
    resized_pre: Vec<f32>, // RB pre-activation
    resized: Vec<f32>,     // RB output (= F^{l→k})
    own: Vec<f32>,         // F^k
    weights: [f32; 2],     // softmax(g(resized), g(own))
}

/// Per-sample geometry shared by the stacked forward paths: the point
/// cloud, its FPS centroids, and the per-sample centroid counts.
struct BatchGeometry {
    clouds: Vec<PointCloud>,
    centroids: Vec<Vec<Vec3>>,
    counts1: Vec<usize>,
}

/// Stacked SA2 grouping over the whole batch: the group rows, their
/// lengths, the per-sample SA2 centroid counts, and each group's member
/// indices as **global** rows of the stacked `sa1_concat`.
struct Sa2Stack {
    stacked: Matrix,
    lens: Vec<usize>,
    counts2: Vec<usize>,
    members: Vec<Vec<usize>>,
}

/// Trace of one shared-MLP + segmented-pool stage over stacked groups.
struct StackedScaleTrace {
    lens: Vec<usize>,
    mlp: SharedMlpTrace,
    pool_args: Vec<Vec<usize>>,
}

/// Attention-fusion intermediates for a whole batch (row `i` belongs to
/// sample `i`): the batched sibling of [`FusionTrace`].
struct BatchFusionTrace {
    other: Matrix,
    resized_pre: Matrix,
    resized: Matrix,
    own: Matrix,
    weights: Vec<[f32; 2]>,
}

/// Trace of a batched training forward pass: every intermediate the
/// batched backward needs, with all samples' groups stacked per stage.
struct BatchTrace {
    sa1: Vec<StackedScaleTrace>,
    sa1_concat: Matrix, // (Σ n₁) × c1
    counts1: Vec<usize>,
    low_pre: Matrix,
    f1_args: Vec<Vec<usize>>,
    sa2_members: Vec<Vec<usize>>,
    sa2_lens: Vec<usize>,
    sa2_mlp_trace: SharedMlpTrace,
    sa2_pool_args: Vec<Vec<usize>>,
    sa2_out: Matrix, // (Σ n₂) × out
    counts2: Vec<usize>,
    high_pre: Matrix,
    f2_args: Vec<Vec<usize>>,
    fusion1: Option<BatchFusionTrace>,
    y1: Matrix,
    fusion2: Option<BatchFusionTrace>,
    y2: Matrix,
    h1_pre: Matrix,
    h1_act: Matrix,
    logits1: Matrix,
    h2_pre_a: Matrix,
    h2_act_a: Matrix,
    h2_pre_b: Matrix,
    h2_act_b: Matrix,
    logits2: Matrix,
}

/// The GesIDNet model.
#[derive(Debug, Clone)]
pub struct GesIDNet {
    config: GesIDNetConfig,
    sa1_mlps: Vec<SharedMlp>,
    low_proj: Linear,
    sa2_mlp: SharedMlp,
    high_proj: Linear,
    rb_low: Linear,  // high_dim → low_dim
    rb_high: Linear, // low_dim → high_dim
    g1: Linear,      // low_dim → 1
    g2: Linear,      // high_dim → 1
    head1_a: Linear,
    head1_b: Linear,
    head2_a: Linear,
    head2_b: Linear,
    head2_c: Linear,
}

impl GesIDNet {
    /// Creates a GesIDNet with seeded initialisation.
    pub fn new<R: Rng>(config: GesIDNetConfig, rng: &mut R) -> Self {
        let c1: usize = config.sa1_scales.iter().map(|s| s.out).sum();
        let sa1_mlps = config
            .sa1_scales
            .iter()
            .map(|s| SharedMlp::new(3 + POINT_FEATURES, s.hidden, s.out, rng))
            .collect();
        let sa2 = &config.sa2_scale;
        GesIDNet {
            sa1_mlps,
            low_proj: Linear::new(c1, config.low_dim, rng),
            sa2_mlp: SharedMlp::new(3 + c1, sa2.hidden, sa2.out, rng),
            high_proj: Linear::new(sa2.out, config.high_dim, rng),
            rb_low: Linear::new(config.high_dim, config.low_dim, rng),
            rb_high: Linear::new(config.low_dim, config.high_dim, rng),
            g1: Linear::new(config.low_dim, 1, rng),
            g2: Linear::new(config.high_dim, 1, rng),
            head1_a: Linear::new(config.low_dim, config.head_hidden, rng),
            head1_b: Linear::new(config.head_hidden, config.classes, rng),
            head2_a: Linear::new(config.high_dim, config.head_hidden * 2, rng),
            head2_b: Linear::new(config.head_hidden * 2, config.head_hidden, rng),
            head2_c: Linear::new(config.head_hidden, config.classes, rng),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GesIDNetConfig {
        &self.config
    }

    fn forward_full(&self, input: &ModelInput) -> Trace {
        let positions = &input.positions;
        let pos_cloud = PointCloud::from_positions(positions.iter().copied());
        let n1 = self.config.sa1_centroids;

        // --- SA1: multiscale grouping around FPS centroids -------------
        let c1_idx = farthest_point_indices(&pos_cloud, n1);
        let centroids1: Vec<Vec3> = c1_idx.iter().map(|&i| positions[i]).collect();
        let mut sa1_traces: Vec<Vec<GroupTrace>> = Vec::with_capacity(self.sa1_mlps.len());
        let mut scale_outputs: Vec<Matrix> = Vec::new();
        for (scale, mlp) in self.config.sa1_scales.iter().zip(&self.sa1_mlps) {
            let mut rows = Matrix::zeros(centroids1.len(), scale.out);
            let mut traces = Vec::with_capacity(centroids1.len());
            for (j, &c) in centroids1.iter().enumerate() {
                let members =
                    neighbors::ball_query_padded(&pos_cloud, c, scale.radius, scale.max_points);
                let mut group = Matrix::zeros(members.len(), 3 + POINT_FEATURES);
                for (r, &m) in members.iter().enumerate() {
                    // Local offsets are normalised by the scale radius
                    // (standard PointNet++ conditioning).
                    let d = (positions[m] - c) * (1.0 / scale.radius);
                    let row = group.row_mut(r);
                    row[0] = d.x as f32;
                    row[1] = d.y as f32;
                    row[2] = d.z as f32;
                    row[3..].copy_from_slice(input.points.row(m));
                }
                let rows_in_group = group.rows();
                let (out, mlp_trace) = mlp.forward(group);
                let (pooled, arg) = MaxPool.forward(&out);
                rows.row_mut(j).copy_from_slice(&pooled);
                traces.push(GroupTrace {
                    members,
                    mlp: mlp_trace,
                    pool_arg: arg,
                    group_rows: rows_in_group,
                });
            }
            scale_outputs.push(rows);
            sa1_traces.push(traces);
        }
        // Concatenate scales per centroid.
        let c1_dim: usize = self.config.sa1_scales.iter().map(|s| s.out).sum();
        let mut sa1_concat = Matrix::zeros(centroids1.len(), c1_dim);
        for j in 0..centroids1.len() {
            let mut off = 0;
            for m in &scale_outputs {
                sa1_concat.row_mut(j)[off..off + m.cols()].copy_from_slice(m.row(j));
                off += m.cols();
            }
        }

        // --- Low-level global feature F1 --------------------------------
        let low_pre = self.low_proj.forward(&sa1_concat);
        let low_act = Relu.forward(&low_pre);
        let (f1, low_arg) = MaxPool.forward(&low_act);

        // --- SA2 over SA1 centroids -------------------------------------
        let cent_cloud = PointCloud::from_positions(centroids1.iter().copied());
        let c2_idx = farthest_point_indices(&cent_cloud, self.config.sa2_centroids);
        let sa2 = &self.config.sa2_scale;
        let mut sa2_out = Matrix::zeros(c2_idx.len(), sa2.out);
        let mut c2_traces = Vec::with_capacity(c2_idx.len());
        for (k, &ci) in c2_idx.iter().enumerate() {
            let c = centroids1[ci];
            let members = neighbors::ball_query_padded(&cent_cloud, c, sa2.radius, sa2.max_points);
            let mut group = Matrix::zeros(members.len(), 3 + c1_dim);
            for (r, &m) in members.iter().enumerate() {
                let d = (centroids1[m] - c) * (1.0 / sa2.radius);
                let row = group.row_mut(r);
                row[0] = d.x as f32;
                row[1] = d.y as f32;
                row[2] = d.z as f32;
                row[3..].copy_from_slice(sa1_concat.row(m));
            }
            let rows_in_group = group.rows();
            let (out, mlp_trace) = self.sa2_mlp.forward(group);
            let (pooled, arg) = MaxPool.forward(&out);
            sa2_out.row_mut(k).copy_from_slice(&pooled);
            c2_traces.push(GroupTrace {
                members,
                mlp: mlp_trace,
                pool_arg: arg,
                group_rows: rows_in_group,
            });
        }

        // --- High-level global feature F2 --------------------------------
        let high_pre = self.high_proj.forward(&sa2_out);
        let high_act = Relu.forward(&high_pre);
        let (f2, high_arg) = MaxPool.forward(&high_act);

        // --- Attention fusion --------------------------------------------
        let (y1, fusion1) = if self.config.fusion {
            let (y, t) = fuse(&self.rb_low, &self.g1, &f2, &f1);
            (y, Some(t))
        } else {
            (f1.clone(), None)
        };
        let (y2, fusion2) = if self.config.fusion {
            let (y, t) = fuse(&self.rb_high, &self.g2, &f1, &f2);
            (y, Some(t))
        } else {
            (f2.clone(), None)
        };

        // --- Heads --------------------------------------------------------
        let h1_pre = self.head1_a.forward_batch(&[&y1]);
        let h1_act = Relu.forward(&h1_pre);
        let logits1 = self.head1_b.forward(&h1_act).row(0).to_vec();

        let h2_pre_a = self.head2_a.forward_batch(&[&y2]);
        let h2_act_a = Relu.forward(&h2_pre_a);
        let h2_pre_b = self.head2_b.forward(&h2_act_a);
        let h2_act_b = Relu.forward(&h2_pre_b);
        let logits2 = self.head2_c.forward(&h2_act_b).row(0).to_vec();

        Trace {
            sa1: sa1_traces,
            sa1_concat,
            low_pre,
            low_act,
            low_arg,
            f1,
            c2_of_c1: c2_traces,
            sa2_out,
            high_pre,
            high_act,
            high_arg,
            f2,
            fusion1,
            y1,
            fusion2,
            y2,
            h1_pre,
            h1_act,
            logits1,
            h2_pre_a,
            h2_act_a,
            h2_pre_b,
            h2_act_b,
            logits2,
        }
    }

    /// Genuinely batched inference: one row of P1 logits per input.
    ///
    /// Work is shared two ways, while staying bit-identical to calling
    /// [`PointModel::logits`] per sample:
    ///
    /// 1. **Deduplication** — identical inputs (same positions and
    ///    features) run FPS, grouping, and the whole forward once; their
    ///    logits row is copied to every duplicate. The scan is O(B²)
    ///    comparisons, fine at micro-batch sizes.
    /// 2. **Multi-row kernels** — per scale, every group of every
    ///    sample is stacked into one matrix, so each shared MLP runs as
    ///    two big matmuls instead of `B × n₁` small ones, pooled by
    ///    [`MaxPool::forward_segments`]. The projections, the attention
    ///    fusion, and the primary head likewise run over all samples'
    ///    rows at once. (The auxiliary head P2 is training-only and is
    ///    skipped entirely here.)
    ///
    /// Bit-exactness holds because every kernel computes each output
    /// row from its input rows alone, in the same operation order as
    /// the per-sample path.
    pub fn forward_batch(&self, inputs: &[ModelInput]) -> Matrix {
        if inputs.is_empty() {
            return Matrix::zeros(0, self.config.classes);
        }
        // Dedupe identical inputs so shared FPS/grouping work runs once:
        // `unique[k]` is the index of the k-th distinct input, and
        // `source[i]` is the distinct slot input `i` maps to.
        let mut unique: Vec<usize> = Vec::new();
        let mut source: Vec<usize> = Vec::with_capacity(inputs.len());
        for (i, input) in inputs.iter().enumerate() {
            match unique.iter().position(|&u| &inputs[u] == input) {
                Some(k) => source.push(k),
                None => {
                    source.push(unique.len());
                    unique.push(i);
                }
            }
        }
        let uniq: Vec<&ModelInput> = unique.iter().map(|&i| &inputs[i]).collect();
        let logits = self.forward_stacked(&uniq);
        if uniq.len() == inputs.len() {
            return logits;
        }
        let mut out = Matrix::zeros(inputs.len(), self.config.classes);
        for (i, &k) in source.iter().enumerate() {
            out.row_mut(i).copy_from_slice(logits.row(k));
        }
        out
    }

    /// Per-sample geometry: FPS centroids, exactly as the per-sample
    /// path computes them (grouping is geometry-dependent, so it cannot
    /// batch across distinct clouds — the MLPs can).
    fn batch_geometry(&self, inputs: &[&ModelInput]) -> BatchGeometry {
        let mut clouds = Vec::with_capacity(inputs.len());
        let mut centroids: Vec<Vec<Vec3>> = Vec::with_capacity(inputs.len());
        for input in inputs {
            let pos_cloud = PointCloud::from_positions(input.positions.iter().copied());
            let idx = farthest_point_indices(&pos_cloud, self.config.sa1_centroids);
            centroids.push(idx.iter().map(|&i| input.positions[i]).collect());
            clouds.push(pos_cloud);
        }
        let counts1 = centroids.iter().map(|c| c.len()).collect();
        BatchGeometry {
            clouds,
            centroids,
            counts1,
        }
    }

    /// SA2 grouping over SA1 centroids, stacked across the batch.
    /// Member indices are recorded as global `sa1_concat` rows so the
    /// backward pass can scatter gradients without per-sample offsets.
    fn stack_sa2(&self, geo: &BatchGeometry, sa1_concat: &Matrix) -> Sa2Stack {
        let cfg = &self.config;
        let sa2 = &cfg.sa2_scale;
        let sa2_width = 3 + sa1_concat.cols();
        let mut counts2: Vec<usize> = Vec::with_capacity(geo.centroids.len());
        let mut lens: Vec<usize> = Vec::new();
        let mut members_all: Vec<Vec<usize>> = Vec::new();
        let mut rows: Vec<f32> = Vec::new();
        let mut row_off = 0; // sample s's first row within sa1_concat
        for (s, cents) in geo.centroids.iter().enumerate() {
            let cent_cloud = PointCloud::from_positions(cents.iter().copied());
            let c2_idx = farthest_point_indices(&cent_cloud, cfg.sa2_centroids);
            counts2.push(c2_idx.len());
            for &ci in &c2_idx {
                let c = cents[ci];
                let members =
                    neighbors::ball_query_padded(&cent_cloud, c, sa2.radius, sa2.max_points);
                for &m in &members {
                    let d = (cents[m] - c) * (1.0 / sa2.radius);
                    rows.push(d.x as f32);
                    rows.push(d.y as f32);
                    rows.push(d.z as f32);
                    rows.extend_from_slice(sa1_concat.row(row_off + m));
                }
                lens.push(members.len());
                members_all.push(members.iter().map(|&m| row_off + m).collect());
            }
            row_off += geo.counts1[s];
        }
        Sa2Stack {
            stacked: Matrix::from_vec(rows.len() / sa2_width, sa2_width, rows),
            lens,
            counts2,
            members: members_all,
        }
    }

    /// The stacked forward over distinct inputs (see
    /// [`GesIDNet::forward_batch`] for the kernel layout).
    fn forward_stacked(&self, inputs: &[&ModelInput]) -> Matrix {
        let cfg = &self.config;
        let c1_dim: usize = cfg.sa1_scales.iter().map(|s| s.out).sum();
        let geo = self.batch_geometry(inputs);
        let total_c1: usize = geo.counts1.iter().sum();

        // --- SA1: per scale, stack every group of every sample -------
        let mut sa1_concat = Matrix::zeros(total_c1, c1_dim);
        let mut col_off = 0;
        for (scale, mlp) in cfg.sa1_scales.iter().zip(&self.sa1_mlps) {
            let (stacked, lens) = stack_sa1_scale(inputs, &geo, scale);
            let pooled = MaxPool.forward_segments(&mlp.infer(&stacked), &lens);
            for r in 0..total_c1 {
                sa1_concat.row_mut(r)[col_off..col_off + scale.out].copy_from_slice(pooled.row(r));
            }
            col_off += scale.out;
        }

        // --- Low-level feature F1: one projection over all samples'
        // centroid rows, pooled per sample ----------------------------
        let low = Relu.forward(&self.low_proj.forward(&sa1_concat));
        let f1 = MaxPool.forward_segments(&low, &geo.counts1); // b × low_dim

        // --- SA2 over SA1 centroids, stacked across the batch --------
        let sa2s = self.stack_sa2(&geo, &sa1_concat);
        let sa2_out = MaxPool.forward_segments(&self.sa2_mlp.infer(&sa2s.stacked), &sa2s.lens);

        // --- High-level feature F2 -----------------------------------
        let high = Relu.forward(&self.high_proj.forward(&sa2_out));
        let f2 = MaxPool.forward_segments(&high, &sa2s.counts2); // b × high_dim

        // --- Attention fusion (Eqs. 2–3), batched: score all samples'
        // candidates with two multi-row passes of g, then weight
        // per row. Only Y¹ is needed — P1 is the inference output. ----
        let y1 = if cfg.fusion {
            fuse_batch(&self.rb_low, &self.g1, &f2, &f1).0
        } else {
            f1
        };

        // --- Primary head P1 as multi-row matmuls --------------------
        let hidden = Relu.forward(&self.head1_a.forward(&y1));
        self.head1_b.forward(&hidden)
    }

    /// Batched training forward: the same stacked kernel layout as
    /// [`GesIDNet::forward_stacked`], but keeping every intermediate
    /// (MLP traces, segment argmaxes, fusion weights) and running the
    /// auxiliary head P2, which inference skips.
    fn forward_batch_trace(&self, inputs: &[&ModelInput]) -> BatchTrace {
        let cfg = &self.config;
        let c1_dim: usize = cfg.sa1_scales.iter().map(|s| s.out).sum();
        let geo = self.batch_geometry(inputs);
        let total_c1: usize = geo.counts1.iter().sum();

        // --- SA1 with traces -----------------------------------------
        let mut sa1_concat = Matrix::zeros(total_c1, c1_dim);
        let mut sa1 = Vec::with_capacity(self.sa1_mlps.len());
        let mut col_off = 0;
        for (scale, mlp) in cfg.sa1_scales.iter().zip(&self.sa1_mlps) {
            let (stacked, lens) = stack_sa1_scale(inputs, &geo, scale);
            let (out, mlp_trace) = mlp.forward(stacked);
            let (pooled, pool_args) = MaxPool.forward_segments_trace(&out, &lens);
            for r in 0..total_c1 {
                sa1_concat.row_mut(r)[col_off..col_off + scale.out].copy_from_slice(pooled.row(r));
            }
            col_off += scale.out;
            sa1.push(StackedScaleTrace {
                lens,
                mlp: mlp_trace,
                pool_args,
            });
        }

        // --- Low-level feature F1 ------------------------------------
        let low_pre = self.low_proj.forward(&sa1_concat);
        let low_act = Relu.forward(&low_pre);
        let (f1, f1_args) = MaxPool.forward_segments_trace(&low_act, &geo.counts1);

        // --- SA2 with traces -----------------------------------------
        let sa2s = self.stack_sa2(&geo, &sa1_concat);
        let (out2, sa2_mlp_trace) = self.sa2_mlp.forward(sa2s.stacked);
        let (sa2_out, sa2_pool_args) = MaxPool.forward_segments_trace(&out2, &sa2s.lens);

        // --- High-level feature F2 -----------------------------------
        let high_pre = self.high_proj.forward(&sa2_out);
        let high_act = Relu.forward(&high_pre);
        let (f2, f2_args) = MaxPool.forward_segments_trace(&high_act, &sa2s.counts2);

        // --- Attention fusion, both levels ---------------------------
        let (y1, fusion1) = if cfg.fusion {
            let (y, t) = fuse_batch(&self.rb_low, &self.g1, &f2, &f1);
            (y, Some(t))
        } else {
            (f1.clone(), None)
        };
        let (y2, fusion2) = if cfg.fusion {
            let (y, t) = fuse_batch(&self.rb_high, &self.g2, &f1, &f2);
            (y, Some(t))
        } else {
            (f2.clone(), None)
        };

        // --- Heads (multi-row) ---------------------------------------
        let h1_pre = self.head1_a.forward(&y1);
        let h1_act = Relu.forward(&h1_pre);
        let logits1 = self.head1_b.forward(&h1_act);

        let h2_pre_a = self.head2_a.forward(&y2);
        let h2_act_a = Relu.forward(&h2_pre_a);
        let h2_pre_b = self.head2_b.forward(&h2_act_a);
        let h2_act_b = Relu.forward(&h2_pre_b);
        let logits2 = self.head2_c.forward(&h2_act_b);

        BatchTrace {
            sa1,
            sa1_concat,
            counts1: geo.counts1,
            low_pre,
            f1_args,
            sa2_members: sa2s.members,
            sa2_lens: sa2s.lens,
            sa2_mlp_trace,
            sa2_pool_args,
            sa2_out,
            counts2: sa2s.counts2,
            high_pre,
            f2_args,
            fusion1,
            y1,
            fusion2,
            y2,
            h1_pre,
            h1_act,
            logits1,
            h2_pre_a,
            h2_act_a,
            h2_pre_b,
            h2_act_b,
            logits2,
        }
    }

    /// Batched backward: mirrors [`GesIDNet::backward_full`] stage for
    /// stage, but every Linear/ReLU backward runs once over all
    /// samples' stacked rows and every pooled gradient scatters through
    /// [`MaxPool::backward_segments`]. Gradients accumulate for the
    /// whole mini-batch; the caller takes one optimizer step. Returns
    /// the summed loss.
    fn backward_batch(&mut self, t: &BatchTrace, labels: &[usize]) -> f32 {
        let b = labels.len();
        let mut total_loss = 0.0f32;
        let mut g1m = Matrix::zeros(b, self.config.classes);
        let mut g2m = Matrix::zeros(b, self.config.classes);
        for (i, &label) in labels.iter().enumerate() {
            let (l1, grad1) = softmax_cross_entropy(t.logits1.row(i), label);
            let (l2, grad2) = softmax_cross_entropy(t.logits2.row(i), label);
            g1m.row_mut(i).copy_from_slice(&grad1);
            for (dst, g) in g2m.row_mut(i).iter_mut().zip(&grad2) {
                *dst = g * self.config.aux_weight;
            }
            total_loss += l1 + self.config.aux_weight * l2;
        }

        // Head 1 backward → dY1 (b × low_dim).
        let g = self.head1_b.backward(&t.h1_act, &g1m);
        let g = Relu.backward(&t.h1_pre, &g);
        let dy1 = self.head1_a.backward(&t.y1, &g);

        // Head 2 backward → dY2 (b × high_dim).
        let g = self.head2_c.backward(&t.h2_act_b, &g2m);
        let g = Relu.backward(&t.h2_pre_b, &g);
        let g = self.head2_b.backward(&t.h2_act_a, &g);
        let g = Relu.backward(&t.h2_pre_a, &g);
        let dy2 = self.head2_a.backward(&t.y2, &g);

        // Fusion backward → dF1, dF2 (accumulated from both levels).
        let (df1, df2) = match (&t.fusion1, &t.fusion2) {
            (Some(t1), Some(t2)) => {
                let (d_other, d_own) =
                    fuse_backward_batch(&mut self.rb_low, &mut self.g1, t1, &dy1);
                let mut df2 = d_other;
                let mut df1 = d_own;
                let (d_other, d_own) =
                    fuse_backward_batch(&mut self.rb_high, &mut self.g2, t2, &dy2);
                df1.add_assign(&d_other);
                df2.add_assign(&d_own);
                (df1, df2)
            }
            _ => (dy1, dy2),
        };

        // High branch backward: F2 → sa2_out rows.
        let g_high = MaxPool.backward_segments(&t.counts2, &t.f2_args, &df2);
        let g_high = Relu.backward(&t.high_pre, &g_high);
        let d_sa2_out = self.high_proj.backward(&t.sa2_out, &g_high);

        // SA2 backward: one stacked MLP pass, then scatter into the
        // global SA1 concat rows each group gathered from.
        let g_pool2 = MaxPool.backward_segments(&t.sa2_lens, &t.sa2_pool_args, &d_sa2_out);
        let g_group2 = self.sa2_mlp.backward(&t.sa2_mlp_trace, &g_pool2);
        let mut d_sa1_concat = Matrix::zeros(t.sa1_concat.rows(), t.sa1_concat.cols());
        let mut base = 0;
        for members in &t.sa2_members {
            for (r, &m) in members.iter().enumerate() {
                let src = g_group2.row(base + r);
                let dst = d_sa1_concat.row_mut(m);
                for (d, s) in dst.iter_mut().zip(&src[3..]) {
                    *d += s;
                }
                // positional gradient (src[0..3]) stops here: point
                // coordinates are inputs, not parameters.
            }
            base += members.len();
        }

        // Low branch backward: F1 → SA1 concat rows.
        let g_low = MaxPool.backward_segments(&t.counts1, &t.f1_args, &df1);
        let g_low = Relu.backward(&t.low_pre, &g_low);
        let d_low = self.low_proj.backward(&t.sa1_concat, &g_low);
        d_sa1_concat.add_assign(&d_low);

        // SA1 backward per scale: slice this scale's columns out of the
        // concat gradient and push all samples' groups through the
        // shared MLP in one stacked pass.
        let mut offset = 0;
        for (scale_i, scale) in self.config.sa1_scales.iter().enumerate() {
            let st = &t.sa1[scale_i];
            let width = scale.out;
            let mut d_scale = Matrix::zeros(d_sa1_concat.rows(), width);
            for r in 0..d_sa1_concat.rows() {
                d_scale
                    .row_mut(r)
                    .copy_from_slice(&d_sa1_concat.row(r)[offset..offset + width]);
            }
            let g_pool = MaxPool.backward_segments(&st.lens, &st.pool_args, &d_scale);
            let _ = self.sa1_mlps[scale_i].backward(&st.mlp, &g_pool);
            offset += width;
        }

        total_loss
    }

    fn backward_full(&mut self, input: &ModelInput, trace: &Trace, label: usize) -> f32 {
        let (loss1, grad1) = softmax_cross_entropy(&trace.logits1, label);
        let (loss2, grad2_raw) = softmax_cross_entropy(&trace.logits2, label);
        let grad2: Vec<f32> = grad2_raw
            .iter()
            .map(|g| g * self.config.aux_weight)
            .collect();

        // Head 1 backward → dY1.
        let g = Matrix::from_rows(&[grad1]);
        let g = self.head1_b.backward(&trace.h1_act, &g);
        let g = Relu.backward(&trace.h1_pre, &g);
        let y1_m = Matrix::from_rows(&[trace.y1.clone()]);
        let dy1 = self.head1_a.backward(&y1_m, &g).row(0).to_vec();

        // Head 2 backward → dY2.
        let g = Matrix::from_rows(&[grad2]);
        let g = self.head2_c.backward(&trace.h2_act_b, &g);
        let g = Relu.backward(&trace.h2_pre_b, &g);
        let g = self.head2_b.backward(&trace.h2_act_a, &g);
        let g = Relu.backward(&trace.h2_pre_a, &g);
        let y2_m = Matrix::from_rows(&[trace.y2.clone()]);
        let dy2 = self.head2_a.backward(&y2_m, &g).row(0).to_vec();

        // Fusion backward → dF1, dF2 (accumulated from both levels).
        let mut df1 = vec![0.0f32; trace.f1.len()];
        let mut df2 = vec![0.0f32; trace.f2.len()];
        match (&trace.fusion1, &trace.fusion2) {
            (Some(t1), Some(t2)) => {
                let (d_other, d_own) = fuse_backward(&mut self.rb_low, &mut self.g1, t1, &dy1);
                add_into(&mut df2, &d_other);
                add_into(&mut df1, &d_own);
                let (d_other, d_own) = fuse_backward(&mut self.rb_high, &mut self.g2, t2, &dy2);
                add_into(&mut df1, &d_other);
                add_into(&mut df2, &d_own);
            }
            _ => {
                add_into(&mut df1, &dy1);
                add_into(&mut df2, &dy2);
            }
        }

        // High branch backward: F2 → sa2_out rows.
        let g_high = MaxPool.backward(trace.high_act.rows(), &trace.high_arg, &df2);
        let g_high = Relu.backward(&trace.high_pre, &g_high);
        let d_sa2_out = self.high_proj.backward(&trace.sa2_out, &g_high);

        // SA2 backward: distribute into SA1 concat rows.
        let c1_dim = trace.sa1_concat.cols();
        let mut d_sa1_concat = Matrix::zeros(trace.sa1_concat.rows(), c1_dim);
        for (k, gt) in trace.c2_of_c1.iter().enumerate() {
            let g_pool = MaxPool.backward(gt.group_rows, &gt.pool_arg, d_sa2_out.row(k));
            let g_group = self.sa2_mlp.backward(&gt.mlp, &g_pool);
            for (r, &m) in gt.members.iter().enumerate() {
                let src = g_group.row(r);
                let dst = d_sa1_concat.row_mut(m);
                for (d, s) in dst.iter_mut().zip(&src[3..]) {
                    *d += s;
                }
                // positional gradient (src[0..3]) stops here: point
                // coordinates are inputs, not parameters.
            }
        }

        // Low branch backward: F1 → SA1 concat rows.
        let g_low = MaxPool.backward(trace.low_act.rows(), &trace.low_arg, &df1);
        let g_low = Relu.backward(&trace.low_pre, &g_low);
        let d_low = self.low_proj.backward(&trace.sa1_concat, &g_low);
        d_sa1_concat.add_assign(&d_low);

        // SA1 backward per scale.
        let mut offset = 0;
        for (scale_i, scale) in self.config.sa1_scales.iter().enumerate() {
            let width = scale.out;
            for (j, gt) in trace.sa1[scale_i].iter().enumerate() {
                let slice = &d_sa1_concat.row(j)[offset..offset + width];
                if slice.iter().all(|v| *v == 0.0) {
                    continue;
                }
                let g_pool = MaxPool.backward(gt.group_rows, &gt.pool_arg, slice);
                let _ = self.sa1_mlps[scale_i].backward(&gt.mlp, &g_pool);
            }
            offset += width;
        }

        let _ = input;
        loss1 + self.config.aux_weight * loss2
    }
}

/// Stacks every SA1 group of every sample for one scale into a single
/// `(Σ group rows) × (3 + POINT_FEATURES)` matrix, plus the per-group
/// row counts (sample-major, centroid order — the same order the
/// per-sample path visits groups).
fn stack_sa1_scale(
    inputs: &[&ModelInput],
    geo: &BatchGeometry,
    scale: &SaScale,
) -> (Matrix, Vec<usize>) {
    let group_width = 3 + POINT_FEATURES;
    let mut lens: Vec<usize> = Vec::new();
    let mut rows: Vec<f32> = Vec::new();
    for (s, input) in inputs.iter().enumerate() {
        for &c in &geo.centroids[s] {
            let members =
                neighbors::ball_query_padded(&geo.clouds[s], c, scale.radius, scale.max_points);
            for &m in &members {
                let d = (input.positions[m] - c) * (1.0 / scale.radius);
                rows.push(d.x as f32);
                rows.push(d.y as f32);
                rows.push(d.z as f32);
                rows.extend_from_slice(input.points.row(m));
            }
            lens.push(members.len());
        }
    }
    (
        Matrix::from_vec(rows.len() / group_width, group_width, rows),
        lens,
    )
}

/// Batched attention fusion (Eqs. 2–3): the RB and both scoring passes
/// run as multi-row kernels, then each row is softmax-weighted
/// independently. Row `i` is bit-identical to [`fuse`] on sample `i`'s
/// features (row-independent kernels, same operation order).
fn fuse_batch(rb: &Linear, g: &Linear, other: &Matrix, own: &Matrix) -> (Matrix, BatchFusionTrace) {
    let resized_pre = rb.forward(other);
    let resized = Relu.forward(&resized_pre);
    let scores_resized = g.forward(&resized); // b × 1
    let scores_own = g.forward(own); // b × 1
    let b = own.rows();
    let mut y = Matrix::zeros(b, own.cols());
    let mut weights = Vec::with_capacity(b);
    for r in 0..b {
        let w = softmax(&[scores_resized.at(r, 0), scores_own.at(r, 0)]);
        for (j, out) in y.row_mut(r).iter_mut().enumerate() {
            *out = w[0] * resized.at(r, j) + w[1] * own.at(r, j);
        }
        weights.push([w[0], w[1]]);
    }
    (
        y,
        BatchFusionTrace {
            other: other.clone(),
            resized_pre,
            resized,
            own: own.clone(),
            weights,
        },
    )
}

/// Backward of [`fuse_batch`]; returns `(d_other, d_own)` with one row
/// per sample. The attention-weight path (through the softmax over the
/// two candidate scores) is computed row-wise; the RB and `g` backward
/// passes run over all rows at once.
fn fuse_backward_batch(
    rb: &mut Linear,
    g: &mut Linear,
    t: &BatchFusionTrace,
    dy: &Matrix,
) -> (Matrix, Matrix) {
    let b = dy.rows();
    let mut d_resized = Matrix::zeros(b, t.resized.cols());
    let mut d_own = Matrix::zeros(b, t.own.cols());
    let mut da = Matrix::zeros(b, 1);
    let mut db = Matrix::zeros(b, 1);
    for r in 0..b {
        let [wa, wb] = t.weights[r];
        let dy_r = dy.row(r);
        // Direct path.
        for (d, v) in d_resized.row_mut(r).iter_mut().zip(dy_r) {
            *d = v * wa;
        }
        for (d, v) in d_own.row_mut(r).iter_mut().zip(dy_r) {
            *d = v * wb;
        }
        // Attention-weight path through the softmax over (a, b).
        let dwa: f32 = dy_r.iter().zip(t.resized.row(r)).map(|(d, v)| d * v).sum();
        let dwb: f32 = dy_r.iter().zip(t.own.row(r)).map(|(d, v)| d * v).sum();
        let common = wa * dwa + wb * dwb;
        da.set(r, 0, wa * (dwa - common));
        db.set(r, 0, wb * (dwb - common));
    }
    // Through g on both candidates, all rows at once.
    d_resized.add_assign(&g.backward(&t.resized, &da));
    d_own.add_assign(&g.backward(&t.own, &db));
    // Through the RB to the other level's raw feature.
    let g_rb = Relu.backward(&t.resized_pre, &d_resized);
    let d_other = rb.backward(&t.other, &g_rb);
    (d_other, d_own)
}

/// Attention fusion forward (Eqs. 2–3): resize `other` to `own`'s level
/// via the RB, score both with `g`, softmax-weight and sum.
fn fuse(rb: &Linear, g: &Linear, other: &[f32], own: &[f32]) -> (Vec<f32>, FusionTrace) {
    let resized_pre = rb.forward_batch(&[other]);
    let resized = Relu.forward(&resized_pre);
    let a = g.forward(&resized).at(0, 0);
    let b = g.forward_batch(&[own]).at(0, 0);
    let w = softmax(&[a, b]);
    let y: Vec<f32> = resized
        .row(0)
        .iter()
        .zip(own.iter())
        .map(|(r, o)| w[0] * r + w[1] * o)
        .collect();
    (
        y,
        FusionTrace {
            other_input: other.to_vec(),
            resized_pre: resized_pre.row(0).to_vec(),
            resized: resized.row(0).to_vec(),
            own: own.to_vec(),
            weights: [w[0], w[1]],
        },
    )
}

/// Backward of [`fuse`]; returns `(d_other, d_own)`.
fn fuse_backward(
    rb: &mut Linear,
    g: &mut Linear,
    t: &FusionTrace,
    dy: &[f32],
) -> (Vec<f32>, Vec<f32>) {
    let [wa, wb] = t.weights;
    // Direct path.
    let mut d_resized: Vec<f32> = dy.iter().map(|v| v * wa).collect();
    let mut d_own: Vec<f32> = dy.iter().map(|v| v * wb).collect();
    // Attention-weight path: dL/dwa = dy·resized, dL/dwb = dy·own; then
    // through the softmax over (a, b).
    let dwa: f32 = dy.iter().zip(&t.resized).map(|(d, r)| d * r).sum();
    let dwb: f32 = dy.iter().zip(&t.own).map(|(d, o)| d * o).sum();
    let common = wa * dwa + wb * dwb;
    let da = wa * (dwa - common);
    let db = wb * (dwb - common);
    // Through g on both candidates.
    let resized_m = Matrix::from_rows(&[t.resized.clone()]);
    let g_from_a = g.backward(&resized_m, &Matrix::from_rows(&[vec![da]]));
    add_into(&mut d_resized, g_from_a.row(0));
    let own_m = Matrix::from_rows(&[t.own.clone()]);
    let g_from_b = g.backward(&own_m, &Matrix::from_rows(&[vec![db]]));
    add_into(&mut d_own, g_from_b.row(0));
    // Through the RB to the other level's raw feature.
    let pre_m = Matrix::from_rows(&[t.resized_pre.clone()]);
    let g_rb = Relu.backward(&pre_m, &Matrix::from_rows(&[d_resized]));
    let other_m = Matrix::from_rows(&[t.other_input.clone()]);
    let d_other = rb.backward(&other_m, &g_rb).row(0).to_vec();
    (d_other, d_own)
}

fn add_into(dst: &mut [f32], src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d += s;
    }
}

impl PointModel for GesIDNet {
    fn classes(&self) -> usize {
        self.config.classes
    }

    fn logits(&self, input: &ModelInput) -> Vec<f32> {
        // The primary prediction P1 is the inference output (paper §IV-C).
        self.forward_full(input).logits1
    }

    fn logits_batch(&self, inputs: &[ModelInput]) -> Matrix {
        // Overrides the map-per-sample default with the genuinely
        // batched forward (deduped grouping + multi-row kernels).
        self.forward_batch(inputs)
    }

    fn train_step(&mut self, input: &ModelInput, label: usize) -> f32 {
        let trace = self.forward_full(input);
        self.backward_full(input, &trace, label)
    }

    fn train_step_batch(&mut self, inputs: &[&ModelInput], labels: &[usize]) -> f32 {
        assert_eq!(inputs.len(), labels.len(), "inputs/labels length mismatch");
        match inputs.len() {
            0 => 0.0,
            // A batch of one gains nothing from stacking; delegating
            // keeps batch_size=1 training bit-identical to the
            // historical per-sample loop.
            1 => self.train_step(inputs[0], labels[0]),
            _ => {
                let trace = self.forward_batch_trace(inputs);
                self.backward_batch(&trace, labels)
            }
        }
    }

    fn name(&self) -> &'static str {
        "GesIDNet"
    }

    fn feature_taps(&self, input: &ModelInput) -> Option<(Vec<f32>, Vec<f32>, Vec<f32>)> {
        let t = self.forward_full(input);
        Some((t.f1, t.f2, t.y1))
    }
}

impl Parameterized for GesIDNet {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for m in &mut self.sa1_mlps {
            m.for_each_param(f);
        }
        self.low_proj.for_each_param(f);
        self.sa2_mlp.for_each_param(f);
        self.high_proj.for_each_param(f);
        self.rb_low.for_each_param(f);
        self.rb_high.for_each_param(f);
        self.g1.for_each_param(f);
        self.g2.for_each_param(f);
        self.head1_a.for_each_param(f);
        self.head1_b.for_each_param(f);
        self.head2_a.for_each_param(f);
        self.head2_b.for_each_param(f);
        self.head2_c.for_each_param(f);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&[f32])) {
        for m in &self.sa1_mlps {
            m.visit_params(f);
        }
        self.low_proj.visit_params(f);
        self.sa2_mlp.visit_params(f);
        self.high_proj.visit_params(f);
        self.rb_low.visit_params(f);
        self.rb_high.visit_params(f);
        self.g1.visit_params(f);
        self.g2.visit_params(f);
        self.head1_a.visit_params(f);
        self.head1_b.visit_params(f);
        self.head2_a.visit_params(f);
        self.head2_b.visit_params(f);
        self.head2_c.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{encode, FeatureConfig};
    use gp_nn::argmax;
    use gp_pointcloud::Point;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_input(seed: u64, shift: f64) -> ModelInput {
        let cloud: PointCloud = (0..24)
            .map(|i| {
                let t = i as f64 * 0.4 + seed as f64;
                Point::new(
                    Vec3::new(
                        t.sin() * 0.3 + shift,
                        1.2 + t.cos() * 0.2,
                        1.0 + (t * 0.7).sin() * 0.3,
                    ),
                    (t * 1.3).sin(),
                    15.0,
                )
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        encode(
            &cloud,
            &[],
            &FeatureConfig {
                num_points: 24,
                ..FeatureConfig::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = GesIDNet::new(GesIDNetConfig::for_classes(7), &mut rng);
        let logits = net.logits(&toy_input(1, 0.0));
        assert_eq!(logits.len(), 7);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_inference() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = GesIDNet::new(GesIDNetConfig::for_classes(4), &mut rng);
        let input = toy_input(2, 0.0);
        assert_eq!(net.logits(&input), net.logits(&input));
    }

    #[test]
    fn train_step_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = GesIDNet::new(GesIDNetConfig::tiny(3), &mut rng);
        let mut adam = gp_nn::Adam::new(5e-3);
        let input = toy_input(3, 0.0);
        let first = net.train_step(&input, 1);
        adam.begin_step();
        net.for_each_param(&mut |p, g| adam.update(p, g));
        let mut last = first;
        for _ in 0..60 {
            last = net.train_step(&input, 1);
            adam.begin_step();
            net.for_each_param(&mut |p, g| adam.update(p, g));
        }
        assert!(
            last < first * 0.5,
            "loss should drop: first {first}, last {last}"
        );
    }

    #[test]
    fn learns_to_separate_two_blobs() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = GesIDNet::new(GesIDNetConfig::tiny(2), &mut rng);
        let mut adam = gp_nn::Adam::new(5e-3);
        let data: Vec<(ModelInput, usize)> = (0..8)
            .map(|i| {
                let label = i % 2;
                (
                    toy_input(i as u64, if label == 0 { -0.5 } else { 0.5 }),
                    label,
                )
            })
            .collect();
        for _ in 0..80 {
            for (x, y) in &data {
                net.train_step(x, *y);
                adam.begin_step();
                net.for_each_param(&mut |p, g| adam.update(p, g));
            }
        }
        let correct = data
            .iter()
            .filter(|(x, y)| argmax(&net.logits(x)) == *y)
            .count();
        assert!(correct >= 7, "classification failed: {correct}/8");
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Tiny network, spot-check parameters across all blocks.
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = GesIDNet::new(GesIDNetConfig::tiny(3), &mut rng);
        let input = toy_input(4, 0.0);
        let label = 2;

        net.zero_grads();
        net.train_step(&input, label);
        let mut analytic = Vec::new();
        net.for_each_param(&mut |_, g| analytic.extend_from_slice(g));

        let loss_of = |net: &GesIDNet| {
            let t = net.forward_full(&input);
            let (l1, _) = softmax_cross_entropy(&t.logits1, label);
            let (l2, _) = softmax_cross_entropy(&t.logits2, label);
            l1 + l2
        };

        let eps = 1e-2f32;
        let total = analytic.len();
        let step = (total / 60).max(1);
        let mut checked = 0;
        let mut failures = Vec::new();
        for idx in (0..total).step_by(step) {
            let mut pos = 0;
            net.for_each_param(&mut |p, _| {
                if idx >= pos && idx < pos + p.len() {
                    p[idx - pos] += eps;
                }
                pos += p.len();
            });
            let lp = loss_of(&net);
            let mut pos = 0;
            net.for_each_param(&mut |p, _| {
                if idx >= pos && idx < pos + p.len() {
                    p[idx - pos] -= 2.0 * eps;
                }
                pos += p.len();
            });
            let lm = loss_of(&net);
            let mut pos = 0;
            net.for_each_param(&mut |p, _| {
                if idx >= pos && idx < pos + p.len() {
                    p[idx - pos] += eps;
                }
                pos += p.len();
            });
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic[idx];
            if (a - numeric).abs() > 4e-2 * (1.0 + numeric.abs()) {
                failures.push((idx, a, numeric));
            }
            checked += 1;
        }
        assert!(checked > 20);
        assert!(
            failures.len() <= checked / 10,
            "gradient mismatches: {failures:?}"
        );
    }

    #[test]
    fn forward_batch_bit_exact_with_per_sample_logits() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = GesIDNet::new(GesIDNetConfig::for_classes(5), &mut rng);
        for batch in 1..=4usize {
            let inputs: Vec<ModelInput> = (0..batch)
                .map(|k| toy_input(10 + k as u64, 0.1 * k as f64))
                .collect();
            let batched = net.forward_batch(&inputs);
            assert_eq!(batched.rows(), batch);
            for (i, input) in inputs.iter().enumerate() {
                assert_eq!(
                    batched.row(i),
                    net.logits(input).as_slice(),
                    "batch {batch} row {i}"
                );
            }
        }
        assert_eq!(net.forward_batch(&[]).rows(), 0);
    }

    #[test]
    fn forward_batch_dedupes_identical_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = GesIDNet::new(GesIDNetConfig::for_classes(3), &mut rng);
        let a = toy_input(20, 0.0);
        let b = toy_input(21, 0.4);
        // Duplicates interleaved with distinct inputs must still land
        // each input's own logits in its own row.
        let inputs = vec![a.clone(), b.clone(), a.clone(), a, b];
        let batched = net.forward_batch(&inputs);
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(batched.row(i), net.logits(input).as_slice(), "row {i}");
        }
        assert_eq!(batched.row(0), batched.row(2));
        assert_eq!(batched.row(1), batched.row(4));
    }

    #[test]
    fn forward_batch_without_fusion_matches_too() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = GesIDNet::new(
            GesIDNetConfig {
                fusion: false,
                ..GesIDNetConfig::for_classes(3)
            },
            &mut rng,
        );
        let inputs: Vec<ModelInput> = (0..3).map(|k| toy_input(30 + k, 0.0)).collect();
        let batched = net.forward_batch(&inputs);
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(batched.row(i), net.logits(input).as_slice(), "row {i}");
        }
    }

    #[test]
    fn fusion_ablation_changes_outputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let with = GesIDNet::new(GesIDNetConfig::for_classes(3), &mut rng);
        let mut rng = StdRng::seed_from_u64(5);
        let without = GesIDNet::new(
            GesIDNetConfig {
                fusion: false,
                ..GesIDNetConfig::for_classes(3)
            },
            &mut rng,
        );
        let input = toy_input(6, 0.0);
        assert_ne!(with.logits(&input), without.logits(&input));
    }

    #[test]
    fn feature_taps_exposed() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = GesIDNet::new(GesIDNetConfig::for_classes(3), &mut rng);
        let (low, high, fused) = net.feature_taps(&toy_input(7, 0.0)).unwrap();
        assert_eq!(low.len(), net.config().low_dim);
        assert_eq!(high.len(), net.config().high_dim);
        assert_eq!(fused.len(), net.config().low_dim);
    }

    fn grads_of(net: &mut GesIDNet) -> Vec<f32> {
        let mut g = Vec::new();
        net.for_each_param(&mut |_, gs| g.extend_from_slice(gs));
        g
    }

    #[test]
    fn train_step_batch_of_one_bit_identical_to_train_step() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut a = GesIDNet::new(GesIDNetConfig::tiny(3), &mut rng);
        let mut b = a.clone();
        let input = toy_input(40, 0.0);
        let la = a.train_step(&input, 2);
        let lb = b.train_step_batch(&[&input], &[2]);
        assert_eq!(la, lb);
        assert_eq!(grads_of(&mut a), grads_of(&mut b));
    }

    #[test]
    fn batched_gradients_match_sequential_sum() {
        // One batched backward must accumulate the same total gradient
        // as per-sample steps over the batch. Not bit-exact — the
        // batched path associates the float additions differently — so
        // compare with a relative tolerance.
        let mut rng = StdRng::seed_from_u64(12);
        let mut seq = GesIDNet::new(GesIDNetConfig::for_classes(3), &mut rng);
        let mut bat = seq.clone();
        let inputs: Vec<ModelInput> = (0..4).map(|k| toy_input(50 + k, 0.15 * k as f64)).collect();
        let labels = [0usize, 1, 2, 1];

        let mut seq_loss = 0.0f32;
        for (x, &y) in inputs.iter().zip(&labels) {
            seq_loss += seq.train_step(x, y);
        }
        let refs: Vec<&ModelInput> = inputs.iter().collect();
        let bat_loss = bat.train_step_batch(&refs, &labels);

        assert!(
            (seq_loss - bat_loss).abs() <= 1e-4 * (1.0 + seq_loss.abs()),
            "loss: sequential {seq_loss} vs batched {bat_loss}"
        );
        let gs = grads_of(&mut seq);
        let gb = grads_of(&mut bat);
        assert_eq!(gs.len(), gb.len());
        let mut worst = 0.0f32;
        for (i, (s, b)) in gs.iter().zip(&gb).enumerate() {
            let rel = (s - b).abs() / (1e-4 + s.abs().max(b.abs()));
            assert!(
                rel < 1e-2,
                "grad {i}: sequential {s} vs batched {b} (rel {rel})"
            );
            worst = worst.max(rel);
        }
        assert!(worst.is_finite());
    }

    #[test]
    fn batched_gradients_match_sequential_without_fusion() {
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = GesIDNetConfig {
            fusion: false,
            ..GesIDNetConfig::tiny(2)
        };
        let mut seq = GesIDNet::new(cfg, &mut rng);
        let mut bat = seq.clone();
        let inputs: Vec<ModelInput> = (0..3).map(|k| toy_input(60 + k, 0.2 * k as f64)).collect();
        let labels = [1usize, 0, 1];
        for (x, &y) in inputs.iter().zip(&labels) {
            seq.train_step(x, y);
        }
        let refs: Vec<&ModelInput> = inputs.iter().collect();
        bat.train_step_batch(&refs, &labels);
        for (i, (s, b)) in grads_of(&mut seq)
            .iter()
            .zip(&grads_of(&mut bat))
            .enumerate()
        {
            let rel = (s - b).abs() / (1e-4 + s.abs().max(b.abs()));
            assert!(rel < 1e-2, "grad {i}: {s} vs {b}");
        }
    }

    #[test]
    fn batched_gradients_match_finite_differences() {
        // The batched backward checked directly against numeric
        // differentiation of the batched loss (not just against the
        // sequential path) — same spot-check scheme as the per-sample
        // gradient test.
        let mut rng = StdRng::seed_from_u64(14);
        let mut net = GesIDNet::new(GesIDNetConfig::tiny(3), &mut rng);
        let inputs: Vec<ModelInput> = (0..3).map(|k| toy_input(70 + k, 0.1 * k as f64)).collect();
        let refs: Vec<&ModelInput> = inputs.iter().collect();
        let labels = [2usize, 0, 1];

        net.zero_grads();
        net.train_step_batch(&refs, &labels);
        let mut analytic = Vec::new();
        net.for_each_param(&mut |_, g| analytic.extend_from_slice(g));

        let loss_of = |net: &GesIDNet| {
            let t = net.forward_batch_trace(&refs);
            let mut loss = 0.0f32;
            for (i, &label) in labels.iter().enumerate() {
                let (l1, _) = softmax_cross_entropy(t.logits1.row(i), label);
                let (l2, _) = softmax_cross_entropy(t.logits2.row(i), label);
                loss += l1 + l2;
            }
            loss
        };

        let eps = 1e-2f32;
        let total = analytic.len();
        let step = (total / 60).max(1);
        let mut checked = 0;
        let mut failures = Vec::new();
        for idx in (0..total).step_by(step) {
            let mut pos = 0;
            net.for_each_param(&mut |p, _| {
                if idx >= pos && idx < pos + p.len() {
                    p[idx - pos] += eps;
                }
                pos += p.len();
            });
            let lp = loss_of(&net);
            let mut pos = 0;
            net.for_each_param(&mut |p, _| {
                if idx >= pos && idx < pos + p.len() {
                    p[idx - pos] -= 2.0 * eps;
                }
                pos += p.len();
            });
            let lm = loss_of(&net);
            let mut pos = 0;
            net.for_each_param(&mut |p, _| {
                if idx >= pos && idx < pos + p.len() {
                    p[idx - pos] += eps;
                }
                pos += p.len();
            });
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic[idx];
            if (a - numeric).abs() > 4e-2 * (1.0 + numeric.abs()) {
                failures.push((idx, a, numeric));
            }
            checked += 1;
        }
        assert!(checked > 20);
        assert!(
            failures.len() <= checked / 10,
            "gradient mismatches: {failures:?}"
        );
    }

    #[test]
    fn batched_training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut net = GesIDNet::new(GesIDNetConfig::tiny(2), &mut rng);
        let mut adam = gp_nn::Adam::new(5e-3);
        let inputs: Vec<ModelInput> = (0..4)
            .map(|i| toy_input(80 + i, if i % 2 == 0 { -0.5 } else { 0.5 }))
            .collect();
        let refs: Vec<&ModelInput> = inputs.iter().collect();
        let labels = [0usize, 1, 0, 1];
        let first = net.train_step_batch(&refs, &labels);
        adam.begin_step();
        net.for_each_param(&mut |p, g| adam.update(p, g));
        let mut last = first;
        for _ in 0..60 {
            last = net.train_step_batch(&refs, &labels);
            adam.begin_step();
            net.for_each_param(&mut |p, g| adam.update(p, g));
        }
        assert!(
            last < first * 0.5,
            "batched loss should drop: first {first}, last {last}"
        );
    }

    #[test]
    fn batched_training_matches_sequential_predictions() {
        // Train two clones of the same network on the same data with
        // the same optimizer cadence — one stepping per-sample
        // gradients (historical path), one through the batched step.
        // The gradient sums differ only in float association, so the
        // trained models must agree on every prediction and land at
        // close losses.
        let mut rng = StdRng::seed_from_u64(16);
        let mut seq = GesIDNet::new(GesIDNetConfig::tiny(2), &mut rng);
        let mut bat = seq.clone();
        let mut adam_seq = gp_nn::Adam::new(5e-3);
        let mut adam_bat = gp_nn::Adam::new(5e-3);
        let data: Vec<(ModelInput, usize)> = (0..8)
            .map(|i| {
                let label = i % 2;
                (
                    toy_input(90 + i as u64, if label == 0 { -0.5 } else { 0.5 }),
                    label,
                )
            })
            .collect();

        let mut seq_loss = 0.0f32;
        let mut bat_loss = 0.0f32;
        for _ in 0..25 {
            for chunk in data.chunks(4) {
                seq_loss = chunk.iter().map(|(x, y)| seq.train_step(x, *y)).sum();
                adam_seq.begin_step();
                seq.for_each_param(&mut |p, g| adam_seq.update(p, g));

                let inputs: Vec<&ModelInput> = chunk.iter().map(|(x, _)| x).collect();
                let labels: Vec<usize> = chunk.iter().map(|(_, y)| *y).collect();
                bat_loss = bat.train_step_batch(&inputs, &labels);
                adam_bat.begin_step();
                bat.for_each_param(&mut |p, g| adam_bat.update(p, g));
            }
        }

        assert!(
            (seq_loss - bat_loss).abs() <= 0.05 * (1.0 + seq_loss.abs()),
            "final losses diverged: sequential {seq_loss} vs batched {bat_loss}"
        );
        for (i, (x, _)) in data.iter().enumerate() {
            assert_eq!(
                argmax(&seq.logits(x)),
                argmax(&bat.logits(x)),
                "prediction {i} diverged"
            );
        }
    }

    #[test]
    fn attention_weights_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(8);
        let rb = Linear::new(4, 3, &mut rng);
        let g = Linear::new(3, 1, &mut rng);
        let (_, trace) = fuse(&rb, &g, &[0.5, -0.2, 0.1, 0.9], &[1.0, 0.0, -1.0]);
        let sum = trace.weights[0] + trace.weights[1];
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(trace.weights.iter().all(|w| (0.0..=1.0).contains(w)));
    }
}
