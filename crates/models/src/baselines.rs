//! Baseline classifiers representing the comparison systems' input
//! families (paper §VI-A2).
//!
//! The exact PanArch / Tesla / mGesNet / mSeeNet networks are built for
//! their authors' chirp configurations; what the comparison in Tab. II
//! needs is a representative of each *input format family* trained on the
//! same preprocessed samples:
//!
//! * [`PointNet`] — raw point set, shared MLP + global max pool (the
//!   PointNet core inside PanArch/Tesla),
//! * [`ProfileCnn`] — concentrated position–Doppler profile + small CNN
//!   (the mHomeGes/mTransSee family),
//! * [`LstmNet`] — per-frame summary features + LSTM (the temporal
//!   modelling in Pantomime/Tesla).

use crate::features::{ModelInput, POINT_FEATURES, SEQUENCE_FEATURES};
use crate::PointModel;
use gp_nn::conv::{maxpool2x2, maxpool2x2_backward};
use gp_nn::{softmax_cross_entropy, Conv2d, Linear, Lstm, Matrix, MaxPool, Parameterized, Relu};
use rand::Rng;

/// PointNet-style classifier: shared MLP per point, global max pool, FC
/// head.
#[derive(Debug, Clone)]
pub struct PointNet {
    classes: usize,
    l1: Linear,
    l2: Linear,
    head_a: Linear,
    head_b: Linear,
}

impl PointNet {
    /// Creates the model.
    pub fn new<R: Rng>(classes: usize, rng: &mut R) -> Self {
        PointNet {
            classes,
            l1: Linear::new(POINT_FEATURES, 48, rng),
            l2: Linear::new(48, 96, rng),
            head_a: Linear::new(96, 48, rng),
            head_b: Linear::new(48, classes, rng),
        }
    }

    fn forward(&self, input: &ModelInput) -> PointNetTrace {
        let pre1 = self.l1.forward(&input.points);
        let act1 = Relu.forward(&pre1);
        let pre2 = self.l2.forward(&act1);
        let act2 = Relu.forward(&pre2);
        let (global, arg) = MaxPool.forward(&act2);
        let g_m = Matrix::from_rows(&[global.clone()]);
        let hpre = self.head_a.forward(&g_m);
        let hact = Relu.forward(&hpre);
        let logits = self.head_b.forward(&hact).row(0).to_vec();
        PointNetTrace {
            pre1,
            act1,
            pre2,
            act2,
            global,
            arg,
            hpre,
            hact,
            logits,
        }
    }
}

#[derive(Debug, Clone)]
struct PointNetTrace {
    pre1: Matrix,
    act1: Matrix,
    pre2: Matrix,
    act2: Matrix,
    global: Vec<f32>,
    arg: Vec<usize>,
    hpre: Matrix,
    hact: Matrix,
    logits: Vec<f32>,
}

impl PointModel for PointNet {
    fn classes(&self) -> usize {
        self.classes
    }

    fn logits(&self, input: &ModelInput) -> Vec<f32> {
        self.forward(input).logits
    }

    fn train_step(&mut self, input: &ModelInput, label: usize) -> f32 {
        let t = self.forward(input);
        let (loss, grad) = softmax_cross_entropy(&t.logits, label);
        let g = Matrix::from_rows(&[grad]);
        let g = self.head_b.backward(&t.hact, &g);
        let g = Relu.backward(&t.hpre, &g);
        let g_m = Matrix::from_rows(&[t.global.clone()]);
        let dglobal = self.head_a.backward(&g_m, &g);
        let g = MaxPool.backward(t.act2.rows(), &t.arg, dglobal.row(0));
        let g = Relu.backward(&t.pre2, &g);
        let g = self.l2.backward(&t.act1, &g);
        let g = Relu.backward(&t.pre1, &g);
        let _ = self.l1.backward(&input.points, &g);
        loss
    }

    fn name(&self) -> &'static str {
        "PointNet"
    }
}

impl Parameterized for PointNet {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.l1.for_each_param(f);
        self.l2.for_each_param(f);
        self.head_a.for_each_param(f);
        self.head_b.for_each_param(f);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&[f32])) {
        self.l1.visit_params(f);
        self.l2.visit_params(f);
        self.head_a.visit_params(f);
        self.head_b.visit_params(f);
    }
}

/// Profile CNN: two 3×3 conv + 2×2 pool stages over the Doppler×range
/// histogram, then an FC head.
#[derive(Debug, Clone)]
pub struct ProfileCnn {
    classes: usize,
    shape: (usize, usize),
    conv1: Conv2d,
    conv2: Conv2d,
    head_a: Linear,
    head_b: Linear,
}

impl ProfileCnn {
    /// Creates the model for profiles of `shape` (rows, cols). Both
    /// dimensions must be divisible by 4 (two pooling stages).
    ///
    /// # Panics
    ///
    /// Panics if the shape is not divisible by 4.
    pub fn new<R: Rng>(classes: usize, shape: (usize, usize), rng: &mut R) -> Self {
        assert!(
            shape.0 % 4 == 0 && shape.1 % 4 == 0,
            "profile shape must be divisible by 4"
        );
        let flat = 12 * (shape.0 / 4) * (shape.1 / 4);
        ProfileCnn {
            classes,
            shape,
            conv1: Conv2d::new(1, 6, rng),
            conv2: Conv2d::new(6, 12, rng),
            head_a: Linear::new(flat, 48, rng),
            head_b: Linear::new(48, classes, rng),
        }
    }

    #[allow(clippy::type_complexity)]
    fn forward(&self, input: &ModelInput) -> ProfileTrace {
        let (h, w) = self.shape;
        let c1 = self.conv1.forward(&input.profile, h, w);
        let a1: Vec<f32> = c1.iter().map(|v| v.max(0.0)).collect();
        let (p1, arg1) = maxpool2x2(&a1, 6, h, w);
        let (h2, w2) = (h / 2, w / 2);
        let c2 = self.conv2.forward(&p1, h2, w2);
        let a2: Vec<f32> = c2.iter().map(|v| v.max(0.0)).collect();
        let (p2, arg2) = maxpool2x2(&a2, 12, h2, w2);
        let flat = Matrix::from_rows(&[p2.clone()]);
        let hpre = self.head_a.forward(&flat);
        let hact = Relu.forward(&hpre);
        let logits = self.head_b.forward(&hact).row(0).to_vec();
        ProfileTrace {
            c1,
            a1,
            p1,
            arg1,
            c2,
            a2,
            p2,
            arg2,
            hpre,
            hact,
            logits,
        }
    }
}

#[derive(Debug, Clone)]
struct ProfileTrace {
    c1: Vec<f32>,
    a1: Vec<f32>,
    p1: Vec<f32>,
    arg1: Vec<usize>,
    c2: Vec<f32>,
    a2: Vec<f32>,
    p2: Vec<f32>,
    arg2: Vec<usize>,
    hpre: Matrix,
    hact: Matrix,
    logits: Vec<f32>,
}

impl PointModel for ProfileCnn {
    fn classes(&self) -> usize {
        self.classes
    }

    fn logits(&self, input: &ModelInput) -> Vec<f32> {
        self.forward(input).logits
    }

    fn train_step(&mut self, input: &ModelInput, label: usize) -> f32 {
        let (h, w) = self.shape;
        let (h2, w2) = (h / 2, w / 2);
        let t = self.forward(input);
        let (loss, grad) = softmax_cross_entropy(&t.logits, label);
        let g = Matrix::from_rows(&[grad]);
        let g = self.head_b.backward(&t.hact, &g);
        let g = Relu.backward(&t.hpre, &g);
        let flat = Matrix::from_rows(&[t.p2.clone()]);
        let dflat = self.head_a.backward(&flat, &g);
        let dp2 = dflat.row(0);
        let da2 = maxpool2x2_backward(dp2, &t.arg2, t.a2.len());
        let dc2: Vec<f32> = da2
            .iter()
            .zip(t.c2.iter())
            .map(|(g, &c)| if c > 0.0 { *g } else { 0.0 })
            .collect();
        let dp1 = self.conv2.backward(&t.p1, &dc2, h2, w2);
        let da1 = maxpool2x2_backward(&dp1, &t.arg1, t.a1.len());
        let dc1: Vec<f32> = da1
            .iter()
            .zip(t.c1.iter())
            .map(|(g, &c)| if c > 0.0 { *g } else { 0.0 })
            .collect();
        let _ = self.conv1.backward(&input.profile, &dc1, h, w);
        loss
    }

    fn name(&self) -> &'static str {
        "ProfileCNN"
    }
}

impl Parameterized for ProfileCnn {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.conv1.for_each_param(f);
        self.conv2.for_each_param(f);
        self.head_a.for_each_param(f);
        self.head_b.for_each_param(f);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&[f32])) {
        self.conv1.visit_params(f);
        self.conv2.visit_params(f);
        self.head_a.visit_params(f);
        self.head_b.visit_params(f);
    }
}

/// Temporal baseline: per-frame features through an LSTM, classifying
/// from the final hidden state.
#[derive(Debug, Clone)]
pub struct LstmNet {
    classes: usize,
    lstm: Lstm,
    head: Linear,
}

impl LstmNet {
    /// Creates the model.
    pub fn new<R: Rng>(classes: usize, rng: &mut R) -> Self {
        LstmNet {
            classes,
            lstm: Lstm::new(SEQUENCE_FEATURES, 32, rng),
            head: Linear::new(32, classes, rng),
        }
    }
}

impl PointModel for LstmNet {
    fn classes(&self) -> usize {
        self.classes
    }

    fn logits(&self, input: &ModelInput) -> Vec<f32> {
        let (h, _) = self.lstm.forward(&input.sequence);
        self.head.forward(&Matrix::from_rows(&[h])).row(0).to_vec()
    }

    fn train_step(&mut self, input: &ModelInput, label: usize) -> f32 {
        let (h, trace) = self.lstm.forward(&input.sequence);
        let h_m = Matrix::from_rows(&[h]);
        let logits = self.head.forward(&h_m).row(0).to_vec();
        let (loss, grad) = softmax_cross_entropy(&logits, label);
        let dh = self.head.backward(&h_m, &Matrix::from_rows(&[grad]));
        self.lstm.backward(&trace, dh.row(0));
        loss
    }

    fn name(&self) -> &'static str {
        "LSTM"
    }
}

impl Parameterized for LstmNet {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.lstm.for_each_param(f);
        self.head.for_each_param(f);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&[f32])) {
        self.lstm.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{encode, FeatureConfig};
    use gp_nn::{argmax, Adam};
    use gp_pointcloud::{Point, PointCloud, Vec3};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_input(seed: u64, doppler: f64) -> ModelInput {
        let cloud: PointCloud = (0..20)
            .map(|i| {
                let t = i as f64 * 0.4 + seed as f64;
                Point::new(
                    Vec3::new(t.sin() * 0.3, 1.2 + t.cos() * 0.2, 1.0),
                    doppler + (t * 1.3).sin() * 0.2,
                    12.0,
                )
            })
            .collect();
        let frames = vec![cloud.clone(); 6];
        let mut rng = StdRng::seed_from_u64(seed);
        encode(
            &cloud,
            &frames,
            &FeatureConfig {
                num_points: 20,
                ..FeatureConfig::default()
            },
            &mut rng,
        )
    }

    fn train_to_separate<M: PointModel>(model: &mut M, epochs: usize) -> usize {
        let data: Vec<(ModelInput, usize)> = (0..8)
            .map(|i| {
                let label = i % 2;
                (
                    toy_input(i as u64, if label == 0 { -1.2 } else { 1.2 }),
                    label,
                )
            })
            .collect();
        let mut adam = Adam::new(5e-3);
        for _ in 0..epochs {
            for (x, y) in &data {
                model.train_step(x, *y);
                adam.begin_step();
                model.for_each_param(&mut |p, g| adam.update(p, g));
            }
        }
        data.iter()
            .filter(|(x, y)| argmax(&model.logits(x)) == *y)
            .count()
    }

    #[test]
    fn pointnet_learns_doppler_split() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = PointNet::new(2, &mut rng);
        let correct = train_to_separate(&mut model, 60);
        assert!(correct >= 7, "PointNet: {correct}/8");
    }

    #[test]
    fn profile_cnn_learns_doppler_split() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = ProfileCnn::new(2, (16, 24), &mut rng);
        let correct = train_to_separate(&mut model, 40);
        assert!(correct >= 7, "ProfileCNN: {correct}/8");
    }

    #[test]
    fn lstm_learns_doppler_split() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = LstmNet::new(2, &mut rng);
        let correct = train_to_separate(&mut model, 80);
        assert!(correct >= 7, "LSTM: {correct}/8");
    }

    #[test]
    fn logits_have_class_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let input = toy_input(5, 0.0);
        assert_eq!(PointNet::new(9, &mut rng).logits(&input).len(), 9);
        assert_eq!(
            ProfileCnn::new(5, (16, 24), &mut rng).logits(&input).len(),
            5
        );
        assert_eq!(LstmNet::new(4, &mut rng).logits(&input).len(), 4);
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn profile_shape_validated() {
        let mut rng = StdRng::seed_from_u64(0);
        ProfileCnn::new(2, (15, 24), &mut rng);
    }

    #[test]
    fn names_distinct() {
        let mut rng = StdRng::seed_from_u64(0);
        let names = [
            PointNet::new(2, &mut rng).name(),
            ProfileCnn::new(2, (16, 24), &mut rng).name(),
            LstmNet::new(2, &mut rng).name(),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }
}
