//! A compact t-SNE implementation (van der Maaten & Hinton, 2008) for
//! the feature visualisations of paper Fig. 6.
//!
//! Exact (non-Barnes-Hut) t-SNE with binary-search perplexity
//! calibration, early exaggeration and momentum gradient descent — ample
//! for the few hundred feature vectors the figure plots.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// t-SNE options.
#[derive(Debug, Clone, PartialEq)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Random seed for the initial embedding.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 15.0,
            iterations: 300,
            learning_rate: 100.0,
            seed: 0,
        }
    }
}

/// Embeds `data` (n × d, row-major) into 2-D.
///
/// Returns an `n × 2` embedding. Inputs with fewer than 3 rows are
/// returned as zero/trivial embeddings.
pub fn tsne_2d(data: &[Vec<f64>], config: &TsneConfig) -> Vec<[f64; 2]> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    if n < 3 {
        return (0..n).map(|i| [i as f64, 0.0]).collect();
    }

    // Pairwise squared distances.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i + 1..n {
            let dist: f64 = data[i]
                .iter()
                .zip(&data[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            d2[i * n + j] = dist;
            d2[j * n + i] = dist;
        }
    }

    // Conditional probabilities with per-point bandwidth from perplexity.
    let target_entropy = config.perplexity.max(2.0).ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let mut beta = 1.0f64;
        let (mut beta_min, mut beta_max) = (f64::NEG_INFINITY, f64::INFINITY);
        for _ in 0..50 {
            let mut sum = 0.0;
            let mut sum_dp = 0.0;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let pj = (-beta * d2[i * n + j]).exp();
                sum += pj;
                sum_dp += pj * d2[i * n + j];
            }
            if sum <= 0.0 {
                break;
            }
            let entropy = beta * sum_dp / sum + sum.ln();
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                beta_min = beta;
                beta = if beta_max.is_finite() {
                    (beta + beta_max) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_max = beta;
                beta = if beta_min.is_finite() {
                    (beta + beta_min) / 2.0
                } else {
                    beta / 2.0
                };
            }
        }
        let mut sum = 0.0;
        for j in 0..n {
            if j != i {
                let v = (-beta * d2[i * n + j]).exp();
                p[i * n + j] = v;
                sum += v;
            }
        }
        if sum > 0.0 {
            for j in 0..n {
                p[i * n + j] /= sum;
            }
        }
    }
    // Symmetrise.
    let mut pij = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            pij[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }

    // Gradient descent on the embedding.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut y: Vec<[f64; 2]> = (0..n)
        .map(|_| [rng.gen_range(-1e-2..1e-2), rng.gen_range(-1e-2..1e-2)])
        .collect();
    let mut vel = vec![[0.0f64; 2]; n];
    for iter in 0..config.iterations {
        let exaggeration = if iter < config.iterations / 4 {
            4.0
        } else {
            1.0
        };
        // Student-t affinities in the embedding.
        let mut q = vec![0.0f64; n * n];
        let mut qsum = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let v = 1.0 / (1.0 + dx * dx + dy * dy);
                q[i * n + j] = v;
                q[j * n + i] = v;
                qsum += 2.0 * v;
            }
        }
        let qsum = qsum.max(1e-12);
        // Gradient.
        let momentum = if iter < 60 { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut g = [0.0f64; 2];
            for j in 0..n {
                if j == i {
                    continue;
                }
                let qu = q[i * n + j];
                let coeff = 4.0 * (exaggeration * pij[i * n + j] - qu / qsum) * qu;
                g[0] += coeff * (y[i][0] - y[j][0]);
                g[1] += coeff * (y[i][1] - y[j][1]);
            }
            for k in 0..2 {
                vel[i][k] = momentum * vel[i][k] - config.learning_rate * g[k];
            }
        }
        for i in 0..n {
            y[i][0] += vel[i][0];
            y[i][1] += vel[i][1];
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: (f64, f64, f64), n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                vec![
                    center.0 + rng.gen_range(-0.1..0.1),
                    center.1 + rng.gen_range(-0.1..0.1),
                    center.2 + rng.gen_range(-0.1..0.1),
                ]
            })
            .collect()
    }

    #[test]
    fn separates_two_distant_blobs() {
        let mut data = blob((0.0, 0.0, 0.0), 15, 1);
        data.extend(blob((10.0, 10.0, 10.0), 15, 2));
        let emb = tsne_2d(
            &data,
            &TsneConfig {
                iterations: 250,
                ..TsneConfig::default()
            },
        );
        assert_eq!(emb.len(), 30);
        // Mean intra-blob distance must be far below the inter-blob
        // centroid distance.
        let centroid = |pts: &[[f64; 2]]| {
            let n = pts.len() as f64;
            [
                pts.iter().map(|p| p[0]).sum::<f64>() / n,
                pts.iter().map(|p| p[1]).sum::<f64>() / n,
            ]
        };
        let c1 = centroid(&emb[..15]);
        let c2 = centroid(&emb[15..]);
        let inter = ((c1[0] - c2[0]).powi(2) + (c1[1] - c2[1]).powi(2)).sqrt();
        let intra: f64 = emb[..15]
            .iter()
            .map(|p| ((p[0] - c1[0]).powi(2) + (p[1] - c1[1]).powi(2)).sqrt())
            .sum::<f64>()
            / 15.0;
        assert!(
            inter > 2.0 * intra,
            "blobs not separated: inter {inter:.3} vs intra {intra:.3}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(tsne_2d(&[], &TsneConfig::default()).is_empty());
        let one = tsne_2d(&[vec![1.0, 2.0]], &TsneConfig::default());
        assert_eq!(one.len(), 1);
        let two = tsne_2d(&[vec![1.0], vec![2.0]], &TsneConfig::default());
        assert_eq!(two.len(), 2);
    }

    #[test]
    fn deterministic() {
        let data = blob((0.0, 0.0, 0.0), 10, 3);
        let cfg = TsneConfig {
            iterations: 50,
            ..TsneConfig::default()
        };
        assert_eq!(tsne_2d(&data, &cfg), tsne_2d(&data, &cfg));
    }

    #[test]
    fn embedding_is_finite() {
        let mut data = blob((0.0, 0.0, 0.0), 8, 4);
        data.extend(blob((5.0, 0.0, 0.0), 8, 5));
        for p in tsne_2d(&data, &TsneConfig::default()) {
            assert!(p[0].is_finite() && p[1].is_finite());
        }
    }
}
