//! Train/test splitting and k-fold cross-validation indices.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Returns shuffled `(train, test)` index sets with `test_fraction` of
/// the data in the test set (at least one sample each when `n >= 2`).
///
/// # Panics
///
/// Panics if `test_fraction` is outside `(0, 1)`.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test_fraction must be in (0, 1)"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut test_len = ((n as f64) * test_fraction).round() as usize;
    if n >= 2 {
        test_len = test_len.clamp(1, n - 1);
    }
    let test = idx.split_off(n - test_len);
    (idx, test)
}

/// Returns `k` folds of indices for cross-validation; fold `i` is the
/// test set of round `i` and the folds partition `0..n`.
///
/// # Panics
///
/// Panics if `k == 0` or `k > n`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k > 0 && k <= n, "need 0 < k <= n");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut folds = vec![Vec::with_capacity(n / k + 1); k];
    for (i, v) in idx.into_iter().enumerate() {
        folds[i % k].push(v);
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_partitions() {
        let (train, test) = train_test_split(100, 0.2, 1);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        let all: HashSet<usize> = train.iter().chain(test.iter()).copied().collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn split_deterministic_per_seed() {
        assert_eq!(train_test_split(50, 0.2, 7), train_test_split(50, 0.2, 7));
        assert_ne!(
            train_test_split(50, 0.2, 7).1,
            train_test_split(50, 0.2, 8).1
        );
    }

    #[test]
    fn tiny_sets_keep_both_sides_nonempty() {
        let (train, test) = train_test_split(2, 0.2, 0);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn kfold_partitions_everything() {
        let folds = kfold_indices(23, 5, 3);
        assert_eq!(folds.len(), 5);
        let total: usize = folds.iter().map(Vec::len).sum();
        assert_eq!(total, 23);
        let all: HashSet<usize> = folds.iter().flatten().copied().collect();
        assert_eq!(all.len(), 23);
        // Balanced within one element.
        let min = folds.iter().map(Vec::len).min().unwrap();
        let max = folds.iter().map(Vec::len).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    #[should_panic(expected = "test_fraction")]
    fn split_fraction_validated() {
        train_test_split(10, 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "0 < k <= n")]
    fn kfold_validated() {
        kfold_indices(3, 5, 0);
    }
}
