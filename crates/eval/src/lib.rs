//! Evaluation utilities: classification metrics, ROC/EER, data splits,
//! confusion matrices, and a small t-SNE implementation for feature
//! visualisation (paper Fig. 6).
//!
//! Metric definitions follow the paper (§VI-A3): GRA/UIA are plain
//! accuracies, GRF1/UIF1 are macro-averaged F1 scores, GRAUC/UIAUC are
//! macro one-vs-rest areas under the ROC curve, and EER is the rate at
//! which the false-positive and false-negative rates cross in the
//! one-vs-rest verification setting.

pub mod metrics;
pub mod roc;
pub mod split;
pub mod tsne;

pub use metrics::{accuracy, confusion_matrix, macro_auc, macro_f1, ConfusionMatrix};
pub use roc::{eer, eer_from_curve, roc_curve, RocEerSummary, RocPoint};
pub use split::{kfold_indices, train_test_split};
