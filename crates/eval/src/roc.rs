//! ROC curves and equal error rate (paper Fig. 10).

use gp_codec::{Decode, DecodeError, Encode, Value};

/// One operating point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold.
    pub threshold: f64,
    /// False-positive rate at the threshold.
    pub fpr: f64,
    /// True-positive rate at the threshold.
    pub tpr: f64,
}

impl Encode for RocPoint {
    fn encode(&self) -> Value {
        Value::record([
            // The strictest operating point carries threshold = +inf,
            // which JSON cannot represent; it persists as null.
            (
                "threshold",
                if self.threshold.is_finite() {
                    self.threshold.encode()
                } else {
                    Value::Null
                },
            ),
            ("fpr", self.fpr.encode()),
            ("tpr", self.tpr.encode()),
        ])
    }
}

impl Decode for RocPoint {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        Ok(RocPoint {
            threshold: value
                .get::<Option<f64>>("threshold")?
                .unwrap_or(f64::INFINITY),
            fpr: value.get("fpr")?,
            tpr: value.get("tpr")?,
        })
    }
}

/// A persistable ROC/EER summary for one scenario: the operating curve,
/// its equal error rate, and the pooled score counts — everything a
/// later run needs to compare Fig. 10-style results machine-to-machine.
#[derive(Debug, Clone, PartialEq)]
pub struct RocEerSummary {
    /// Scenario label (dataset name, model arm, ...).
    pub scenario: String,
    /// The full ROC curve, strictest threshold first.
    pub points: Vec<RocPoint>,
    /// Equal error rate over the same scores.
    pub eer: f64,
    /// Number of positive verification scores pooled.
    pub positives: usize,
    /// Number of negative verification scores pooled.
    pub negatives: usize,
}

impl RocEerSummary {
    /// Builds the summary from pooled verification scores (see
    /// [`one_vs_rest_scores`]).
    pub fn from_scores(scenario: impl Into<String>, scores: &[f64], positives: &[bool]) -> Self {
        let pos = positives.iter().filter(|p| **p).count();
        let points = roc_curve(scores, positives);
        let eer = eer_from_curve(&points);
        RocEerSummary {
            scenario: scenario.into(),
            points,
            eer,
            positives: pos,
            negatives: positives.len() - pos,
        }
    }

    /// The strictest decision threshold whose false-accept rate stays at
    /// or below `target_far` — the calibration point open-set galleries
    /// operate at instead of a hard-coded cutoff. Scores at or above the
    /// returned threshold are accepted; because the curve is built from
    /// a finite score sample, this is the loosest threshold the held-out
    /// split *measured* as satisfying the FAR bound.
    ///
    /// Returns `f64::INFINITY` (accept nothing) when even the strictest
    /// finite operating point exceeds the bound, which is the safe side
    /// of the trade. Degenerate curves with no negative scores calibrate
    /// to the loosest finite threshold.
    ///
    /// # Panics
    ///
    /// Panics if `target_far` is negative or NaN.
    pub fn threshold_at_far(&self, target_far: f64) -> f64 {
        assert!(
            target_far >= 0.0,
            "target FAR must be non-negative, got {target_far}"
        );
        self.points
            .iter()
            .rev()
            .find(|p| p.fpr <= target_far)
            .map_or(f64::INFINITY, |p| p.threshold)
    }
}

impl Encode for RocEerSummary {
    fn encode(&self) -> Value {
        Value::record([
            ("scenario", self.scenario.encode()),
            ("points", self.points.encode()),
            ("eer", self.eer.encode()),
            ("positives", self.positives.encode()),
            ("negatives", self.negatives.encode()),
        ])
    }
}

impl Decode for RocEerSummary {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        Ok(RocEerSummary {
            scenario: value.get("scenario")?,
            points: value.get("points")?,
            eer: value.get("eer")?,
            positives: value.get("positives")?,
            negatives: value.get("negatives")?,
        })
    }
}

/// Computes the ROC curve for verification scores (higher = more likely
/// positive). Points are ordered from the strictest threshold (0, 0) to
/// the loosest (1, 1).
pub fn roc_curve(scores: &[f64], positives: &[bool]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), positives.len(), "length mismatch");
    let pos = positives.iter().filter(|p| **p).count();
    let neg = positives.len() - pos;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut curve = vec![RocPoint {
        threshold: f64::INFINITY,
        fpr: 0.0,
        tpr: 0.0,
    }];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < order.len() {
        let thr = scores[order[i]];
        // Consume all samples at this threshold together.
        while i < order.len() && scores[order[i]] == thr {
            if positives[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        curve.push(RocPoint {
            threshold: thr,
            fpr: if neg > 0 { fp as f64 / neg as f64 } else { 0.0 },
            tpr: if pos > 0 { tp as f64 / pos as f64 } else { 0.0 },
        });
    }
    curve
}

/// Equal error rate: the rate where `FPR = FNR = 1 − TPR`, linearly
/// interpolated between the two ROC points that bracket the crossing.
pub fn eer(scores: &[f64], positives: &[bool]) -> f64 {
    eer_from_curve(&roc_curve(scores, positives))
}

/// [`eer`] over an already-computed ROC curve, so callers that keep the
/// curve (e.g. [`RocEerSummary`]) do not sort the scores twice.
///
/// # Panics
///
/// Panics on an empty curve ([`roc_curve`] never produces one).
pub fn eer_from_curve(curve: &[RocPoint]) -> f64 {
    let mut prev = curve[0];
    for &pt in &curve[1..] {
        let prev_diff = prev.fpr - (1.0 - prev.tpr);
        let diff = pt.fpr - (1.0 - pt.tpr);
        if diff >= 0.0 {
            // Crossing between prev and pt.
            if (diff - prev_diff).abs() < 1e-15 {
                return (pt.fpr + (1.0 - pt.tpr)) / 2.0;
            }
            let t = -prev_diff / (diff - prev_diff);
            let fpr = prev.fpr + t * (pt.fpr - prev.fpr);
            let fnr = (1.0 - prev.tpr) + t * ((1.0 - pt.tpr) - (1.0 - prev.tpr));
            return (fpr + fnr) / 2.0;
        }
        prev = pt;
    }
    // No crossing found (degenerate input).
    let last = curve.last().expect("curve non-empty");
    (last.fpr + (1.0 - last.tpr)) / 2.0
}

/// Pools per-class one-vs-rest verification scores from probability
/// vectors: for every (sample, class) pair, the score is `p[class]` and
/// the pair is positive when `label == class`. This is the standard way
/// to compute one aggregate EER from a multiclass classifier.
pub fn one_vs_rest_scores(
    probabilities: &[Vec<f64>],
    labels: &[usize],
    classes: usize,
) -> (Vec<f64>, Vec<bool>) {
    assert_eq!(probabilities.len(), labels.len(), "length mismatch");
    let mut scores = Vec::with_capacity(probabilities.len() * classes);
    let mut positives = Vec::with_capacity(probabilities.len() * classes);
    for (p, &l) in probabilities.iter().zip(labels) {
        for c in 0..classes {
            scores.push(p[c]);
            positives.push(c == l);
        }
    }
    (scores, positives)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_endpoints() {
        let scores = [0.9, 0.8, 0.3, 0.1];
        let pos = [true, true, false, false];
        let curve = roc_curve(&scores, &pos);
        assert_eq!(curve.first().map(|p| (p.fpr, p.tpr)), Some((0.0, 0.0)));
        assert_eq!(curve.last().map(|p| (p.fpr, p.tpr)), Some((1.0, 1.0)));
    }

    #[test]
    fn curve_monotone() {
        let scores = [0.9, 0.7, 0.8, 0.3, 0.5, 0.1];
        let pos = [true, false, true, false, true, false];
        let curve = roc_curve(&scores, &pos);
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
    }

    #[test]
    fn perfect_separation_has_zero_eer() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let pos = [true, true, false, false];
        assert!(eer(&scores, &pos) < 1e-12);
    }

    #[test]
    fn inverted_separation_has_eer_one() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let pos = [true, true, false, false];
        assert!((eer(&scores, &pos) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_scores_give_half() {
        let scores = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
        let pos = [true, false, true, false, true, false, true, false];
        let e = eer(&scores, &pos);
        assert!((e - 0.5).abs() < 0.26, "eer = {e}");
    }

    #[test]
    fn partial_overlap_eer_between_zero_and_half() {
        let scores = [0.9, 0.8, 0.55, 0.45, 0.2, 0.1];
        let pos = [true, true, false, true, false, false];
        let e = eer(&scores, &pos);
        assert!(e > 0.0 && e < 0.5, "eer = {e}");
    }

    #[test]
    fn threshold_at_far_calibrates_from_the_curve() {
        // Genuine scores high, impostors low, one overlap at 0.55.
        let scores = [0.9, 0.8, 0.7, 0.55, 0.55, 0.3, 0.2, 0.1];
        let pos = [true, true, true, false, true, false, false, false];
        let summary = RocEerSummary::from_scores("cal", &scores, &pos);

        // FAR 0: the loosest threshold with zero false accepts is 0.7
        // (accepting >= 0.55 would admit the impostor at 0.55).
        let t0 = summary.threshold_at_far(0.0);
        assert_eq!(t0, 0.7);
        let accepted_impostors = scores
            .iter()
            .zip(&pos)
            .filter(|(s, p)| !**p && **s >= t0)
            .count();
        assert_eq!(accepted_impostors, 0);

        // FAR 25%: one of four impostors may pass; 0.55 qualifies.
        assert_eq!(summary.threshold_at_far(0.25), 0.55);
        // FAR 100%: everything passes at the loosest threshold.
        assert_eq!(summary.threshold_at_far(1.0), 0.1);
    }

    #[test]
    fn threshold_at_far_is_infinite_when_unreachable() {
        // Every score tied: any finite threshold accepts the impostor.
        let scores = [0.5, 0.5];
        let pos = [true, false];
        let summary = RocEerSummary::from_scores("tied", &scores, &pos);
        assert_eq!(summary.threshold_at_far(0.4), f64::INFINITY);
        // And the infinite point survives the JSON round trip as null.
        let text = gp_codec::encode_to_json(&summary).unwrap();
        let back: RocEerSummary = gp_codec::decode_from_json(&text).unwrap();
        assert_eq!(back.threshold_at_far(0.4), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn threshold_at_far_rejects_negative_targets() {
        let summary = RocEerSummary::from_scores("bad", &[0.5], &[true]);
        summary.threshold_at_far(-0.1);
    }

    #[test]
    fn one_vs_rest_pooling() {
        let probs = vec![vec![0.7, 0.3], vec![0.2, 0.8]];
        let labels = vec![0, 1];
        let (scores, pos) = one_vs_rest_scores(&probs, &labels, 2);
        assert_eq!(scores.len(), 4);
        assert_eq!(pos, vec![true, false, false, true]);
        assert!(eer(&scores, &pos) < 1e-12);
    }
}
