//! Accuracy, macro-F1, macro one-vs-rest AUC, confusion matrices.

/// Fraction of predictions equal to the label.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / predictions.len() as f64
}

/// A `classes × classes` confusion matrix; rows are true labels, columns
/// predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count of samples with true label `t` predicted as `p`.
    pub fn at(&self, t: usize, p: usize) -> usize {
        self.counts[t * self.classes + p]
    }

    /// Row of true label `t`.
    pub fn row(&self, t: usize) -> &[usize] {
        &self.counts[t * self.classes..(t + 1) * self.classes]
    }

    /// Per-class precision, recall and F1.
    pub fn per_class_prf(&self) -> Vec<(f64, f64, f64)> {
        (0..self.classes)
            .map(|c| {
                let tp = self.at(c, c) as f64;
                let fp: f64 = (0..self.classes)
                    .filter(|&t| t != c)
                    .map(|t| self.at(t, c) as f64)
                    .sum();
                let fn_: f64 = (0..self.classes)
                    .filter(|&p| p != c)
                    .map(|p| self.at(c, p) as f64)
                    .sum();
                let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
                let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
                let f1 = if precision + recall > 0.0 {
                    2.0 * precision * recall / (precision + recall)
                } else {
                    0.0
                };
                (precision, recall, f1)
            })
            .collect()
    }
}

/// Builds a confusion matrix.
///
/// # Panics
///
/// Panics on length mismatch or out-of-range labels.
pub fn confusion_matrix(
    predictions: &[usize],
    labels: &[usize],
    classes: usize,
) -> ConfusionMatrix {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut counts = vec![0usize; classes * classes];
    for (&p, &t) in predictions.iter().zip(labels) {
        assert!(p < classes && t < classes, "label out of range");
        counts[t * classes + p] += 1;
    }
    ConfusionMatrix { classes, counts }
}

/// Macro-averaged F1 over classes that appear in the labels.
pub fn macro_f1(predictions: &[usize], labels: &[usize], classes: usize) -> f64 {
    let cm = confusion_matrix(predictions, labels, classes);
    let present: Vec<usize> = (0..classes)
        .filter(|&c| labels.iter().any(|&l| l == c))
        .collect();
    if present.is_empty() {
        return 0.0;
    }
    let prf = cm.per_class_prf();
    present.iter().map(|&c| prf[c].2).sum::<f64>() / present.len() as f64
}

/// One-vs-rest ROC AUC for one class given per-sample scores.
pub fn binary_auc(scores: &[f64], positives: &[bool]) -> f64 {
    assert_eq!(scores.len(), positives.len(), "length mismatch");
    let pos = positives.iter().filter(|p| **p).count();
    let neg = positives.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    // Rank-sum (Mann–Whitney) formulation with tie handling.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = rank;
        }
        i = j + 1;
    }
    let rank_sum: f64 = positives
        .iter()
        .zip(&ranks)
        .filter(|(p, _)| **p)
        .map(|(_, r)| r)
        .sum();
    (rank_sum - (pos * (pos + 1)) as f64 / 2.0) / (pos * neg) as f64
}

/// Macro one-vs-rest AUC from per-sample class-probability vectors.
///
/// Classes absent from the labels are skipped.
pub fn macro_auc(probabilities: &[Vec<f64>], labels: &[usize], classes: usize) -> f64 {
    assert_eq!(probabilities.len(), labels.len(), "length mismatch");
    let mut total = 0.0;
    let mut counted = 0;
    for c in 0..classes {
        let positives: Vec<bool> = labels.iter().map(|&l| l == c).collect();
        if !positives.iter().any(|p| *p) || positives.iter().all(|p| *p) {
            continue;
        }
        let scores: Vec<f64> = probabilities.iter().map(|p| p[c]).collect();
        total += binary_auc(&scores, &positives);
        counted += 1;
    }
    if counted == 0 {
        0.5
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(accuracy(&[0, 0, 0], &[0, 1, 2]), 1.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_counts() {
        let cm = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(cm.at(0, 0), 1);
        assert_eq!(cm.at(2, 1), 1);
        assert_eq!(cm.at(2, 2), 1);
        assert_eq!(cm.row(1), &[0, 1, 0]);
    }

    #[test]
    fn perfect_f1() {
        assert!((macro_f1(&[0, 1, 0, 1], &[0, 1, 0, 1], 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_penalises_one_sided_errors() {
        // Class 1 is never predicted.
        let f1 = macro_f1(&[0, 0, 0, 0], &[0, 0, 1, 1], 2);
        assert!(f1 < 0.5, "f1 = {f1}");
    }

    #[test]
    fn macro_f1_ignores_absent_classes() {
        let full = macro_f1(&[0, 1], &[0, 1], 5);
        assert!(
            (full - 1.0).abs() < 1e-12,
            "absent classes shouldn't dilute"
        );
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let pos = [false, false, true, true];
        assert!((binary_auc(&scores, &pos) - 1.0).abs() < 1e-12);
        let inv = [true, true, false, false];
        assert!(binary_auc(&scores, &inv) < 1e-12);
    }

    #[test]
    fn auc_handles_ties() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let pos = [true, false, true, false];
        assert!((binary_auc(&scores, &pos) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_random_is_half() {
        // Interleaved scores → 0.5.
        let scores = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
        let pos = [true, false, true, false, true, false];
        let auc = binary_auc(&scores, &pos);
        assert!((auc - 0.5).abs() < 0.2);
    }

    #[test]
    fn macro_auc_perfect_probs() {
        let probs = vec![
            vec![0.9, 0.05, 0.05],
            vec![0.05, 0.9, 0.05],
            vec![0.05, 0.05, 0.9],
            vec![0.8, 0.1, 0.1],
        ];
        let labels = vec![0, 1, 2, 0];
        assert!((macro_auc(&probs, &labels, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn confusion_checks_range() {
        confusion_matrix(&[3], &[0], 3);
    }
}
