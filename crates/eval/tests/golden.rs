//! Golden regression tests: metrics computed on small hand-checked
//! inputs. Every expected value below was derived by hand from the
//! definitions, so any drift in the implementations is a regression, not
//! a tuning change.

use gp_eval::metrics::{accuracy, binary_auc, confusion_matrix, macro_auc, macro_f1};
use gp_eval::roc::{eer, one_vs_rest_scores, roc_curve};

const TOL: f64 = 1e-12;

/// 3-class scenario used by several tests below.
///
/// ```text
///            predicted
///            0  1  2
/// true 0   [ 2  1  0 ]
/// true 1   [ 0  2  1 ]
/// true 2   [ 1  0  3 ]
/// ```
fn three_class() -> (Vec<usize>, Vec<usize>) {
    let predictions = vec![0, 0, 1, 1, 1, 2, 0, 2, 2, 2];
    let labels = vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 2];
    (predictions, labels)
}

#[test]
fn golden_confusion_matrix() {
    let (p, l) = three_class();
    let cm = confusion_matrix(&p, &l, 3);
    assert_eq!(cm.row(0), &[2, 1, 0]);
    assert_eq!(cm.row(1), &[0, 2, 1]);
    assert_eq!(cm.row(2), &[1, 0, 3]);
}

#[test]
fn golden_accuracy() {
    let (p, l) = three_class();
    // Diagonal 2 + 2 + 3 over 10 samples.
    assert!((accuracy(&p, &l) - 0.7).abs() < TOL);
}

#[test]
fn golden_per_class_prf() {
    let (p, l) = three_class();
    let prf = confusion_matrix(&p, &l, 3).per_class_prf();
    // Class 0: tp=2 fp=1 fn=1 → P = R = F1 = 2/3.
    for v in [prf[0].0, prf[0].1, prf[0].2] {
        assert!((v - 2.0 / 3.0).abs() < TOL, "class0 {v}");
    }
    // Class 2: tp=3 fp=1 fn=1 → P = R = F1 = 3/4.
    for v in [prf[2].0, prf[2].1, prf[2].2] {
        assert!((v - 0.75).abs() < TOL, "class2 {v}");
    }
}

#[test]
fn golden_macro_f1() {
    let (p, l) = three_class();
    // (2/3 + 2/3 + 3/4) / 3 = 25/36.
    assert!((macro_f1(&p, &l, 3) - 25.0 / 36.0).abs() < TOL);
}

#[test]
fn golden_binary_auc() {
    // Positives {0.4, 0.8, 0.7}, negatives {0.2, 0.6, 0.3}: of the nine
    // (pos, neg) pairs only (0.4, 0.6) is misordered → AUC = 8/9.
    let scores = [0.2, 0.4, 0.6, 0.8, 0.3, 0.7];
    let pos = [false, true, false, true, false, true];
    assert!((binary_auc(&scores, &pos) - 8.0 / 9.0).abs() < TOL);
}

#[test]
fn golden_binary_auc_with_ties() {
    // Positives {0.5, 0.9}, negatives {0.5, 0.1}: pairs score
    // 0.5 (tie) + 1 + 1 + 1 out of 4 → AUC = 0.875.
    let scores = [0.5, 0.5, 0.9, 0.1];
    let pos = [true, false, true, false];
    assert!((binary_auc(&scores, &pos) - 0.875).abs() < TOL);
}

#[test]
fn golden_macro_auc() {
    let probs = vec![
        vec![0.70, 0.20, 0.10],
        vec![0.50, 0.30, 0.20],
        vec![0.30, 0.60, 0.10],
        vec![0.20, 0.30, 0.50],
        vec![0.10, 0.20, 0.70],
        vec![0.25, 0.25, 0.50],
    ];
    let labels = vec![0, 0, 1, 1, 2, 2];
    // Per-class one-vs-rest AUCs: class0 = 1, class1 = 7.5/8,
    // class2 = 7.5/8 → macro = (1 + 0.9375 + 0.9375) / 3.
    assert!((macro_auc(&probs, &labels, 3) - 2.875 / 3.0).abs() < TOL);
}

#[test]
fn golden_roc_curve_points() {
    // Descending thresholds add one sample at a time:
    // (0,0) → 0.9:T (0,.5) → 0.8:F (.5,.5) → 0.3:T (.5,1) → 0.1:F (1,1).
    let scores = [0.9, 0.8, 0.3, 0.1];
    let pos = [true, false, true, false];
    let curve = roc_curve(&scores, &pos);
    let got: Vec<(f64, f64)> = curve.iter().map(|p| (p.fpr, p.tpr)).collect();
    assert_eq!(
        got,
        vec![(0.0, 0.0), (0.0, 0.5), (0.5, 0.5), (0.5, 1.0), (1.0, 1.0)]
    );
}

#[test]
fn golden_eer_quarter() {
    // 4 positives / 4 negatives with one inversion each way: the ROC
    // passes exactly through FPR = FNR = 0.25.
    let scores = [0.9, 0.8, 0.7, 0.6, 0.4, 0.3, 0.2, 0.1];
    let pos = [true, true, true, false, true, false, false, false];
    assert!((eer(&scores, &pos) - 0.25).abs() < TOL);
}

#[test]
fn golden_eer_perfect_and_chance() {
    let perfect = eer(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]);
    assert!(
        perfect.abs() < TOL,
        "perfect separation must give EER 0, got {perfect}"
    );
    // Identical scores for both classes → EER 0.5.
    let chance = eer(&[0.5, 0.5, 0.5, 0.5], &[true, false, true, false]);
    assert!((chance - 0.5).abs() < 1e-9, "chance EER {chance}");
}

#[test]
fn golden_one_vs_rest_pooling() {
    let probs = vec![vec![0.8, 0.2], vec![0.3, 0.7]];
    let labels = vec![0, 1];
    let (scores, positives) = one_vs_rest_scores(&probs, &labels, 2);
    assert_eq!(scores, vec![0.8, 0.2, 0.3, 0.7]);
    assert_eq!(positives, vec![true, false, false, true]);
    // Pooled scores are perfectly separated → EER 0.
    assert!(eer(&scores, &positives).abs() < TOL);
}
