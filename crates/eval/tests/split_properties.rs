//! Property tests for `gp_eval::split`: across sizes, ratios and seeds,
//! the index sets must be disjoint, exhaustive and correctly sized.

use gp_eval::split::{kfold_indices, train_test_split};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #[test]
    fn split_is_a_partition(n in 2usize..400, frac in 0.05f64..0.95, seed in any::<u64>()) {
        let (train, test) = train_test_split(n, frac, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        prop_assert!(!train.is_empty(), "train side empty");
        prop_assert!(!test.is_empty(), "test side empty");
        let train_set: HashSet<usize> = train.iter().copied().collect();
        let test_set: HashSet<usize> = test.iter().copied().collect();
        prop_assert_eq!(train_set.len(), train.len(), "duplicate train index");
        prop_assert_eq!(test_set.len(), test.len(), "duplicate test index");
        prop_assert!(train_set.is_disjoint(&test_set), "index in both sides");
        prop_assert!(train.iter().chain(&test).all(|&i| i < n), "index out of range");
    }

    #[test]
    fn split_test_size_tracks_fraction(n in 2usize..400, frac in 0.05f64..0.95, seed in any::<u64>()) {
        let (_, test) = train_test_split(n, frac, seed);
        let ideal = (n as f64 * frac).round() as usize;
        let expected = if n >= 2 { ideal.clamp(1, n - 1) } else { ideal };
        prop_assert_eq!(test.len(), expected);
    }

    #[test]
    fn split_is_deterministic(n in 2usize..200, seed in any::<u64>()) {
        prop_assert_eq!(
            train_test_split(n, 0.3, seed),
            train_test_split(n, 0.3, seed)
        );
    }

    #[test]
    fn kfold_is_a_balanced_partition(n in 1usize..300, k_raw in 1usize..12, seed in any::<u64>()) {
        let k = k_raw.min(n);
        let folds = kfold_indices(n, k, seed);
        prop_assert_eq!(folds.len(), k);
        let total: usize = folds.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n, "folds must cover every index");
        let all: HashSet<usize> = folds.iter().flatten().copied().collect();
        prop_assert_eq!(all.len(), n, "folds must not repeat indices");
        prop_assert!(all.iter().all(|&i| i < n), "index out of range");
        let min = folds.iter().map(Vec::len).min().unwrap_or(0);
        let max = folds.iter().map(Vec::len).max().unwrap_or(0);
        prop_assert!(max - min <= 1, "folds unbalanced: {min}..{max}");
    }

    #[test]
    fn kfold_is_deterministic(n in 1usize..200, k_raw in 1usize..8, seed in any::<u64>()) {
        let k = k_raw.min(n);
        prop_assert_eq!(kfold_indices(n, k, seed), kfold_indices(n, k, seed));
    }
}
