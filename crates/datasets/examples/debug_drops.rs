//! Reports which (user, gesture) cells drop samples — builder tuning aid.

use gp_datasets::{build, presets, BuildOptions, Scale};
use gp_kinematics::gestures::{GestureId, GestureSet};

fn main() {
    let spec = presets::mtranssee(Scale::Custom { users: 2, reps: 2 }, &[1.2]);
    let ds = build(&spec, &BuildOptions::default());
    println!("{} samples, {} dropped", ds.samples.len(), ds.dropped);
    let mut have = std::collections::HashMap::new();
    for s in &ds.samples {
        *have
            .entry((s.labeled.user, s.labeled.gesture))
            .or_insert(0usize) += 1;
    }
    for u in 0..2 {
        for g in 0..5 {
            let n = have.get(&(u, g)).copied().unwrap_or(0);
            if n < 2 {
                println!(
                    "user {u} gesture {g} ({}): {n}/2",
                    GestureSet::MTransSee5.gesture_name(GestureId(g))
                );
            }
        }
    }
}
