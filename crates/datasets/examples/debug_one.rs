//! Prints frame counts for one failing (user, gesture) capture cell.

use gp_kinematics::gestures::{GestureId, GestureSet};
use gp_kinematics::performance::PerformanceConfig;
use gp_kinematics::{Performance, UserProfile};
use gp_pipeline::Segmenter;
use gp_radar::{Backend, Environment, RadarConfig, RadarSimulator, Scene};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let user: usize = args.get(1).map(|v| v.parse().unwrap()).unwrap_or(1);
    let gesture: usize = args.get(2).map(|v| v.parse().unwrap()).unwrap_or(0);
    let seed: u64 = args.get(3).map(|v| v.parse().unwrap()).unwrap_or(12345);

    let profile = UserProfile::generate(user, 0x3E55);
    println!(
        "user {user}: speed={:.2} gamma={:.2} rom={:.2} height={:.2}",
        profile.speed_factor, profile.timing_gamma, profile.rom_scale, profile.height
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let perf = Performance::with_config(
        &profile,
        GestureSet::MTransSee5,
        GestureId(gesture),
        PerformanceConfig::default(),
        &mut rng,
    );
    let (gs, ge) = perf.gesture_interval();
    println!("gesture interval: {gs:.2}..{ge:.2}");
    let scene = Scene::for_performance(perf, Environment::Home, seed ^ 0xE57);
    let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, seed ^ 0x51B);
    let frames = sim.capture_scene(&scene);
    let counts: Vec<usize> = frames.iter().map(|f| f.len()).collect();
    println!("counts: {counts:?}");
    println!("segments: {:?}", Segmenter::default().segment(&frames));
}
