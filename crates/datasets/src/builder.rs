//! The dataset builder: spec → simulated, preprocessed, labeled samples.

use crate::spec::DatasetSpec;
use gp_kinematics::gestures::GestureId;
use gp_kinematics::{Performance, UserProfile};
use gp_pipeline::{LabeledSample, Preprocessor, PreprocessorConfig};
use gp_radar::{Backend, Environment, RadarConfig, RadarSimulator, Scene};
use gp_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Options controlling how a dataset is generated.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildOptions {
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// Radar backend (geometric by default; the signal chain is ~100×
    /// slower and statistically matched).
    pub backend: Backend,
    /// Radar configuration.
    pub radar: RadarConfig,
    /// Preprocessing configuration.
    pub preprocessor: PreprocessorConfig,
    /// Number of worker threads (`0` = available parallelism).
    pub threads: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            seed: 0xC0FFEE,
            backend: Backend::Geometric,
            radar: RadarConfig::default(),
            preprocessor: PreprocessorConfig::default(),
            threads: 0,
        }
    }
}

/// One generated sample with its capture metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSample {
    /// The labeled gesture cloud (labels: gesture id, user id).
    pub labeled: LabeledSample,
    /// Anchor distance the user stood at (m).
    pub distance: f64,
    /// Articulation-speed multiplier used.
    pub speed_scale: f64,
    /// Capture environment.
    pub environment: Environment,
    /// Repetition index within the (user, gesture, distance, speed) cell.
    pub rep: usize,
}

/// A built dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The specification it was built from.
    pub spec: DatasetSpec,
    /// All successfully captured samples.
    pub samples: Vec<DatasetSample>,
    /// Number of capture attempts that produced no usable segment.
    pub dropped: usize,
}

impl Dataset {
    /// Samples restricted to one anchor distance.
    pub fn at_distance(&self, distance: f64) -> Vec<&DatasetSample> {
        self.samples
            .iter()
            .filter(|s| (s.distance - distance).abs() < 1e-6)
            .collect()
    }

    /// The user profiles of this dataset (regenerated from the spec).
    pub fn profiles(&self) -> Vec<UserProfile> {
        (0..self.spec.users)
            .map(|u| UserProfile::generate(u, self.spec.user_seed))
            .collect()
    }

    /// Summary line for paper Tab. I style reports.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} samples ({} users × {} gestures × {} reps × {} distances × {} speeds, {} dropped)",
            self.spec.name,
            self.samples.len(),
            self.spec.users,
            self.spec.set.gesture_count(),
            self.spec.reps,
            self.spec.distances.len(),
            self.spec.speed_scales.len(),
            self.dropped,
        )
    }
}

/// A single capture work item.
#[derive(Debug, Clone, Copy)]
struct WorkItem {
    user: usize,
    gesture: usize,
    rep: usize,
    distance: f64,
    speed_scale: f64,
}

/// Builds the dataset described by `spec`.
///
/// Each sample runs the full path: kinematic performance → radar capture
/// in the spec's environment → segmentation → noise canceling. Captures
/// whose segmentation finds no gesture are retried (up to four times)
/// with fresh repetition noise and counted in [`Dataset::dropped`] if
/// they still fail.
pub fn build(spec: &DatasetSpec, options: &BuildOptions) -> Dataset {
    let mut work = Vec::with_capacity(spec.sample_count());
    for user in 0..spec.users {
        for gesture in 0..spec.set.gesture_count() {
            for rep in 0..spec.reps {
                for &distance in &spec.distances {
                    for &speed_scale in &spec.speed_scales {
                        work.push(WorkItem {
                            user,
                            gesture,
                            rep,
                            distance,
                            speed_scale,
                        });
                    }
                }
            }
        }
    }

    // Each capture is an independent (seed-derived) simulation, so the
    // shared runtime pool runs them one-per-job and work stealing
    // balances the load; `scope_map` keeps results in work order, which
    // makes the build deterministic for any thread count.
    let pool = WorkerPool::new(options.threads);
    let total = work.len();
    let captured: Vec<Option<DatasetSample>> =
        pool.scope_map(work, |_, item| capture_one(spec, options, &item));

    let mut samples = Vec::with_capacity(total);
    let mut dropped = 0;
    for slot in captured {
        match slot {
            Some(sample) => samples.push(sample),
            None => dropped += 1,
        }
    }
    Dataset {
        spec: spec.clone(),
        samples,
        dropped,
    }
}

fn capture_one(
    spec: &DatasetSpec,
    options: &BuildOptions,
    item: &WorkItem,
) -> Option<DatasetSample> {
    let profile = UserProfile::generate(item.user, spec.user_seed);
    let pre = Preprocessor::new(options.preprocessor.clone());

    for attempt in 0..5u64 {
        let rep_seed = derive_seed(options.seed, spec, item, attempt);
        let mut rng = StdRng::seed_from_u64(rep_seed);
        let config = gp_kinematics::performance::PerformanceConfig {
            distance: item.distance,
            speed_scale: item.speed_scale,
            ..Default::default()
        };
        let perf = Performance::with_config(
            &profile,
            spec.set,
            GestureId(item.gesture),
            config,
            &mut rng,
        );
        let scene = Scene::for_performance(perf, spec.environment, rep_seed ^ 0xE57);
        let mut sim = RadarSimulator::new(options.radar.clone(), options.backend, rep_seed ^ 0x51B);
        let frames = sim.capture_scene(&scene);
        let mut segments = pre.process(&frames);
        if segments.is_empty() {
            continue;
        }
        // Keep the longest segment: spurious splits produce short extras.
        segments.sort_by_key(|s| std::cmp::Reverse(s.duration_frames));
        let best = segments.swap_remove(0);
        if best.cloud.len() < 8 {
            continue; // too sparse to be a usable gesture sample
        }
        return Some(DatasetSample {
            labeled: LabeledSample::from_sample(best, item.gesture, item.user),
            distance: item.distance,
            speed_scale: item.speed_scale,
            environment: spec.environment,
            rep: item.rep,
        });
    }
    None
}

fn derive_seed(master: u64, spec: &DatasetSpec, item: &WorkItem, attempt: u64) -> u64 {
    // Mix all identifying coordinates; FNV-style.
    let mut h = master ^ 0xcbf2_9ce4_8422_2325;
    for v in [
        spec.user_seed,
        item.user as u64,
        item.gesture as u64,
        item.rep as u64,
        (item.distance * 1000.0) as u64,
        (item.speed_scale * 1000.0) as u64,
        attempt,
        spec.environment as u64,
    ] {
        h ^= v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{presets, Scale};

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            distances: vec![1.2],
            ..presets::mtranssee(Scale::Custom { users: 2, reps: 2 }, &[1.2])
        }
    }

    #[test]
    fn builds_expected_sample_count() {
        let spec = tiny_spec();
        let ds = build(&spec, &BuildOptions::default());
        // 2 users × 5 gestures × 2 reps = 20 attempts; nearly all succeed.
        assert!(ds.samples.len() + ds.dropped == 20);
        assert!(ds.samples.len() >= 16, "too many drops: {}", ds.dropped);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = tiny_spec();
        let opts = BuildOptions {
            threads: 2,
            ..BuildOptions::default()
        };
        let a = build(&spec, &opts);
        let b = build(&spec, &opts);
        assert_eq!(a.samples.len(), b.samples.len());
        // Order-insensitive comparison: sort by identifying coordinates.
        let key = |s: &DatasetSample| (s.labeled.user, s.labeled.gesture, s.rep);
        let mut sa = a.samples.clone();
        let mut sb = b.samples.clone();
        sa.sort_by_key(key);
        sb.sort_by_key(key);
        assert_eq!(sa, sb);
    }

    #[test]
    fn labels_cover_all_classes() {
        let spec = tiny_spec();
        let ds = build(&spec, &BuildOptions::default());
        let users: std::collections::HashSet<usize> =
            ds.samples.iter().map(|s| s.labeled.user).collect();
        let gestures: std::collections::HashSet<usize> =
            ds.samples.iter().map(|s| s.labeled.gesture).collect();
        assert_eq!(users.len(), 2);
        assert_eq!(gestures.len(), 5);
    }

    #[test]
    fn clouds_are_nonempty_and_near_anchor() {
        let spec = tiny_spec();
        let ds = build(&spec, &BuildOptions::default());
        for s in &ds.samples {
            assert!(s.labeled.cloud.len() >= 8);
            let c = s.labeled.cloud.centroid().unwrap();
            assert!(
                (c.y - s.distance).abs() < 1.0,
                "cloud not near anchor: centroid {c:?} vs distance {}",
                s.distance
            );
        }
    }

    #[test]
    fn at_distance_filters() {
        let spec = presets::mtranssee(Scale::Custom { users: 1, reps: 1 }, &[1.2, 2.4]);
        let ds = build(&spec, &BuildOptions::default());
        let near = ds.at_distance(1.2);
        let far = ds.at_distance(2.4);
        assert_eq!(near.len() + far.len(), ds.samples.len());
        assert!(!near.is_empty());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let spec = tiny_spec();
        let seq = build(
            &spec,
            &BuildOptions {
                threads: 1,
                ..BuildOptions::default()
            },
        );
        let par = build(
            &spec,
            &BuildOptions {
                threads: 4,
                ..BuildOptions::default()
            },
        );
        let key = |s: &DatasetSample| (s.labeled.user, s.labeled.gesture, s.rep);
        let mut a = seq.samples.clone();
        let mut b = par.samples.clone();
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }
}
