//! Dataset specifications and the paper's preset configurations.

use gp_codec::{Decode, DecodeError, Encode, Value};
use gp_kinematics::gestures::GestureSet;
use gp_radar::Environment;

/// How large to build a dataset.
///
/// `Paper` reproduces the published cohort sizes; `Small` is a reduced
/// configuration for CPU-budget runs (experiment binaries default to it
/// and report which scale was used).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced cohort for quick runs.
    Small,
    /// Published cohort sizes.
    Paper,
    /// Explicit user/repetition counts.
    Custom {
        /// Number of users.
        users: usize,
        /// Repetitions per (user, gesture, distance, speed) combination.
        reps: usize,
    },
}

impl Scale {
    /// Resolves `(users, reps)` against a preset's paper-scale values and
    /// small-scale values.
    pub fn resolve(self, paper: (usize, usize), small: (usize, usize)) -> (usize, usize) {
        match self {
            Scale::Paper => paper,
            Scale::Small => small,
            Scale::Custom { users, reps } => (users, reps),
        }
    }
}

impl Encode for Scale {
    fn encode(&self) -> Value {
        match self {
            Scale::Small => Value::Str("small".into()),
            Scale::Paper => Value::Str("paper".into()),
            Scale::Custom { users, reps } => {
                Value::record([("users", users.encode()), ("reps", reps.encode())])
            }
        }
    }
}

impl Decode for Scale {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        match value {
            Value::Str(s) if s == "small" => Ok(Scale::Small),
            Value::Str(s) if s == "paper" => Ok(Scale::Paper),
            Value::Str(s) => Err(DecodeError::new(format!("unknown scale '{s}'"))),
            map => Ok(Scale::Custom {
                users: map.get("users")?,
                reps: map.get("reps")?,
            }),
        }
    }
}

/// A full dataset specification.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name (used in reports).
    pub name: String,
    /// Gesture vocabulary.
    pub set: GestureSet,
    /// Capture environment.
    pub environment: Environment,
    /// Number of users.
    pub users: usize,
    /// Repetitions per (user, gesture, distance, speed).
    pub reps: usize,
    /// Anchor distances from the radar (m).
    pub distances: Vec<f64>,
    /// Articulation-speed multipliers (1.0 = natural).
    pub speed_scales: Vec<f64>,
    /// Seed stream for user profiles; keep equal across environments so
    /// the *same people* appear in both rooms (as in the paper).
    pub user_seed: u64,
}

impl DatasetSpec {
    /// Total number of samples the builder will attempt.
    pub fn sample_count(&self) -> usize {
        self.users
            * self.set.gesture_count()
            * self.reps
            * self.distances.len()
            * self.speed_scales.len()
    }
}

impl Encode for DatasetSpec {
    fn encode(&self) -> Value {
        Value::record([
            ("name", self.name.encode()),
            ("set", self.set.encode()),
            ("environment", self.environment.encode()),
            ("users", self.users.encode()),
            ("reps", self.reps.encode()),
            ("distances", self.distances.encode()),
            ("speed_scales", self.speed_scales.encode()),
            ("user_seed", self.user_seed.encode()),
        ])
    }
}

impl Decode for DatasetSpec {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        Ok(DatasetSpec {
            name: value.get("name")?,
            set: value.get("set")?,
            environment: value.get("environment")?,
            users: value.get("users")?,
            reps: value.get("reps")?,
            distances: value.get("distances")?,
            speed_scales: value.get("speed_scales")?,
            user_seed: value.get("user_seed")?,
        })
    }
}

/// Preset specifications for the paper's datasets.
pub mod presets {
    use super::*;

    /// Self-collected GesturePrint dataset: 15 ASL gestures, 17 users,
    /// 12–25 reps, office or meeting room, 1.2 m.
    pub fn gestureprint(environment: Environment, scale: Scale) -> DatasetSpec {
        let (users, reps) = scale.resolve((17, 18), (5, 6));
        DatasetSpec {
            name: format!("GesturePrint-{}", environment.name().replace(' ', "")),
            set: GestureSet::Asl15,
            environment,
            users,
            reps,
            distances: vec![1.2],
            speed_scales: vec![1.0],
            user_seed: 42,
        }
    }

    /// Pantomime dataset: 21 gestures; 26 users in the office subset,
    /// 14 in the open-space subset; closest anchor 1 m.
    pub fn pantomime(environment: Environment, scale: Scale) -> DatasetSpec {
        let paper_users = if environment == Environment::OpenSpace {
            14
        } else {
            26
        };
        let (users, reps) = scale.resolve((paper_users, 10), (5, 5));
        DatasetSpec {
            name: format!("Pantomime-{}", environment.name().replace(' ', "")),
            set: GestureSet::Pantomime21,
            environment,
            users,
            reps,
            distances: vec![1.0],
            speed_scales: vec![1.0],
            // Different participants in office vs open space (paper
            // §VI-B1), so give each environment its own user stream.
            user_seed: 0x9A27 ^ environment as u64,
        }
    }

    /// Pantomime articulation-speed subset (paper §VI-B3): the same
    /// gestures performed slow / normal / fast.
    pub fn pantomime_speeds(scale: Scale) -> DatasetSpec {
        let (users, reps) = scale.resolve((12, 8), (4, 4));
        DatasetSpec {
            name: "Pantomime-Speeds".into(),
            set: GestureSet::Pantomime21,
            environment: Environment::Office,
            users,
            reps,
            distances: vec![1.0],
            speed_scales: vec![0.7, 1.0, 1.4],
            user_seed: 0x9A27 ^ Environment::Office as u64,
        }
    }

    /// mHomeGes dataset: 10 arm gestures, up to 14 users, anchors from
    /// 1.2 m to 3.0 m every 0.15 m.
    pub fn mhomeges(scale: Scale, distances: &[f64]) -> DatasetSpec {
        let (users, reps) = scale.resolve((14, 12), (5, 6));
        DatasetSpec {
            name: "mHomeGes".into(),
            set: GestureSet::MHomeGes10,
            environment: Environment::Home,
            users,
            reps,
            distances: distances.to_vec(),
            speed_scales: vec![1.0],
            user_seed: 0x71AB,
        }
    }

    /// The mHomeGes anchor grid (1.2–3.0 m step 0.15).
    pub fn mhomeges_distances() -> Vec<f64> {
        (0..13).map(|i| 1.2 + 0.15 * i as f64).collect()
    }

    /// mTransSee dataset: 5 arm motions, 32 users, anchors from 1.2 m to
    /// 4.8 m every 0.3 m.
    pub fn mtranssee(scale: Scale, distances: &[f64]) -> DatasetSpec {
        let (users, reps) = scale.resolve((32, 10), (6, 6));
        DatasetSpec {
            name: "mTransSee".into(),
            set: GestureSet::MTransSee5,
            environment: Environment::Home,
            users,
            reps,
            distances: distances.to_vec(),
            speed_scales: vec![1.0],
            user_seed: 0x3E55,
        }
    }

    /// The mTransSee anchor grid (1.2–4.8 m step 0.3, 13 anchors).
    pub fn mtranssee_distances() -> Vec<f64> {
        (0..13).map(|i| 1.2 + 0.3 * i as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table1() {
        let gp = presets::gestureprint(Environment::Office, Scale::Paper);
        assert_eq!(gp.users, 17);
        assert_eq!(gp.set.gesture_count(), 15);
        let pan = presets::pantomime(Environment::Office, Scale::Paper);
        assert_eq!(pan.users, 26);
        let pan_open = presets::pantomime(Environment::OpenSpace, Scale::Paper);
        assert_eq!(pan_open.users, 14);
        let mt = presets::mtranssee(Scale::Paper, &[1.2]);
        assert_eq!(mt.users, 32);
        let mh = presets::mhomeges(Scale::Paper, &[1.2]);
        assert!(mh.users >= 8 && mh.users <= 14);
    }

    #[test]
    fn same_users_across_gestureprint_environments() {
        let office = presets::gestureprint(Environment::Office, Scale::Paper);
        let meeting = presets::gestureprint(Environment::MeetingRoom, Scale::Paper);
        assert_eq!(
            office.user_seed, meeting.user_seed,
            "same participants in both rooms"
        );
    }

    #[test]
    fn different_users_across_pantomime_environments() {
        let office = presets::pantomime(Environment::Office, Scale::Paper);
        let open = presets::pantomime(Environment::OpenSpace, Scale::Paper);
        assert_ne!(
            office.user_seed, open.user_seed,
            "different participants per room"
        );
    }

    #[test]
    fn distance_grids() {
        let mh = presets::mhomeges_distances();
        assert_eq!(mh.len(), 13);
        assert!((mh[0] - 1.2).abs() < 1e-9 && (mh[12] - 3.0).abs() < 1e-9);
        let mt = presets::mtranssee_distances();
        assert_eq!(mt.len(), 13);
        assert!((mt[0] - 1.2).abs() < 1e-9 && (mt[12] - 4.8).abs() < 1e-9);
    }

    #[test]
    fn sample_count_multiplies() {
        let spec = presets::mtranssee(Scale::Custom { users: 3, reps: 4 }, &[1.2, 1.5]);
        assert_eq!(spec.sample_count(), 3 * 5 * 4 * 2);
    }

    #[test]
    fn scale_resolution() {
        assert_eq!(Scale::Paper.resolve((17, 18), (6, 8)), (17, 18));
        assert_eq!(Scale::Small.resolve((17, 18), (6, 8)), (6, 8));
        assert_eq!(
            Scale::Custom { users: 2, reps: 3 }.resolve((17, 18), (6, 8)),
            (2, 3)
        );
    }
}
