//! Synthetic dataset builders mirroring the paper's four gesture datasets.
//!
//! Paper Tab. I:
//!
//! | Dataset | Scenario | Gestures | Users |
//! |---|---|---|---|
//! | GesturePrint (self-collected) | Office + Meeting Room | 15 ASL | 17 |
//! | Pantomime | Office / Open space | 21 self-defined | 26 / 14 |
//! | mHomeGes | Home | 10 self-defined | 8–14 |
//! | mTransSee | Home | 5 self-defined | 32 |
//!
//! Every sample is produced end-to-end: a [`gp_kinematics::Performance`]
//! animates the user, [`gp_radar::RadarSimulator`] captures frames inside
//! the dataset's [`gp_radar::Environment`], and [`gp_pipeline`] segments
//! and cleans the gesture cloud. Builders are deterministic in the master
//! seed and parallelised over samples with std scoped threads.
//!
//! # Example
//!
//! ```no_run
//! use gp_datasets::{presets, BuildOptions, Scale};
//!
//! let spec = presets::mtranssee(Scale::Small, &[1.2]);
//! let dataset = gp_datasets::build(&spec, &BuildOptions::default());
//! assert!(!dataset.samples.is_empty());
//! println!("{} samples", dataset.samples.len());
//! ```

pub mod builder;
pub mod spec;

pub use builder::{build, BuildOptions, Dataset, DatasetSample};
pub use spec::{presets, DatasetSpec, Scale};
