//! Socket-fronted serving for GesturePrint: the network edge of
//! [`gp_serve`].
//!
//! The paper's deployment model is a live mmWave sensor pushing frames
//! to a recognition service. This crate is that wire: radar streams
//! arrive over TCP or Unix domain sockets as length-prefixed,
//! checksummed frames ([`gp_codec::framing`]) carrying gp-codec JSON
//! messages ([`wire`]), and a single-threaded non-blocking reactor
//! ([`NetServer`]) feeds them through [`gp_serve::ServeEngine`]'s
//! two-stage admission:
//!
//! 1. **Per-session budget** ([`gp_serve::AdmissionConfig`], a token
//!    bucket) — an over-rate tenant sheds *its own* frames, recorded
//!    against that session, before engine capacity is ever consulted.
//! 2. **Engine capacity** — when the global gate is full for a
//!    within-budget session, the frame is *deferred*: the reactor parks
//!    it and stops reading that connection, so the kernel's socket
//!    buffer fills and TCP pushes back on the sender instead of the
//!    server buffering without bound.
//!
//! Classified results stream back to each client, and a graceful close
//! ends with a [`wire::ServerMsg::Bye`] carrying the session's exact
//! admission ledger — every frame a client sent is accounted admitted,
//! budget-shed, or capacity-shed, with nothing lost in between.
//!
//! Observability rides the same wire: [`wire::ClientMsg::StatsQuery`]
//! mid-stream returns a live, versioned
//! [`gp_telemetry::TelemetrySnapshot`] ([`NetClient::query_stats`]) —
//! per-stage latency histograms, pool utilization, and the reactor's
//! `net.*` counters in one export.
//!
//! Identity rides it too (wire v2): [`NetClient::enroll`] switches a
//! session into enrollment mode (every completed segment's embedding
//! joins that user's gallery template in the server's
//! [`gp_serve::IdentityStore`]), and [`NetClient::identify_mode`] turns
//! results into open-set identity verdicts — a known user within the
//! calibrated gallery threshold, or an explicit *unknown*.
//!
//! # Example
//!
//! ```no_run
//! use gp_net::{NetClient, NetConfig, NetListener, NetServer};
//! use gp_serve::ServeEngine;
//! use std::sync::Arc;
//! # fn demo(engine: Arc<ServeEngine>, frames: Vec<gp_radar::Frame>) -> std::io::Result<()> {
//! let listener = NetListener::bind_tcp("127.0.0.1:0")?;
//! let server = NetServer::spawn(engine, listener, NetConfig::default())?;
//! let addr = server.local_addr().expect("tcp listener has an address");
//!
//! let mut client = NetClient::connect_tcp(addr, 1 << 20)?;
//! for frame in &frames {
//!     client.send_frame(frame)?;
//! }
//! let report = client.close()?;
//! println!("{} results, {:?}", report.results.len(), report.ledger);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod server;
pub mod wire;

pub use client::{ClientResult, NetClient, SessionReport};
pub use server::{NetConfig, NetListener, NetServer, NetStats};
// Re-exported so socket peers can name the `StatsQuery` reply type.
pub use gp_telemetry::TelemetrySnapshot;
// Re-exported so result consumers can match identity verdicts without
// naming gp-serve.
pub use gp_serve::IdentityOutcome;
pub use wire::{ClientMsg, ServerMsg, WireLedger, MIN_WIRE_VERSION, WIRE_VERSION};
