//! The socket front: a single-threaded, non-blocking reactor that
//! multiplexes framed radar streams into a shared
//! [`gp_serve::ServeEngine`].
//!
//! # Design
//!
//! One reactor thread owns every connection. Sockets are plain `std`
//! non-blocking streams; each tick the reactor
//!
//! 1. accepts pending connections,
//! 2. flushes each connection's outbound buffer,
//! 3. re-offers each connection's *deferred* frame (see below),
//! 4. reads a bounded chunk per connection (round-robin fairness),
//!    deframes with [`gp_codec::FrameDecoder`], and routes decoded
//!    [`ClientMsg`]s through [`ServeEngine::offer_frame`] two-stage
//!    admission,
//! 5. periodically [`ServeEngine::flush`]es partial micro-batches,
//! 6. polls published results ([`ServeEngine::poll_events`]) and writes
//!    them back to the owning connection.
//!
//! **Backpressure, not buffering.** A frame the engine rejects for
//! *capacity* (session within budget, engine saturated) is parked as
//! the connection's one `deferred` frame and the connection stops
//! reading — the kernel socket buffer fills and TCP pushes back on the
//! remote. A frame rejected by the session's own *budget* is already
//! shed against that tenant and simply dropped. This is how an
//! over-rate tenant sheds its own frames while quiet tenants keep
//! their latency.
//!
//! **Slow readers are shed, not grown.** Outbound buffers are capped
//! ([`NetConfig::out_buffer_cap`]); a result that would overflow a slow
//! reader's buffer is counted ([`NetStats::dropped_results`]) and
//! dropped rather than ballooning server memory. `Welcome`/`Stats`/
//! `Bye`/`Error` control messages are always queued.
//!
//! **Live observability.** [`ClientMsg::StatsQuery`] mid-stream is
//! answered with [`ServerMsg::Stats`] carrying the current
//! [`gp_telemetry::TelemetrySnapshot`] — stage latency histograms,
//! pool utilization, and the reactor's own `net.*` counters, which are
//! registered in the engine's registry when its telemetry is on.
//!
//! **Exact goodbyes.** On [`ClientMsg::Close`] the engine session is
//! closed; once [`ServeEngine::session_settled`] reports every enqueued
//! segment published *and* the results have been routed, the reactor
//! sends [`ServerMsg::Bye`] with the session's full admission ledger.
//! The settled check is snapshotted *before* the event poll in the same
//! tick, so a result can never be published after its session's Bye.
//!
//! The reactor never blocks on inference: it uses the non-blocking
//! [`ServeEngine::poll_events`] pump (never `drain`), and the only
//! blocking engine calls are bounded gate waits inside `flush`.

use crate::wire::{
    from_wire, to_wire, ClientMsg, ServerMsg, WireLedger, MIN_WIRE_VERSION, WIRE_VERSION,
};
use gp_codec::FrameDecoder;
use gp_radar::Frame;
use gp_serve::{Admission, RejectReason, ServeEngine, SessionId, SessionMode};
use gp_telemetry::{Counter, Registry};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Socket-front configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Maximum framed message size accepted or produced (bytes).
    pub max_frame: usize,
    /// Whether classified results are streamed back to clients. Off,
    /// results are still polled and accounted, just not serialized —
    /// useful for ingest-only deployments and admission benchmarks.
    pub send_results: bool,
    /// Outbound buffer cap per connection (bytes). Results that would
    /// overflow it are dropped and counted, so one slow reader cannot
    /// grow server memory.
    pub out_buffer_cap: usize,
    /// Maximum bytes read from one connection per reactor tick —
    /// round-robin fairness so a firehose connection cannot starve the
    /// rest of the tick.
    pub read_chunk: usize,
    /// How often partial micro-batches are flushed to the executor, so
    /// a lone segment never waits indefinitely for a full batch.
    pub flush_interval: Duration,
    /// Reactor sleep when a tick found no work (bounds idle CPU).
    pub idle_sleep: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_frame: 1 << 20,
            send_results: true,
            out_buffer_cap: 256 << 10,
            read_chunk: 16 << 10,
            flush_interval: Duration::from_millis(2),
            idle_sleep: Duration::from_micros(500),
        }
    }
}

/// A bound, not-yet-serving listener for [`NetServer::spawn`].
#[derive(Debug)]
pub enum NetListener {
    /// TCP on any interface `bind_tcp` resolved.
    Tcp(TcpListener),
    /// A Unix domain socket (Unix only).
    #[cfg(unix)]
    Unix(UnixListener),
}

impl NetListener {
    /// Binds a TCP listener (use port 0 for an ephemeral port, then
    /// [`NetServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_tcp(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(NetListener::Tcp(TcpListener::bind(addr)?))
    }

    /// Binds a Unix domain socket listener at `path` (the path must not
    /// already exist).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    #[cfg(unix)]
    pub fn bind_unix(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        Ok(NetListener::Unix(UnixListener::bind(path)?))
    }

    fn local_addr(&self) -> Option<SocketAddr> {
        match self {
            NetListener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            NetListener::Unix(_) => None,
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            NetListener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            NetListener::Unix(l) => l.set_nonblocking(true),
        }
    }

    /// Accepts one pending connection, or `None` when none is waiting.
    fn accept(&self) -> io::Result<Option<ConnStream>> {
        match self {
            NetListener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true)?;
                    // Results are small and latency-sensitive.
                    let _ = stream.set_nodelay(true);
                    Ok(Some(ConnStream::Tcp(stream)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            NetListener::Unix(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true)?;
                    Ok(Some(ConnStream::Unix(stream)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

#[derive(Debug)]
enum ConnStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ConnStream::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ConnStream::Unix(s) => s.write(buf),
        }
    }

    fn shutdown_write(&self) {
        let _ = match self {
            ConnStream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            #[cfg(unix)]
            ConnStream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        };
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Waiting for [`ClientMsg::Hello`].
    Handshake,
    /// Live stream feeding the engine session.
    Streaming(SessionId),
    /// Session closed in the engine; waiting for it to settle so the
    /// Bye ledger is final.
    Closing(SessionId),
    /// Goodbye (or fatal error) queued; connection drops once the
    /// outbound buffer is flushed.
    Draining,
}

struct Conn {
    stream: ConnStream,
    decoder: FrameDecoder,
    /// Outbound bytes not yet accepted by the kernel; `out_pos` is the
    /// already-written prefix.
    out: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    /// A capacity-rejected frame waiting for engine headroom; while
    /// present the connection does not read (socket-level backpressure).
    deferred: Option<Frame>,
    /// Results dropped because this client's outbound buffer was full.
    dropped_results: u64,
    /// Peer half-closed its write side (EOF seen); expected after
    /// `Close`, a mid-stream disconnect otherwise.
    read_eof: bool,
}

impl Conn {
    fn new(stream: ConnStream, max_frame: usize) -> Self {
        Conn {
            stream,
            decoder: FrameDecoder::new(max_frame),
            out: Vec::new(),
            out_pos: 0,
            state: ConnState::Handshake,
            deferred: None,
            dropped_results: 0,
            read_eof: false,
        }
    }

    fn session(&self) -> Option<SessionId> {
        match self.state {
            ConnState::Streaming(id) | ConnState::Closing(id) => Some(id),
            _ => None,
        }
    }

    fn out_backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn queue(&mut self, bytes: &[u8]) {
        if self.out_pos > 0 && self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        self.out.extend_from_slice(bytes);
    }

    /// Writes buffered bytes until the kernel pushes back. `Err` means
    /// the connection is gone.
    fn flush_out(&mut self) -> io::Result<()> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(())
    }
}

/// Socket-front counters, registered as `net.*` in the telemetry
/// registry — the engine's shared one when its telemetry is on (so one
/// [`gp_telemetry::TelemetrySnapshot`] covers serve + pool + net), a
/// private one otherwise.
#[derive(Debug)]
struct NetCounters {
    accepted: Arc<Counter>,
    closed: Arc<Counter>,
    decoded_frames: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    disconnects: Arc<Counter>,
    dropped_results: Arc<Counter>,
    orphaned_results: Arc<Counter>,
}

impl NetCounters {
    fn register(registry: &Registry) -> NetCounters {
        NetCounters {
            accepted: registry.counter("net.accepted"),
            closed: registry.counter("net.closed"),
            decoded_frames: registry.counter("net.decoded_frames"),
            protocol_errors: registry.counter("net.protocol_errors"),
            disconnects: registry.counter("net.disconnects"),
            dropped_results: registry.counter("net.dropped_results"),
            orphaned_results: registry.counter("net.orphaned_results"),
        }
    }
}

/// A snapshot of socket-front counters (engine-side admission counters
/// live in [`gp_serve::ServeStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections fully closed (gracefully or not).
    pub closed: u64,
    /// [`ClientMsg::Frame`] messages successfully decoded. Every one is
    /// accounted for in the engine:
    /// `decoded_frames == Σ (admitted + shed_budget + shed_capacity)`
    /// once all connections have drained.
    pub decoded_frames: u64,
    /// Corrupt frames skipped plus fatal protocol violations.
    pub protocol_errors: u64,
    /// Connections that vanished mid-stream (EOF or error without
    /// [`ClientMsg::Close`]).
    pub disconnects: u64,
    /// Results dropped because the owning client read too slowly.
    pub dropped_results: u64,
    /// Results whose connection was already gone when they published.
    pub orphaned_results: u64,
}

impl NetCounters {
    fn snapshot(&self) -> NetStats {
        NetStats {
            accepted: self.accepted.get(),
            closed: self.closed.get(),
            decoded_frames: self.decoded_frames.get(),
            protocol_errors: self.protocol_errors.get(),
            disconnects: self.disconnects.get(),
            dropped_results: self.dropped_results.get(),
            orphaned_results: self.orphaned_results.get(),
        }
    }
}

/// Handle to a running socket front. Dropping it (or calling
/// [`NetServer::shutdown`]) stops the reactor, closing every live
/// session so engine accounting stays exact.
pub struct NetServer {
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    addr: Option<SocketAddr>,
    handle: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Starts the reactor thread serving `engine` on `listener`.
    ///
    /// # Errors
    ///
    /// Propagates failure to configure the listener as non-blocking.
    pub fn spawn(
        engine: Arc<ServeEngine>,
        listener: NetListener,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        listener.set_nonblocking()?;
        let addr = listener.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        // Publish net.* counters into the engine's registry when its
        // telemetry is on; a private registry keeps them (and
        // StatsQuery) working when it is off.
        let registry = engine
            .registry()
            .cloned()
            .unwrap_or_else(|| Arc::new(Registry::new()));
        let counters = Arc::new(NetCounters::register(&registry));
        let reactor = Reactor {
            engine,
            listener,
            config,
            stop: stop.clone(),
            counters: counters.clone(),
            registry,
            conns: HashMap::new(),
            routes: HashMap::new(),
            next_conn: 0,
            last_flush: Instant::now(),
        };
        let handle = std::thread::Builder::new()
            .name("gp-net-reactor".into())
            .spawn(move || reactor.run())
            .expect("spawning the reactor thread");
        Ok(NetServer {
            stop,
            counters,
            addr,
            handle: Some(handle),
        })
    }

    /// The bound TCP address (`None` for Unix listeners).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Current socket-front counters.
    pub fn stats(&self) -> NetStats {
        self.counters.snapshot()
    }

    /// Stops the reactor and waits for it to clean up (live sessions
    /// are closed in the engine first).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Why a connection is being torn down, for accounting.
enum Teardown {
    /// Outbound buffer fully flushed after a goodbye.
    Graceful,
    /// Peer vanished (EOF mid-stream, or a socket error).
    Lost,
}

struct Reactor {
    engine: Arc<ServeEngine>,
    listener: NetListener,
    config: NetConfig,
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    /// The registry `net.*` counters live in (shared with the engine
    /// when its telemetry is on); source for `StatsQuery` fallback.
    registry: Arc<Registry>,
    conns: HashMap<u64, Conn>,
    /// Engine session → owning connection, for result routing.
    routes: HashMap<SessionId, u64>,
    next_conn: u64,
    last_flush: Instant,
}

impl Reactor {
    fn run(mut self) {
        while !self.stop.load(Ordering::Acquire) {
            let busy = self.tick();
            if !busy {
                std::thread::sleep(self.config.idle_sleep);
            }
        }
        // Shutdown: close every live session so the engine's ledger
        // reconciles (deferred frames are admitted, streams closed).
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.teardown(id, Teardown::Lost);
        }
        self.engine.flush();
    }

    /// One reactor iteration; returns whether any work happened.
    fn tick(&mut self) -> bool {
        let mut busy = false;
        busy |= self.accept_pending();

        let ids: Vec<u64> = self.conns.keys().copied().collect();
        let mut dead: Vec<u64> = Vec::new();
        for &id in &ids {
            match self.service_conn(id) {
                Ok(active) => busy |= active,
                Err(()) => dead.push(id),
            }
        }
        for id in dead {
            self.teardown(id, Teardown::Lost);
            busy = true;
        }

        if self.last_flush.elapsed() >= self.config.flush_interval {
            self.engine.flush();
            self.last_flush = Instant::now();
        }

        // Settled is snapshotted *before* the poll: every result a
        // settled session ever published is already in the bus, so this
        // tick's routing delivers it before the Bye below.
        let settled: Vec<u64> = self
            .conns
            .iter()
            .filter_map(|(&id, conn)| match conn.state {
                ConnState::Closing(session) if self.engine.session_settled(session) => Some(id),
                _ => None,
            })
            .collect();

        busy |= self.route_events();

        for id in settled {
            self.send_bye(id);
            busy = true;
        }

        // Drop connections whose goodbye has fully flushed.
        let drained: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::Draining && c.out_backlog() == 0)
            .map(|(&id, _)| id)
            .collect();
        for id in drained {
            self.teardown(id, Teardown::Graceful);
            busy = true;
        }
        busy
    }

    fn accept_pending(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok(Some(stream)) => {
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns
                        .insert(id, Conn::new(stream, self.config.max_frame));
                    self.counters.accepted.inc();
                    any = true;
                }
                Ok(None) => break,
                Err(_) => break,
            }
        }
        any
    }

    /// Write, deferred-retry, and read phases for one connection.
    /// `Err(())` means the socket is gone.
    fn service_conn(&mut self, id: u64) -> Result<bool, ()> {
        let mut busy = false;

        // Phase 1: push buffered output.
        {
            let conn = self.conns.get_mut(&id).expect("serviced conn exists");
            let had_backlog = conn.out_backlog() > 0;
            conn.flush_out().map_err(|_| ())?;
            busy |= had_backlog && conn.out_backlog() == 0;
        }

        // Phase 2: retry the deferred frame before reading more.
        if let Some(frame) = self.conns.get_mut(&id).and_then(|c| c.deferred.take()) {
            let session = self
                .conns
                .get(&id)
                .and_then(|c| c.session())
                .expect("deferred frame implies a session");
            match self.engine.offer_frame(session, frame) {
                Admission::Admitted(_)
                | Admission::Rejected {
                    reason: RejectReason::Budget,
                    ..
                } => {
                    // The parked frame is resolved (admitted, or shed
                    // against the tenant). Messages that arrived behind
                    // it may still sit undecoded in the buffer — drain
                    // them now, before the read phase, so a `Close`
                    // that raced the pause is never stranded.
                    busy = true;
                    self.ingest(id, &[])?;
                }
                Admission::Rejected {
                    frame,
                    reason: RejectReason::Capacity,
                } => {
                    // Still saturated: keep waiting, reads stay paused.
                    // (`note_deferred` was recorded on first deferral.)
                    self.conns.get_mut(&id).expect("conn exists").deferred = Some(frame);
                }
            }
        }

        // Phase 3: read — unless backpressure has paused this
        // connection or the peer already half-closed.
        let paused = {
            let conn = self.conns.get(&id).expect("conn exists");
            conn.deferred.is_some() || conn.read_eof || matches!(conn.state, ConnState::Draining)
        };
        if paused {
            return Ok(busy);
        }

        let mut taken = 0usize;
        let mut chunk = [0u8; 4096];
        while taken < self.config.read_chunk {
            let read = {
                let conn = self.conns.get_mut(&id).expect("conn exists");
                conn.stream.read(&mut chunk)
            };
            match read {
                Ok(0) => {
                    let conn = self.conns.get_mut(&id).expect("conn exists");
                    conn.read_eof = true;
                    if matches!(conn.state, ConnState::Handshake | ConnState::Streaming(_)) {
                        // Mid-stream disconnect: salvage accounting and
                        // still attempt a goodbye (the peer may have
                        // only half-closed); a failed write tears down.
                        self.counters.disconnects.inc();
                        self.finish_stream(id);
                    }
                    break;
                }
                Ok(n) => {
                    busy = true;
                    taken += n;
                    self.ingest(id, &chunk[..n])?;
                    // Admission may have paused the connection, or a
                    // protocol error started draining it, mid-chunk.
                    let conn = self.conns.get(&id).expect("conn exists");
                    if conn.deferred.is_some() || conn.state == ConnState::Draining {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        Ok(busy)
    }

    /// Feeds raw bytes through the connection's frame decoder and
    /// handles every complete message. `Err(())` = connection gone.
    fn ingest(&mut self, id: u64, bytes: &[u8]) -> Result<(), ()> {
        self.conns
            .get_mut(&id)
            .expect("conn exists")
            .decoder
            .extend(bytes);
        loop {
            // A paused (deferred) connection stops decoding too: its
            // buffered bytes keep until the engine has headroom.
            let conn = self.conns.get_mut(&id).expect("conn exists");
            if conn.deferred.is_some() || conn.state == ConnState::Draining {
                return Ok(());
            }
            let payload = match conn.decoder.next() {
                Ok(Some(payload)) => payload,
                Ok(None) => return Ok(()),
                Err(e) if !e.desyncs() => {
                    // Corrupt frame: checksum mismatch. Skippable
                    // without losing framing — count and continue.
                    self.counters.protocol_errors.inc();
                    continue;
                }
                Err(e) => {
                    self.fatal(id, &format!("framing error: {e}"));
                    return Ok(());
                }
            };
            let msg = match from_wire::<ClientMsg>(&payload) {
                Ok(msg) => msg,
                Err(e) => {
                    self.fatal(id, &format!("bad message: {e}"));
                    return Ok(());
                }
            };
            self.handle_msg(id, msg);
        }
    }

    fn handle_msg(&mut self, id: u64, msg: ClientMsg) {
        let state = self.conns.get(&id).expect("conn exists").state;
        match (state, msg) {
            (ConnState::Handshake, ClientMsg::Hello { version }) => {
                if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
                    self.fatal(
                        id,
                        &format!(
                            "unsupported wire version {version} \
                             (want {MIN_WIRE_VERSION}..={WIRE_VERSION})"
                        ),
                    );
                    return;
                }
                let session = self.engine.open_session();
                self.routes.insert(session, id);
                let welcome = to_wire(
                    &ServerMsg::Welcome { session: session.0 },
                    self.config.max_frame,
                );
                let conn = self.conns.get_mut(&id).expect("conn exists");
                conn.state = ConnState::Streaming(session);
                conn.queue(&welcome);
            }
            (ConnState::Streaming(session), ClientMsg::Frame(frame)) => {
                self.counters.decoded_frames.inc();
                match self.engine.offer_frame(session, frame) {
                    Admission::Admitted(_) => {}
                    Admission::Rejected {
                        reason: RejectReason::Budget,
                        ..
                    } => {} // tenant outran its budget; already recorded
                    Admission::Rejected {
                        frame,
                        reason: RejectReason::Capacity,
                    } => {
                        // Engine saturated: park the frame and pause
                        // reads. TCP pushes back from here on.
                        self.engine.note_deferred(session);
                        self.conns.get_mut(&id).expect("conn exists").deferred = Some(frame);
                    }
                }
            }
            (ConnState::Streaming(_), ClientMsg::StatsQuery) => {
                // Live telemetry export. The engine's snapshot covers
                // the whole registry (serve stages, pool, net.*); the
                // reactor's private registry answers when engine
                // telemetry is off. A stats reply is a control message:
                // always queued, like Welcome/Bye.
                let snapshot = self
                    .engine
                    .telemetry_snapshot()
                    .unwrap_or_else(|| self.registry.snapshot());
                let bytes = to_wire(&ServerMsg::Stats(snapshot), self.config.max_frame);
                self.conns.get_mut(&id).expect("conn exists").queue(&bytes);
            }
            (ConnState::Streaming(session), ClientMsg::Enroll { user }) => {
                // A mode switch only affects segments that *complete*
                // after it — the engine snapshots the mode at enqueue —
                // so the ack is an exact promise: everything behind the
                // ack enrolls under `user`.
                if self
                    .engine
                    .set_session_mode(session, SessionMode::Enroll(user.clone()))
                {
                    let bytes = to_wire(&ServerMsg::EnrollAck { user }, self.config.max_frame);
                    // Acks are control messages: always queued, like
                    // Welcome/Stats/Bye.
                    self.conns.get_mut(&id).expect("conn exists").queue(&bytes);
                } else {
                    self.fatal(id, "enrollment requires a server-side identity store");
                }
            }
            (ConnState::Streaming(session), ClientMsg::Identify) => {
                if !self.engine.set_session_mode(session, SessionMode::Identify) {
                    self.fatal(id, "identification requires a server-side identity store");
                }
            }
            (ConnState::Streaming(session), ClientMsg::Close) => {
                self.engine.close_session(session);
                self.conns.get_mut(&id).expect("conn exists").state = ConnState::Closing(session);
            }
            (_, msg) => {
                self.fatal(id, &format!("message out of order: {msg:?}"));
            }
        }
    }

    /// Routes published results to their owning connections. Results
    /// for vanished connections are counted, never buffered.
    fn route_events(&mut self) -> bool {
        let events = self.engine.poll_events();
        if events.is_empty() {
            return false;
        }
        for event in events {
            let Some(&conn_id) = self.routes.get(&event.session) else {
                self.counters.orphaned_results.inc();
                continue;
            };
            if !self.config.send_results {
                continue;
            }
            let msg = ServerMsg::Result {
                seq: event.seq,
                start: event.segment.start as u64,
                end: event.segment.end as u64,
                gesture: event.inference.gesture as u64,
                user: event.inference.user as u64,
                latency_us: event.latency.as_micros() as u64,
                identity: event.identity,
            };
            let bytes = to_wire(&msg, self.config.max_frame);
            let conn = self.conns.get_mut(&conn_id).expect("routed conn exists");
            if conn.out_backlog() + bytes.len() > self.config.out_buffer_cap {
                conn.dropped_results += 1;
                self.counters.dropped_results.inc();
            } else {
                conn.queue(&bytes);
            }
        }
        true
    }

    /// Queues the final ledger for a settled session and starts
    /// draining the connection.
    fn send_bye(&mut self, id: u64) {
        let Some(conn) = self.conns.get(&id) else {
            return;
        };
        let ConnState::Closing(session) = conn.state else {
            return;
        };
        let ledger = self
            .engine
            .session_stats(session)
            .map(|s| WireLedger {
                admitted: s.admitted(),
                shed_budget: s.shed_budget,
                shed_capacity: s.shed_frames,
                deferred: s.deferred,
                segments: s.segments,
                results: s.results,
                dropped_results: 0,
                enrolled: s.enrolled,
            })
            .unwrap_or_default();
        self.routes.remove(&session);
        let conn = self.conns.get_mut(&id).expect("conn exists");
        let ledger = WireLedger {
            dropped_results: conn.dropped_results,
            ..ledger
        };
        let bytes = to_wire(&ServerMsg::Bye(ledger), self.config.max_frame);
        conn.queue(&bytes);
        conn.state = ConnState::Draining;
    }

    /// Sends a protocol error and schedules teardown, first settling
    /// the engine side of any live session.
    fn fatal(&mut self, id: u64, message: &str) {
        self.counters.protocol_errors.inc();
        self.finish_stream(id);
        let bytes = to_wire(
            &ServerMsg::Error {
                message: message.to_owned(),
            },
            self.config.max_frame,
        );
        let conn = self.conns.get_mut(&id).expect("conn exists");
        conn.queue(&bytes);
        conn.state = ConnState::Draining;
    }

    /// Settles the engine side of a connection's stream: a parked
    /// deferred frame is admitted (blocking is fine — it was within
    /// budget and the wait is bounded by in-flight batches) and the
    /// session is closed so its accounting becomes final.
    fn finish_stream(&mut self, id: u64) {
        let conn = self.conns.get_mut(&id).expect("conn exists");
        let deferred = conn.deferred.take();
        match conn.state {
            ConnState::Streaming(session) => {
                if let Some(frame) = deferred {
                    self.engine.push_frame(session, frame);
                }
                self.engine.close_session(session);
                // Keep the route until teardown so in-flight results
                // are delivered (or counted) rather than orphaned.
                self.conns.get_mut(&id).expect("conn exists").state = ConnState::Closing(session);
            }
            ConnState::Closing(_) | ConnState::Handshake | ConnState::Draining => {}
        }
    }

    fn teardown(&mut self, id: u64, cause: Teardown) {
        self.finish_stream(id);
        if let Some(conn) = self.conns.remove(&id) {
            if let Some(session) = conn.session() {
                self.routes.remove(&session);
            }
            if matches!(cause, Teardown::Graceful) {
                conn.stream.shutdown_write();
            }
            self.counters.closed.inc();
        }
    }
}
