//! A simple blocking client for the gp-net protocol — the reference
//! peer for tests, benches, and the example; real sensors only need to
//! speak the byte format in [`crate::wire`].

use crate::wire::{from_wire, to_wire, ClientMsg, ServerMsg, WireLedger, WIRE_VERSION};
use gp_codec::FrameDecoder;
use gp_radar::Frame;
use gp_serve::IdentityOutcome;
use gp_telemetry::TelemetrySnapshot;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;

/// One result streamed back by the server.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientResult {
    /// Per-session dispatch sequence number.
    pub seq: u64,
    /// Segment start, absolute frame index.
    pub start: u64,
    /// Segment end (exclusive), absolute frame index.
    pub end: u64,
    /// Recognised gesture class.
    pub gesture: u64,
    /// Identified user class.
    pub user: u64,
    /// Segment-detected → result-published latency, microseconds.
    pub latency_us: u64,
    /// Identity verdict when the session is in enroll/identify mode
    /// (`None` for plain classification).
    pub identity: Option<IdentityOutcome>,
}

/// Everything a graceful close returns: the results received after
/// `Close` was sent plus the server's final admission ledger.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Results that arrived between `Close` and `Bye`.
    pub results: Vec<ClientResult>,
    /// The session's final admission ledger from [`ServerMsg::Bye`].
    pub ledger: WireLedger,
}

enum ClientStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.write_all(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.write_all(buf),
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.set_nonblocking(nonblocking),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }
}

/// A connected, handshaken gp-net session.
pub struct NetClient {
    stream: ClientStream,
    decoder: FrameDecoder,
    session: u64,
    max_frame: usize,
    /// Results that arrived while waiting for a `Stats` reply; drained
    /// ahead of the socket by the next receive call so ordering holds.
    pending: Vec<ClientResult>,
}

fn to_client_result(msg: ServerMsg) -> Option<ClientResult> {
    match msg {
        ServerMsg::Result {
            seq,
            start,
            end,
            gesture,
            user,
            latency_us,
            identity,
        } => Some(ClientResult {
            seq,
            start,
            end,
            gesture,
            user,
            latency_us,
            identity,
        }),
        _ => None,
    }
}

fn protocol_err(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

impl NetClient {
    /// Connects over TCP and completes the `Hello`/`Welcome` handshake.
    ///
    /// # Errors
    ///
    /// Propagates connection failures; a `Welcome` that never comes (or
    /// a server `Error`) surfaces as `InvalidData`.
    pub fn connect_tcp(addr: impl ToSocketAddrs, max_frame: usize) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Self::handshake(ClientStream::Tcp(stream), max_frame)
    }

    /// Connects over a Unix domain socket and completes the handshake.
    ///
    /// # Errors
    ///
    /// As [`NetClient::connect_tcp`].
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<std::path::Path>, max_frame: usize) -> io::Result<Self> {
        let stream = UnixStream::connect(path)?;
        Self::handshake(ClientStream::Unix(stream), max_frame)
    }

    fn handshake(mut stream: ClientStream, max_frame: usize) -> io::Result<Self> {
        let hello = to_wire(
            &ClientMsg::Hello {
                version: WIRE_VERSION,
            },
            max_frame,
        );
        stream.write_all(&hello)?;
        let mut client = NetClient {
            stream,
            decoder: FrameDecoder::new(max_frame),
            session: 0,
            max_frame,
            pending: Vec::new(),
        };
        match client.recv_blocking()? {
            ServerMsg::Welcome { session } => {
                client.session = session;
                Ok(client)
            }
            ServerMsg::Error { message } => Err(protocol_err(message)),
            other => Err(protocol_err(format!("expected Welcome, got {other:?}"))),
        }
    }

    /// The engine session id the server assigned to this stream.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Sends one radar frame (blocking write).
    ///
    /// # Errors
    ///
    /// Propagates socket errors — including the broken pipe that
    /// surfaces when the server hung up after a protocol error.
    pub fn send_frame(&mut self, frame: &Frame) -> io::Result<()> {
        let bytes = to_wire(&ClientMsg::Frame(frame.clone()), self.max_frame);
        self.stream.write_all(&bytes)
    }

    /// Receives any results already buffered or readable without
    /// blocking.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and protocol violations.
    pub fn try_recv_results(&mut self) -> io::Result<Vec<ClientResult>> {
        self.stream.set_nonblocking(true)?;
        // Results buffered while a `query_stats` waited come first.
        let mut results = std::mem::take(&mut self.pending);
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => self.decoder.extend(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.stream.set_nonblocking(false)?;
                    return Err(e);
                }
            }
        }
        self.stream.set_nonblocking(false)?;
        while let Some(msg) = self.next_decoded()? {
            match msg {
                msg @ ServerMsg::Result { .. } => {
                    results.extend(to_client_result(msg));
                }
                ServerMsg::Error { message } => return Err(protocol_err(message)),
                other => return Err(protocol_err(format!("unexpected {other:?}"))),
            }
        }
        Ok(results)
    }

    /// Sends [`ClientMsg::Enroll`] and blocks until the server's
    /// [`ServerMsg::EnrollAck`]: once this returns, every segment that
    /// completes is enrolled under `user`. Results that arrive while
    /// waiting are buffered like [`NetClient::query_stats`] does.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a server without an identity store
    /// answers with a fatal `Error`, surfaced as `InvalidData`.
    pub fn enroll(&mut self, user: &str) -> io::Result<()> {
        let msg = to_wire(
            &ClientMsg::Enroll {
                user: user.to_owned(),
            },
            self.max_frame,
        );
        self.stream.write_all(&msg)?;
        loop {
            match self.recv_blocking()? {
                ServerMsg::EnrollAck { user: acked } => {
                    if acked == user {
                        return Ok(());
                    }
                    return Err(protocol_err(format!(
                        "enroll ack for '{acked}', expected '{user}'"
                    )));
                }
                msg @ ServerMsg::Result { .. } => {
                    self.pending.extend(to_client_result(msg));
                }
                ServerMsg::Error { message } => return Err(protocol_err(message)),
                other => return Err(protocol_err(format!("unexpected {other:?}"))),
            }
        }
    }

    /// Sends [`ClientMsg::Identify`], switching the session into
    /// open-set identification mode: subsequent results carry an
    /// identity verdict. There is no ack — a server without an identity
    /// store hangs up with an `Error` that surfaces on the next receive.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn identify_mode(&mut self) -> io::Result<()> {
        let msg = to_wire(&ClientMsg::Identify, self.max_frame);
        self.stream.write_all(&msg)
    }

    /// Sends [`ClientMsg::StatsQuery`] and blocks until the server's
    /// [`ServerMsg::Stats`] reply, returning the live telemetry
    /// snapshot. Results that arrive while waiting are buffered and
    /// surfaced by the next [`NetClient::try_recv_results`] or
    /// [`NetClient::close`] — never lost or reordered.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and protocol violations.
    pub fn query_stats(&mut self) -> io::Result<TelemetrySnapshot> {
        let query = to_wire(&ClientMsg::StatsQuery, self.max_frame);
        self.stream.write_all(&query)?;
        loop {
            match self.recv_blocking()? {
                ServerMsg::Stats(snapshot) => return Ok(snapshot),
                msg @ ServerMsg::Result { .. } => {
                    self.pending.extend(to_client_result(msg));
                }
                ServerMsg::Error { message } => return Err(protocol_err(message)),
                other => return Err(protocol_err(format!("unexpected {other:?}"))),
            }
        }
    }

    /// Sends `Close` and blocks until the server's `Bye`, collecting
    /// every result that arrives in between.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; an EOF before `Bye` is `UnexpectedEof`.
    pub fn close(mut self) -> io::Result<SessionReport> {
        let close = to_wire(&ClientMsg::Close, self.max_frame);
        self.stream.write_all(&close)?;
        let mut results = std::mem::take(&mut self.pending);
        loop {
            match self.recv_blocking()? {
                msg @ ServerMsg::Result { .. } => {
                    results.extend(to_client_result(msg));
                }
                ServerMsg::Bye(ledger) => return Ok(SessionReport { results, ledger }),
                ServerMsg::Error { message } => return Err(protocol_err(message)),
                other => return Err(protocol_err(format!("unexpected {other:?}"))),
            }
        }
    }

    /// Blocking read of the next server message.
    fn recv_blocking(&mut self) -> io::Result<ServerMsg> {
        loop {
            if let Some(msg) = self.next_decoded()? {
                return Ok(msg);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server hung up mid-protocol",
                    ))
                }
                Ok(n) => self.decoder.extend(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn next_decoded(&mut self) -> io::Result<Option<ServerMsg>> {
        match self.decoder.next() {
            Ok(Some(payload)) => from_wire::<ServerMsg>(&payload)
                .map(Some)
                .map_err(|e| protocol_err(format!("bad server message: {e}"))),
            Ok(None) => Ok(None),
            Err(e) => Err(protocol_err(format!("framing error from server: {e}"))),
        }
    }
}
