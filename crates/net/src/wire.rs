//! The gp-net wire protocol: messages carried inside
//! [`gp_codec::framing`] envelopes.
//!
//! Payloads are gp-codec JSON — self-describing, deterministic, and
//! float-precise (a frame's timestamps and point kinematics survive the
//! wire bit-exactly, so a socket replay segments identically to an
//! in-process replay). Every message is a map with a `"type"` tag; the
//! decoder rejects unknown tags and malformed shapes with a
//! [`gp_codec::DecodeError`], never a panic.
//!
//! Client → server: [`ClientMsg::Hello`] (protocol handshake), a stream
//! of [`ClientMsg::Frame`]s (with [`ClientMsg::StatsQuery`],
//! [`ClientMsg::Enroll`], and [`ClientMsg::Identify`] allowed at any
//! point mid-stream), then [`ClientMsg::Close`]. Server → client:
//! [`ServerMsg::Welcome`], zero or more [`ServerMsg::Result`]s, one
//! [`ServerMsg::EnrollAck`] per accepted enrollment switch, one
//! [`ServerMsg::Stats`] per query, and a final [`ServerMsg::Bye`]
//! carrying the session's admission ledger — or [`ServerMsg::Error`]
//! before a fatal disconnect.
//!
//! # Versioning
//!
//! Wire version 2 added the identity plane (`Enroll`/`Identify`/
//! `EnrollAck`, the optional `identity` payload on `Result`, and the
//! `enrolled` ledger field). Every addition is backward compatible:
//! the server still accepts version-1 clients (which simply never send
//! identity messages), and a version-1 decoder reading this crate's
//! `Result`/`Bye` shapes sees the new fields as absent-with-default.

use gp_codec::{Decode, DecodeError, Encode, Value};
use gp_pointcloud::{Point, PointCloud, Vec3};
use gp_radar::Frame;
use gp_serve::IdentityOutcome;
use gp_telemetry::TelemetrySnapshot;

/// Application-protocol version, carried in [`ClientMsg::Hello`]
/// (independent of the byte-framing version).
pub const WIRE_VERSION: u32 = 2;

/// Oldest client protocol version the server still speaks. Version-1
/// peers predate the identity plane and never see its messages.
pub const MIN_WIRE_VERSION: u32 = 1;

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Handshake: must be the first message on a connection.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: u32,
    },
    /// One radar frame of the session's stream.
    Frame(Frame),
    /// Ask for a live [`ServerMsg::Stats`] telemetry snapshot. Valid
    /// any time mid-stream; the reply is ordered with surrounding
    /// results.
    StatsQuery,
    /// Switch the session into enrollment mode: every *subsequently
    /// completed* segment's embedding is folded into `user`'s gallery
    /// template. Acknowledged with [`ServerMsg::EnrollAck`]; fatal if
    /// the server has no identity store. Segments already in flight
    /// keep the mode they were enqueued under.
    Enroll {
        /// The user label to enroll under.
        user: String,
    },
    /// Switch the session into open-set identification mode: results
    /// carry an identity verdict (accepted user or rejection) alongside
    /// the gesture. Fatal if the server has no identity store.
    Identify,
    /// End of stream: the server flushes the session and answers with
    /// remaining results plus [`ServerMsg::Bye`].
    Close,
}

/// Per-session admission ledger reported in [`ServerMsg::Bye`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireLedger {
    /// Frames admitted into the session.
    pub admitted: u64,
    /// Frames shed by the session's own admission budget.
    pub shed_budget: u64,
    /// Frames shed by engine saturation.
    pub shed_capacity: u64,
    /// Frames deferred (admitted late) under engine saturation.
    pub deferred: u64,
    /// Segments detected (including noise-canceled ones).
    pub segments: u64,
    /// Classified results published.
    pub results: u64,
    /// Results the server dropped because this client read too slowly.
    pub dropped_results: u64,
    /// Gallery enrollments performed by this session (wire v2; absent
    /// from version-1 ledgers and decoded as 0).
    pub enrolled: u64,
}

impl Encode for WireLedger {
    fn encode(&self) -> Value {
        Value::record([
            ("admitted", self.admitted.encode()),
            ("shed_budget", self.shed_budget.encode()),
            ("shed_capacity", self.shed_capacity.encode()),
            ("deferred", self.deferred.encode()),
            ("segments", self.segments.encode()),
            ("results", self.results.encode()),
            ("dropped_results", self.dropped_results.encode()),
            ("enrolled", self.enrolled.encode()),
        ])
    }
}

impl Decode for WireLedger {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        Ok(WireLedger {
            admitted: value.get("admitted")?,
            shed_budget: value.get("shed_budget")?,
            shed_capacity: value.get("shed_capacity")?,
            deferred: value.get("deferred")?,
            segments: value.get("segments")?,
            results: value.get("results")?,
            dropped_results: value.get("dropped_results")?,
            enrolled: value.get_or("enrolled", 0)?,
        })
    }
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Handshake reply: the stream was accepted as `session`.
    Welcome {
        /// The engine session id assigned to this connection.
        session: u64,
    },
    /// One classified gesture segment.
    Result {
        /// Dispatch sequence number (ascending per session).
        seq: u64,
        /// Segment start, absolute frame index in the session.
        start: u64,
        /// Segment end (exclusive), absolute frame index.
        end: u64,
        /// Recognised gesture class.
        gesture: u64,
        /// Identified user class.
        user: u64,
        /// Segment-detected → result-published latency, microseconds.
        latency_us: u64,
        /// Identity verdict for sessions in enroll/identify mode
        /// (wire v2). `None` for plain classification sessions and on
        /// version-1 streams.
        identity: Option<IdentityOutcome>,
    },
    /// Acknowledges a [`ClientMsg::Enroll`] mode switch (wire v2):
    /// segments completing from here on enroll `user`.
    EnrollAck {
        /// The user label now being enrolled.
        user: String,
    },
    /// Reply to [`ClientMsg::StatsQuery`]: the server's current
    /// telemetry registry export (independently versioned via
    /// [`gp_telemetry::TELEMETRY_SCHEMA_VERSION`]).
    Stats(TelemetrySnapshot),
    /// End of session: the final admission ledger. Closes the stream.
    Bye(WireLedger),
    /// Fatal protocol error; the server closes the connection after
    /// sending this.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

fn tagged(tag: &str, mut fields: Vec<(&'static str, Value)>) -> Value {
    fields.push(("type", Value::Str(tag.to_owned())));
    Value::record(fields)
}

fn frame_to_value(frame: &Frame) -> Value {
    // Compact row-per-point layout: [x, y, z, doppler, snr].
    let points: Vec<Value> = frame
        .cloud
        .iter()
        .map(|p| {
            Value::Seq(vec![
                p.position.x.encode(),
                p.position.y.encode(),
                p.position.z.encode(),
                p.doppler.encode(),
                p.snr.encode(),
            ])
        })
        .collect();
    Value::record([
        ("t", frame.timestamp.encode()),
        ("points", Value::Seq(points)),
    ])
}

fn frame_from_value(value: &Value) -> Result<Frame, DecodeError> {
    let timestamp: f64 = value.get("t")?;
    let rows = value.field("points")?.as_seq()?;
    let mut cloud = PointCloud::with_capacity(rows.len());
    for row in rows {
        let row = row.as_seq()?;
        if row.len() != 5 {
            return Err(DecodeError::new(format!(
                "expected a 5-element point row, found {} elements",
                row.len()
            )));
        }
        cloud.push(Point::new(
            Vec3::new(row[0].as_f64()?, row[1].as_f64()?, row[2].as_f64()?),
            row[3].as_f64()?,
            row[4].as_f64()?,
        ));
    }
    Ok(Frame::new(timestamp, cloud))
}

impl Encode for ClientMsg {
    fn encode(&self) -> Value {
        match self {
            ClientMsg::Hello { version } => tagged("hello", vec![("version", version.encode())]),
            ClientMsg::Frame(frame) => tagged("frame", vec![("frame", frame_to_value(frame))]),
            ClientMsg::StatsQuery => tagged("stats_query", vec![]),
            ClientMsg::Enroll { user } => tagged("enroll", vec![("user", user.encode())]),
            ClientMsg::Identify => tagged("identify", vec![]),
            ClientMsg::Close => tagged("close", vec![]),
        }
    }
}

impl Decode for ClientMsg {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        let tag: String = value.get("type")?;
        match tag.as_str() {
            "hello" => Ok(ClientMsg::Hello {
                version: value.get("version")?,
            }),
            "frame" => Ok(ClientMsg::Frame(frame_from_value(value.field("frame")?)?)),
            "stats_query" => Ok(ClientMsg::StatsQuery),
            "enroll" => Ok(ClientMsg::Enroll {
                user: value.get("user")?,
            }),
            "identify" => Ok(ClientMsg::Identify),
            "close" => Ok(ClientMsg::Close),
            other => Err(DecodeError::new(format!(
                "unknown client message type '{other}'"
            ))),
        }
    }
}

/// Encodes an identity verdict as a self-describing nested map (the
/// `identity` field of a `result` message).
fn identity_to_value(identity: &IdentityOutcome) -> Value {
    match identity {
        IdentityOutcome::Enrolled { user, samples } => Value::record([
            ("event", Value::Str("enrolled".into())),
            ("user", user.encode()),
            ("samples", samples.encode()),
        ]),
        IdentityOutcome::Identified { user, distance } => Value::record([
            ("event", Value::Str("identified".into())),
            ("user", user.encode()),
            ("distance", distance.encode()),
        ]),
        IdentityOutcome::Unknown { distance } => Value::record([
            ("event", Value::Str("unknown".into())),
            (
                "distance",
                match distance {
                    Some(d) => d.encode(),
                    None => Value::Null,
                },
            ),
        ]),
    }
}

/// Decodes the optional `identity` field of a `result` message. Absent
/// or `null` (every version-1 result) is `None`, never an error.
fn identity_from_value(value: &Value) -> Result<Option<IdentityOutcome>, DecodeError> {
    let raw = match value.as_map()?.get("identity") {
        None | Some(Value::Null) => return Ok(None),
        Some(raw) => raw,
    };
    let event: String = raw.get("event")?;
    let identity = match event.as_str() {
        "enrolled" => IdentityOutcome::Enrolled {
            user: raw.get("user")?,
            samples: raw.get("samples")?,
        },
        "identified" => IdentityOutcome::Identified {
            user: raw.get("user")?,
            distance: raw.get("distance")?,
        },
        "unknown" => IdentityOutcome::Unknown {
            distance: match raw.as_map()?.get("distance") {
                None | Some(Value::Null) => None,
                Some(d) => Some(d.as_f64().map_err(|e| e.in_field("distance"))?),
            },
        },
        other => {
            return Err(
                DecodeError::new(format!("unknown identity event '{other}'")).in_field("identity"),
            )
        }
    };
    Ok(Some(identity))
}

impl Encode for ServerMsg {
    fn encode(&self) -> Value {
        match self {
            ServerMsg::Welcome { session } => {
                tagged("welcome", vec![("session", session.encode())])
            }
            ServerMsg::Result {
                seq,
                start,
                end,
                gesture,
                user,
                latency_us,
                identity,
            } => {
                let mut fields = vec![
                    ("seq", seq.encode()),
                    ("start", start.encode()),
                    ("end", end.encode()),
                    ("gesture", gesture.encode()),
                    ("user", user.encode()),
                    ("latency_us", latency_us.encode()),
                ];
                // Omitted (not null) when absent, so a v1-shaped result
                // stays byte-for-byte what a v1 server produced.
                if let Some(identity) = identity {
                    fields.push(("identity", identity_to_value(identity)));
                }
                tagged("result", fields)
            }
            ServerMsg::EnrollAck { user } => tagged("enroll_ack", vec![("user", user.encode())]),
            ServerMsg::Stats(snapshot) => tagged("stats", vec![("snapshot", snapshot.encode())]),
            ServerMsg::Bye(ledger) => tagged("bye", vec![("ledger", ledger.encode())]),
            ServerMsg::Error { message } => tagged("error", vec![("message", message.encode())]),
        }
    }
}

impl Decode for ServerMsg {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        let tag: String = value.get("type")?;
        match tag.as_str() {
            "welcome" => Ok(ServerMsg::Welcome {
                session: value.get("session")?,
            }),
            "result" => Ok(ServerMsg::Result {
                seq: value.get("seq")?,
                start: value.get("start")?,
                end: value.get("end")?,
                gesture: value.get("gesture")?,
                user: value.get("user")?,
                latency_us: value.get("latency_us")?,
                identity: identity_from_value(value)?,
            }),
            "enroll_ack" => Ok(ServerMsg::EnrollAck {
                user: value.get("user")?,
            }),
            "stats" => Ok(ServerMsg::Stats(value.get("snapshot")?)),
            "bye" => Ok(ServerMsg::Bye(value.get("ledger")?)),
            "error" => Ok(ServerMsg::Error {
                message: value.get("message")?,
            }),
            other => Err(DecodeError::new(format!(
                "unknown server message type '{other}'"
            ))),
        }
    }
}

/// Encodes a message to its framed wire bytes.
///
/// # Panics
///
/// Panics if the encoded payload exceeds `max_frame` — sender-side
/// messages are built from bounded radar frames, so exceeding the cap
/// is a configuration bug, not a data condition.
pub fn to_wire<T: Encode>(msg: &T, max_frame: usize) -> Vec<u8> {
    let json = gp_codec::to_json(&msg.encode()).expect("wire messages are finite and shallow");
    gp_codec::encode_frame(json.as_bytes(), max_frame).expect("wire message exceeds frame cap")
}

/// Decodes one deframed payload into a message.
///
/// # Errors
///
/// Returns a [`DecodeError`] for non-UTF-8 bytes, malformed JSON, or a
/// well-formed value of the wrong shape.
pub fn from_wire<T: Decode>(payload: &[u8]) -> Result<T, DecodeError> {
    let text =
        std::str::from_utf8(payload).map_err(|_| DecodeError::new("wire payload is not UTF-8"))?;
    gp_codec::decode_from_json(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_client(msg: &ClientMsg) -> ClientMsg {
        let bytes = to_wire(msg, 1 << 16);
        let mut dec = gp_codec::FrameDecoder::new(1 << 16);
        dec.extend(&bytes);
        let payload = dec.next().unwrap().expect("one full frame");
        from_wire(&payload).unwrap()
    }

    #[test]
    fn client_messages_roundtrip() {
        let cloud: PointCloud = vec![
            Point::new(Vec3::new(0.125, -1.5, 2.0), 0.25, 15.5),
            Point::new(Vec3::new(1e-12, 0.0, -3.5), -0.75, 1.0),
        ]
        .into_iter()
        .collect();
        for msg in [
            ClientMsg::Hello {
                version: WIRE_VERSION,
            },
            ClientMsg::Frame(Frame::new(1.7, cloud)),
            ClientMsg::StatsQuery,
            ClientMsg::Enroll {
                user: "alice".into(),
            },
            ClientMsg::Identify,
            ClientMsg::Close,
        ] {
            assert_eq!(roundtrip_client(&msg), msg);
        }
    }

    #[test]
    fn server_messages_roundtrip() {
        let mut snapshot = TelemetrySnapshot::new();
        snapshot.counters.insert("net.accepted".into(), 3);
        let mut hist = gp_telemetry::Histogram::new();
        hist.record(1500);
        hist.record(90_000);
        snapshot
            .histograms
            .insert("serve.stage.inference".into(), hist);
        for msg in [
            ServerMsg::Welcome { session: 42 },
            ServerMsg::Result {
                seq: 7,
                start: 10,
                end: 35,
                gesture: 3,
                user: 1,
                latency_us: 1500,
                identity: None,
            },
            ServerMsg::Result {
                seq: 8,
                start: 35,
                end: 60,
                gesture: 2,
                user: 0,
                latency_us: 900,
                identity: Some(IdentityOutcome::Enrolled {
                    user: "alice".into(),
                    samples: 3,
                }),
            },
            ServerMsg::Result {
                seq: 9,
                start: 60,
                end: 80,
                gesture: 1,
                user: 2,
                latency_us: 800,
                identity: Some(IdentityOutcome::Identified {
                    user: "bob".into(),
                    distance: 0.625,
                }),
            },
            ServerMsg::Result {
                seq: 10,
                start: 80,
                end: 95,
                gesture: 0,
                user: 4,
                latency_us: 700,
                identity: Some(IdentityOutcome::Unknown {
                    distance: Some(3.5),
                }),
            },
            ServerMsg::Result {
                seq: 11,
                start: 95,
                end: 110,
                gesture: 5,
                user: 3,
                latency_us: 650,
                identity: Some(IdentityOutcome::Unknown { distance: None }),
            },
            ServerMsg::EnrollAck {
                user: "alice".into(),
            },
            ServerMsg::Stats(snapshot),
            ServerMsg::Bye(WireLedger {
                admitted: 100,
                shed_budget: 20,
                shed_capacity: 3,
                deferred: 5,
                segments: 4,
                results: 3,
                dropped_results: 1,
                enrolled: 2,
            }),
            ServerMsg::Error {
                message: "bad \"frame\"".into(),
            },
        ] {
            let bytes = to_wire(&msg, 1 << 16);
            let mut dec = gp_codec::FrameDecoder::new(1 << 16);
            dec.extend(&bytes);
            let payload = dec.next().unwrap().unwrap();
            assert_eq!(from_wire::<ServerMsg>(&payload).unwrap(), msg);
        }
    }

    #[test]
    fn version_one_shapes_still_decode() {
        // A wire-v1 result has no identity field: decodes as None.
        let v1_result = br#"{"type":"result","seq":1,"start":0,"end":20,"gesture":2,"user":1,"latency_us":500}"#;
        let msg: ServerMsg = from_wire(v1_result).unwrap();
        assert_eq!(
            msg,
            ServerMsg::Result {
                seq: 1,
                start: 0,
                end: 20,
                gesture: 2,
                user: 1,
                latency_us: 500,
                identity: None,
            }
        );
        // A wire-v1 ledger has no enrolled field: decodes as 0.
        let v1_bye = br#"{"type":"bye","ledger":{"admitted":9,"shed_budget":1,"shed_capacity":0,"deferred":0,"segments":2,"results":2,"dropped_results":0}}"#;
        let ServerMsg::Bye(ledger) = from_wire(v1_bye).unwrap() else {
            panic!("expected Bye");
        };
        assert_eq!(ledger.enrolled, 0);
        assert_eq!(ledger.admitted, 9);
        // An identity verdict from a *future* version fails typed.
        let future = br#"{"type":"result","seq":1,"start":0,"end":20,"gesture":2,"user":1,"latency_us":500,"identity":{"event":"teleported"}}"#;
        let err = from_wire::<ServerMsg>(future).unwrap_err();
        assert!(err.to_string().contains("identity event"));
    }

    #[test]
    fn unknown_tags_and_bad_shapes_fail_typed() {
        assert!(from_wire::<ClientMsg>(br#"{"type":"warp"}"#).is_err());
        assert!(from_wire::<ClientMsg>(b"\xFF\xFE").is_err());
        assert!(
            from_wire::<ClientMsg>(br#"{"type":"frame","frame":{"t":0.0,"points":[[1]]}}"#)
                .is_err()
        );
        assert!(from_wire::<ServerMsg>(br#"[1,2,3]"#).is_err());
        // A snapshot from a future schema fails typed, not silently.
        let future = br#"{"type":"stats","snapshot":{"schema_version":99,"counters":{},"gauges":{},"histograms":{},"attrs":{}}}"#;
        let err = from_wire::<ServerMsg>(future).unwrap_err();
        assert!(err.to_string().contains("newer than supported"));
    }
}
