//! Tier-2 soak/chaos test: hundreds of socket sessions with
//! deterministic jitter, mid-stream disconnects, and slow readers.
//! The server must neither deadlock nor leak, and after everything
//! drains the admission ledger must reconcile *exactly*: every frame
//! the server decoded is admitted, budget-shed, or capacity-shed.
//!
//! Run with `cargo test -p gp-net --test soak -- --ignored` (CI runs it
//! in the scheduled tier-2 job).

use gestureprint_core::artifact::{kinds, Artifact};
use gp_codec::Encode;
use gp_net::{NetClient, NetConfig, NetListener, NetServer};
use gp_pointcloud::{Point, PointCloud, Vec3};
use gp_radar::Frame;
use gp_serve::{AdmissionConfig, ServeConfig, ServeEngine};
use gp_testkit::toy_system;
use std::sync::Arc;
use std::time::Duration;

const THREADS: usize = 12;
const SESSIONS_PER_THREAD: usize = 20;
const MAX_FRAME: usize = 1 << 20;

/// SplitMix64: deterministic per-session chaos.
fn split_mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A synthetic frame: bursts of points close segments, sparse frames
/// idle. Cheap enough to push tens of thousands through one core.
fn chaos_frame(i: usize, burst: bool) -> Frame {
    let points = if burst { 14 } else { 1 };
    let cloud: PointCloud = (0..points)
        .map(|k| {
            Point::new(
                Vec3::new(k as f64 * 0.05, 1.2, 1.0 + (i as f64 * 0.3).sin() * 0.2),
                0.4,
                15.0,
            )
        })
        .collect();
    Frame::new(i as f64 * 0.1, cloud)
}

#[derive(Default)]
struct ClientTally {
    /// Frames written to sockets that were *gracefully closed* — the
    /// server is guaranteed to have decoded every one of these.
    graceful_sent: u64,
    graceful_ledger_admitted: u64,
    graceful_ledger_shed: u64,
    disconnects: u64,
    closes: u64,
}

fn run_one_session(
    addr: std::net::SocketAddr,
    seed: u64,
    tally: &mut ClientTally,
) -> std::io::Result<()> {
    let mut rng = seed;
    let mut client = NetClient::connect_tcp(addr, MAX_FRAME)?;
    let frames = 40 + (split_mix(&mut rng) % 41) as usize; // 40..=80
    let mode = split_mix(&mut rng) % 4; // 0,1: normal  2: slow reader  3: disconnect
    let disconnect_at = frames / 2 + (split_mix(&mut rng) % (frames as u64 / 2)) as usize;

    let mut sent = 0u64;
    for i in 0..frames {
        if mode == 3 && i == disconnect_at {
            // Chaos: vanish mid-stream, no Close, no draining reads.
            drop(client);
            tally.disconnects += 1;
            return Ok(());
        }
        // Motion bursts so some sessions close real segments.
        let burst = (8..30).contains(&(i % 40));
        client.send_frame(&chaos_frame(i, burst))?;
        sent += 1;
        // Deterministic jitter; slow readers (mode 2) never poll
        // results mid-stream, so the server's out-buffer works.
        if mode != 2 && split_mix(&mut rng) % 4 == 0 {
            let _ = client.try_recv_results()?;
        }
        if split_mix(&mut rng) % 8 == 0 {
            std::thread::sleep(Duration::from_micros(200 + (split_mix(&mut rng) % 1_800)));
        }
    }
    let report = client.close()?;
    tally.graceful_sent += sent;
    tally.graceful_ledger_admitted += report.ledger.admitted;
    tally.graceful_ledger_shed += report.ledger.shed_budget + report.ledger.shed_capacity;
    // Per-session exactness: a graceful close means the server decoded
    // every frame this client sent before the Close.
    assert_eq!(
        report.ledger.admitted + report.ledger.shed_budget + report.ledger.shed_capacity,
        sent,
        "session ledger must reconcile to the frames sent (seed {seed})"
    );
    tally.closes += 1;
    Ok(())
}

#[test]
#[ignore = "tier-2: hundreds of socket sessions, ~a minute of chaos; CI runs it on the schedule"]
fn soak_sessions_with_chaos_reconcile_exactly() {
    let engine = Arc::new(ServeEngine::new(
        toy_system(),
        ServeConfig {
            workers: 1,
            max_batch: 4,
            // Sessions get a real but generous budget: most frames
            // admit, hot moments shed.
            admission: Some(AdmissionConfig::new(400.0, 64.0)),
            // Keep every closed session's stats entry: the final
            // reconciliation sums per-session counters.
            retain_closed_sessions: THREADS * SESSIONS_PER_THREAD + 8,
            ..ServeConfig::default()
        },
    ));
    let listener = NetListener::bind_tcp("127.0.0.1:0").expect("bind loopback");
    let server = NetServer::spawn(
        engine.clone(),
        listener,
        NetConfig {
            // Small out-buffer so slow readers exercise result
            // dropping rather than memory growth.
            out_buffer_cap: 8 << 10,
            ..NetConfig::default()
        },
    )
    .expect("spawn server");
    let addr = server.local_addr().expect("tcp address");

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut tally = ClientTally::default();
                for s in 0..SESSIONS_PER_THREAD {
                    let seed = (t * SESSIONS_PER_THREAD + s) as u64 ^ 0xC0FFEE;
                    run_one_session(addr, seed, &mut tally).expect("session io");
                }
                tally
            })
        })
        .collect();

    let mut total = ClientTally::default();
    for handle in handles {
        let tally = handle.join().expect("client thread");
        total.graceful_sent += tally.graceful_sent;
        total.graceful_ledger_admitted += tally.graceful_ledger_admitted;
        total.graceful_ledger_shed += tally.graceful_ledger_shed;
        total.disconnects += tally.disconnects;
        total.closes += tally.closes;
    }
    let sessions = (THREADS * SESSIONS_PER_THREAD) as u64;
    assert_eq!(total.closes + total.disconnects, sessions);
    assert!(total.disconnects > 0, "chaos must include disconnects");
    assert!(total.closes > 0, "chaos must include graceful closes");

    // Give the reactor a moment to reap the last abrupt disconnects,
    // then stop it (shutdown closes any straggler sessions).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().closed < sessions && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let net = server.stats();
    server.shutdown();

    // No deadlock (we got here), no leaks, exact books.
    assert_eq!(net.accepted, sessions, "every connection accepted");
    assert_eq!(net.closed, sessions, "every connection reaped");
    assert_eq!(engine.session_count(), 0, "no engine session leaked");

    // Drain whatever is still in flight, then reconcile globally:
    // every frame the server *decoded* is in the engine's ledger.
    engine.drain();
    assert_eq!(engine.outstanding(), 0, "executor fully drained");
    let stats = engine.stats();
    let accounted = stats.total_frames() + stats.total_shed_budget() + stats.total_shed_frames();
    assert_eq!(
        accounted, net.decoded_frames,
        "decoded == admitted + shed_budget + shed_capacity, exactly"
    );
    // Graceful sessions alone already reconciled per-session; the
    // global ledger additionally covers the disconnected ones.
    assert!(net.decoded_frames >= total.graceful_sent);
    assert_eq!(
        stats.total_results(),
        stats.sessions.values().map(|s| s.enqueued).sum::<u64>() + stats.evicted.enqueued,
        "every enqueued segment published its result"
    );
    assert_eq!(net.protocol_errors, 0, "chaos sent no malformed bytes");

    // Export the run's full telemetry (stage histograms, pool
    // utilization, net.* counters — one registry) as a versioned
    // artifact for the scheduled CI job to upload.
    let snapshot = engine
        .telemetry_snapshot()
        .expect("soak engine runs with telemetry on");
    assert_eq!(
        snapshot.counters.get("net.decoded_frames"),
        Some(&net.decoded_frames),
        "net counters publish into the engine's registry"
    );
    let artifact = Artifact::new(kinds::TELEMETRY, snapshot.encode()).to_bytes();
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/soak_telemetry.json", artifact).expect("write soak telemetry");
}
