//! End-to-end identity over the socket front: enrollment builds the
//! gallery from live streams, calibration bounds the false-accept rate,
//! and open-set identification accepts enrolled users while rejecting a
//! stranger — all through real TCP connections.
//!
//! The fixture system is the toy 2-class cohort, whose embeddings on
//! radar captures are arbitrary-but-deterministic — so each template is
//! built from one recording and genuine attempts replay that exact
//! recording (frames cross the wire bit-exactly, so the serve-side
//! embedding reproduces bit-for-bit). Impostor recordings land at
//! strictly positive gallery distance, which is what calibration
//! separates. Statistical gallery quality is covered by gp-store's own
//! calibration tests on controlled embeddings.

use gp_datasets::{presets, Scale};
use gp_net::{IdentityOutcome, NetClient, NetConfig, NetListener, NetServer};
use gp_radar::Environment;
use gp_serve::{IdentityStore, RegistryConfig, ServeConfig, ServeEngine, SessionMode};
use gp_testkit::{stream_capture, toy_system, GestureStream};
use std::sync::Arc;

const MAX_FRAME: usize = 1 << 20;
const TARGET_FAR: f64 = 0.05;

/// A continuous single-gesture recording by cohort user `user`. One
/// gesture per stream keeps every embedding in one identifier's fusion
/// space (serialized mode taps a per-gesture identifier).
fn user_stream(user: usize, seed: u64) -> GestureStream {
    stream_capture(
        &presets::gestureprint(Environment::Office, Scale::Small),
        user,
        &[12],
        seed,
    )
}

/// Runs each stream through the *serve* pipeline (in process) into a
/// scratch gallery, returning one embedding per stream — the exact
/// vectors the socket server computes for those frames.
fn serve_embeddings(dir: &std::path::Path, streams: &[&GestureStream]) -> Vec<Vec<f32>> {
    let scratch =
        Arc::new(IdentityStore::open(dir, RegistryConfig::default()).expect("open scratch store"));
    let engine = ServeEngine::with_store(toy_system(), ServeConfig::default(), scratch.clone());
    for (k, stream) in streams.iter().enumerate() {
        let session = engine.open_session();
        assert!(engine.set_session_mode(session, SessionMode::Enroll(format!("probe-{k}"))));
        for frame in &stream.frames {
            engine.push_frame(session, frame.clone());
        }
        engine.close_session(session);
    }
    engine.drain();
    let gallery = scratch.gallery_snapshot();
    (0..streams.len())
        .map(|k| {
            let entry = gallery
                .entry(&format!("probe-{k}"))
                .expect("every probe stream must enroll at least one segment");
            assert_eq!(entry.count(), 1, "single-gesture stream yields one segment");
            entry.centroid()
        })
        .collect()
}

/// Closed-set predictions for a stream: `(start, end, gesture)` per
/// result of a plain in-process replay, in seq order.
fn closed_set_replay(stream: &GestureStream) -> Vec<(u64, u64, u64)> {
    let engine = ServeEngine::new(toy_system(), ServeConfig::default());
    let session = engine.open_session();
    for frame in &stream.frames {
        engine.push_frame(session, frame.clone());
    }
    engine.close_session(session);
    engine
        .drain()
        .into_iter()
        .map(|e| {
            (
                e.segment.start as u64,
                e.segment.end as u64,
                e.inference.gesture as u64,
            )
        })
        .collect()
}

#[test]
fn enroll_calibrate_identify_over_the_socket() {
    let dir = std::env::temp_dir().join(format!("gp-net-identity-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("scratch")).expect("store dirs");

    let store = Arc::new(
        IdentityStore::open(dir.join("store"), RegistryConfig::default())
            .expect("open identity store"),
    );
    let engine = Arc::new(ServeEngine::with_store(
        toy_system(),
        ServeConfig::default(),
        store.clone(),
    ));
    let listener = NetListener::bind_tcp("127.0.0.1:0").expect("bind loopback");
    let server =
        NetServer::spawn(engine.clone(), listener, NetConfig::default()).expect("spawn server");
    let addr = server.local_addr().expect("tcp address");

    // Phase 1 — enrollment: two users stream a gesture each under
    // enrollment mode; every completed segment joins their template,
    // and the session ledger accounts each enrollment.
    let enrolled = [("alice", 0usize, 21u64), ("bob", 1, 22)];
    let mut streams: Vec<(&str, GestureStream)> = Vec::new();
    for &(label, user, seed) in &enrolled {
        let stream = user_stream(user, seed);
        let mut client = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect");
        client.enroll(label).expect("enroll ack");
        for frame in &stream.frames {
            client.send_frame(frame).expect("send frame");
        }
        let report = client.close().expect("graceful close");
        assert!(!report.results.is_empty(), "{label}'s stream must segment");
        for r in &report.results {
            match &r.identity {
                Some(IdentityOutcome::Enrolled { user, .. }) => assert_eq!(user, label),
                other => panic!("expected an enrollment verdict, got {other:?}"),
            }
        }
        assert_eq!(report.ledger.enrolled, report.results.len() as u64);
        streams.push((label, stream));
    }
    assert_eq!(store.users(), 2, "both users live in the gallery");

    // Phase 2 — calibration: genuine probes are the enrolled users' own
    // recordings, impostor probes two recordings by a never-enrolled
    // third user; together they set the acceptance threshold at a
    // target false-accept rate.
    let mallory = [user_stream(2, 23), user_stream(2, 29)];
    let probe_streams: Vec<&GestureStream> = streams
        .iter()
        .map(|(_, s)| s)
        .chain(mallory.iter())
        .collect();
    let embeddings = serve_embeddings(&dir.join("scratch"), &probe_streams);
    let probes: Vec<(String, Vec<f32>)> = embeddings
        .iter()
        .enumerate()
        .map(|(k, e)| {
            let label = if k < streams.len() {
                streams[k].0
            } else {
                "mallory"
            };
            (label.to_string(), e.clone())
        })
        .collect();
    let summary = store.calibrate("socket-e2e", &probes, TARGET_FAR);
    assert!(
        store.threshold().is_finite(),
        "calibration must find a usable threshold (eer {})",
        summary.eer
    );

    // The FAR bound holds on re-measurement: at most TARGET_FAR of the
    // stranger's attempts are accepted by the calibrated gallery.
    let impostor_probes = &embeddings[streams.len()..];
    let accepted_impostors = impostor_probes
        .iter()
        .filter(|e| store.identify(e).accepted())
        .count();
    assert!(
        (accepted_impostors as f64) <= TARGET_FAR * impostor_probes.len() as f64,
        "{accepted_impostors}/{} impostor probes accepted, target FAR {TARGET_FAR}",
        impostor_probes.len()
    );

    // Phase 3 — open-set identification over the socket. Replaying an
    // enrolled user's recording in identify mode yields exactly the
    // closed-set segments and gestures, each carrying an accepted
    // identity within the calibrated threshold.
    for (label, stream) in &streams {
        let expected = closed_set_replay(stream);
        let mut client = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect");
        client.identify_mode().expect("switch to identify");
        for frame in &stream.frames {
            client.send_frame(frame).expect("send frame");
        }
        let report = client.close().expect("graceful close");
        let mut results = report.results.clone();
        results.sort_by_key(|r| r.seq);
        let got: Vec<(u64, u64, u64)> = results
            .iter()
            .map(|r| (r.start, r.end, r.gesture))
            .collect();
        assert_eq!(got, expected, "identify mode must not perturb recognition");
        for r in &results {
            match &r.identity {
                Some(IdentityOutcome::Identified { user, distance }) => {
                    assert_eq!(user, label);
                    assert!(*distance <= store.threshold());
                }
                other => panic!("{label} must be identified, got {other:?}"),
            }
        }
    }

    // A stranger streaming the same gesture is rejected, not
    // misattributed: open-set identification says "nobody I know".
    let mut client = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect");
    client.identify_mode().expect("switch to identify");
    for frame in &mallory[1].frames {
        client.send_frame(frame).expect("send frame");
    }
    let report = client.close().expect("graceful close");
    assert!(!report.results.is_empty(), "stranger's stream must segment");
    for r in &report.results {
        match &r.identity {
            Some(IdentityOutcome::Unknown { distance }) => {
                let d = distance.expect("a populated gallery reports the nearest distance");
                assert!(d > store.threshold());
            }
            other => panic!("a stranger must be rejected, got {other:?}"),
        }
    }
    assert_eq!(report.ledger.enrolled, 0, "identification never enrolls");

    server.shutdown();
    assert_eq!(engine.session_count(), 0, "no session leaked");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enroll_without_a_store_is_a_typed_protocol_error() {
    // A plain classification server (no identity store) must refuse the
    // identity plane with a fatal Error, not ignore it.
    let engine = Arc::new(ServeEngine::new(toy_system(), ServeConfig::default()));
    let listener = NetListener::bind_tcp("127.0.0.1:0").expect("bind loopback");
    let server = NetServer::spawn(engine, listener, NetConfig::default()).expect("spawn server");
    let addr = server.local_addr().expect("tcp address");

    let mut client = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect");
    let err = client
        .enroll("alice")
        .expect_err("no store: enroll must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(
        err.to_string().contains("identity store"),
        "error names the missing capability: {err}"
    );
    server.shutdown();
}
