//! Tier-1 socket-front tests: a framed stream over a real socket
//! produces exactly the results of an in-process replay, the admission
//! ledger reconciles to the frame, and protocol damage is contained.

use gp_net::wire::{from_wire, to_wire};
use gp_net::{ClientMsg, NetClient, NetConfig, NetListener, NetServer, ServerMsg, WIRE_VERSION};
use gp_serve::{AdmissionConfig, ServeConfig, ServeEngine};
use gp_testkit::{stream_fixture, toy_system};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

const MAX_FRAME: usize = 1 << 20;

fn spawn_tcp(config: ServeConfig) -> (Arc<ServeEngine>, NetServer, std::net::SocketAddr) {
    let engine = Arc::new(ServeEngine::new(toy_system(), config));
    let listener = NetListener::bind_tcp("127.0.0.1:0").expect("bind loopback");
    let server =
        NetServer::spawn(engine.clone(), listener, NetConfig::default()).expect("spawn server");
    let addr = server.local_addr().expect("tcp address");
    (engine, server, addr)
}

/// Replays the fixture in-process and returns `(start, end, gesture,
/// user)` per result, in (session, seq) order.
fn in_process_results(config: ServeConfig) -> Vec<(u64, u64, u64, u64)> {
    let engine = ServeEngine::new(toy_system(), config);
    let session = engine.open_session();
    for frame in &stream_fixture().frames {
        engine.push_frame(session, frame.clone());
    }
    engine.close_session(session);
    engine
        .drain()
        .into_iter()
        .map(|e| {
            (
                e.segment.start as u64,
                e.segment.end as u64,
                e.inference.gesture as u64,
                e.inference.user as u64,
            )
        })
        .collect()
}

#[test]
fn tcp_stream_matches_in_process_replay() {
    let config = ServeConfig::default();
    let expected = in_process_results(config.clone());
    assert!(!expected.is_empty(), "fixture must produce results");

    let (engine, server, addr) = spawn_tcp(config);
    let stream = stream_fixture();
    let mut client = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect");
    for frame in &stream.frames {
        client.send_frame(frame).expect("send frame");
    }
    let report = client.close().expect("graceful close");

    // With multiple workers, results can cross the wire out of seq
    // order (poll_events documents this); reorder like drain() does.
    let mut results = report.results.clone();
    results.sort_by_key(|r| r.seq);
    let got: Vec<(u64, u64, u64, u64)> = results
        .iter()
        .map(|r| (r.start, r.end, r.gesture, r.user))
        .collect();
    assert_eq!(got, expected, "socket replay must equal in-process replay");

    // The ledger reconciles exactly: every frame sent was admitted
    // (nothing shed a quiet single stream), every enqueued segment
    // published.
    assert_eq!(report.ledger.admitted, stream.frames.len() as u64);
    assert_eq!(report.ledger.shed_budget, 0);
    assert_eq!(report.ledger.shed_capacity, 0);
    assert_eq!(report.ledger.results, expected.len() as u64);
    assert_eq!(report.ledger.dropped_results, 0);

    server.shutdown();
    assert_eq!(engine.session_count(), 0, "no session leaked");
}

#[cfg(unix)]
#[test]
fn unix_socket_serves_the_same_protocol() {
    let dir = std::env::temp_dir().join(format!("gp-net-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let path = dir.join("serve.sock");
    let _ = std::fs::remove_file(&path);

    let engine = Arc::new(ServeEngine::new(toy_system(), ServeConfig::default()));
    let listener = NetListener::bind_unix(&path).expect("bind unix socket");
    let server =
        NetServer::spawn(engine.clone(), listener, NetConfig::default()).expect("spawn server");

    let stream = stream_fixture();
    let mut client = NetClient::connect_unix(&path, MAX_FRAME).expect("connect");
    for frame in &stream.frames {
        client.send_frame(frame).expect("send frame");
    }
    let report = client.close().expect("graceful close");
    assert_eq!(report.ledger.admitted, stream.frames.len() as u64);
    assert!(!report.results.is_empty());

    server.shutdown();
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn stats_query_returns_live_versioned_snapshot() {
    let config = ServeConfig::default();
    let expected = in_process_results(config.clone());
    let (engine, server, addr) = spawn_tcp(config);
    let stream = stream_fixture();
    let mut client = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect");

    // Stream half, then ask for stats mid-stream.
    let half = stream.frames.len() / 2;
    for frame in &stream.frames[..half] {
        client.send_frame(frame).expect("send frame");
    }
    let snap = client.query_stats().expect("stats reply");

    // The snapshot crossed a real socket, decoded, and is versioned.
    assert_eq!(
        snap.schema_version,
        gp_serve::TelemetrySnapshot::new().schema_version
    );
    // The reactor handles messages in order, so every frame sent before
    // the query was decoded (and admitted) before the snapshot.
    assert_eq!(
        snap.counters.get("net.decoded_frames"),
        Some(&(half as u64))
    );
    assert_eq!(snap.counters.get("net.accepted"), Some(&1));
    let admission = snap
        .histograms
        .get("serve.stage.admission_wait")
        .expect("engine stage histograms ride the same snapshot");
    assert_eq!(admission.count(), half as u64);
    assert!(snap.gauges.contains_key("serve.pool.workers"));

    // The query didn't perturb the stream: the rest of the replay still
    // matches in-process results exactly, nothing lost or reordered.
    for frame in &stream.frames[half..] {
        client.send_frame(frame).expect("send frame");
    }
    let report = client.close().expect("graceful close");
    let mut results = report.results.clone();
    results.sort_by_key(|r| r.seq);
    let got: Vec<(u64, u64, u64, u64)> = results
        .iter()
        .map(|r| (r.start, r.end, r.gesture, r.user))
        .collect();
    assert_eq!(got, expected);

    server.shutdown();
    drop(engine);
}

#[test]
fn stats_query_works_with_engine_telemetry_off() {
    let (_engine, server, addr) = spawn_tcp(ServeConfig {
        telemetry: false,
        ..ServeConfig::default()
    });
    let stream = stream_fixture();
    let mut client = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect");
    client.send_frame(&stream.frames[0]).expect("send frame");
    let snap = client.query_stats().expect("stats reply");
    // The reactor's private registry still answers with net.* counters;
    // engine stage histograms are simply absent.
    assert_eq!(snap.counters.get("net.decoded_frames"), Some(&1));
    assert!(!snap.histograms.contains_key("serve.stage.admission_wait"));
    client.close().expect("graceful close");
    server.shutdown();
}

#[test]
fn per_session_budget_sheds_over_rate_client_exactly() {
    // Engine-default admission: every socket session gets a tiny fixed
    // allowance (no refill), so a firehose client is mostly shed.
    let allowance = 30.0;
    let (engine, server, addr) = spawn_tcp(ServeConfig {
        admission: Some(AdmissionConfig::new(0.0, allowance)),
        ..ServeConfig::default()
    });

    let stream = stream_fixture();
    let sent = stream.frames.len() as u64;
    let mut client = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect");
    for frame in &stream.frames {
        client.send_frame(frame).expect("send frame");
    }
    let report = client.close().expect("graceful close");

    assert_eq!(
        report.ledger.admitted, allowance as u64,
        "exactly the burst allowance is admitted"
    );
    assert_eq!(
        report.ledger.admitted + report.ledger.shed_budget + report.ledger.shed_capacity,
        sent,
        "every frame sent is accounted admitted or shed"
    );
    assert!(report.ledger.shed_budget > 0);

    server.shutdown();
    drop(engine);
}

#[test]
fn corrupt_frame_is_skipped_without_desyncing_the_stream() {
    let (_engine, server, addr) = spawn_tcp(ServeConfig::default());
    let stream = stream_fixture();

    let mut sock = TcpStream::connect(addr).expect("connect");
    sock.write_all(&to_wire(
        &ClientMsg::Hello {
            version: WIRE_VERSION,
        },
        MAX_FRAME,
    ))
    .expect("hello");

    // One corrupted frame (payload byte flipped → checksum mismatch)
    // between two good ones: the good frames must both be decoded.
    let good = to_wire(&ClientMsg::Frame(stream.frames[0].clone()), MAX_FRAME);
    let mut corrupt = to_wire(&ClientMsg::Frame(stream.frames[1].clone()), MAX_FRAME);
    let flip = corrupt.len() - 3;
    corrupt[flip] ^= 0x55;
    sock.write_all(&good).expect("good frame");
    sock.write_all(&corrupt).expect("corrupt frame");
    sock.write_all(&good).expect("good frame again");
    sock.write_all(&to_wire(&ClientMsg::Close, MAX_FRAME))
        .expect("close");

    // Read server messages until Bye.
    let mut decoder = gp_codec::FrameDecoder::new(MAX_FRAME);
    let ledger = loop {
        let mut chunk = [0u8; 4096];
        let n = sock.read(&mut chunk).expect("read");
        assert!(n > 0, "server hung up before Bye");
        decoder.extend(&chunk[..n]);
        let mut bye = None;
        while let Some(payload) = decoder.next().expect("well-framed server bytes") {
            if let ServerMsg::Bye(ledger) = from_wire::<ServerMsg>(&payload).expect("server msg") {
                bye = Some(ledger);
            }
        }
        if let Some(ledger) = bye {
            break ledger;
        }
    };

    assert_eq!(ledger.admitted, 2, "both good frames decoded and admitted");
    let stats = server.stats();
    assert_eq!(stats.decoded_frames, 2);
    assert_eq!(stats.protocol_errors, 1, "the corrupt frame was counted");
    server.shutdown();
}

#[test]
fn malformed_message_gets_an_error_reply_and_disconnect() {
    let (engine, server, addr) = spawn_tcp(ServeConfig::default());

    let mut sock = TcpStream::connect(addr).expect("connect");
    // Well-framed, but not a message: the server must answer with a
    // typed Error and hang up — never panic, never desync others.
    let junk = gp_codec::encode_frame(b"this is not json", MAX_FRAME).expect("frame junk");
    sock.write_all(&junk).expect("send junk");

    let mut decoder = gp_codec::FrameDecoder::new(MAX_FRAME);
    let mut saw_error = false;
    loop {
        let mut chunk = [0u8; 4096];
        let n = sock.read(&mut chunk).expect("read");
        if n == 0 {
            break; // server hung up after the error
        }
        decoder.extend(&chunk[..n]);
        while let Some(payload) = decoder.next().expect("well-framed server bytes") {
            if matches!(
                from_wire::<ServerMsg>(&payload).expect("server msg"),
                ServerMsg::Error { .. }
            ) {
                saw_error = true;
            }
        }
    }
    assert!(saw_error, "a protocol violation must get a typed Error");
    assert!(server.stats().protocol_errors >= 1);

    // The server is still healthy: a fresh client streams fine.
    let mut client = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect after error");
    client
        .send_frame(&stream_fixture().frames[0])
        .expect("send");
    let report = client.close().expect("close");
    assert_eq!(report.ledger.admitted, 1);

    server.shutdown();
    assert_eq!(engine.session_count(), 0);
}

#[test]
fn wrong_wire_version_is_rejected_at_handshake() {
    let (_engine, server, addr) = spawn_tcp(ServeConfig::default());
    let mut sock = TcpStream::connect(addr).expect("connect");
    sock.write_all(&to_wire(
        &ClientMsg::Hello {
            version: WIRE_VERSION + 1,
        },
        MAX_FRAME,
    ))
    .expect("bad hello");

    let mut decoder = gp_codec::FrameDecoder::new(MAX_FRAME);
    let mut messages = Vec::new();
    loop {
        let mut chunk = [0u8; 4096];
        let n = sock.read(&mut chunk).expect("read");
        if n == 0 {
            break;
        }
        decoder.extend(&chunk[..n]);
        while let Some(payload) = decoder.next().expect("well-framed") {
            messages.push(from_wire::<ServerMsg>(&payload).expect("server msg"));
        }
    }
    assert!(
        matches!(messages.as_slice(), [ServerMsg::Error { .. }]),
        "expected exactly one Error, got {messages:?}"
    );
    server.shutdown();
}
