//! Prints per-frame point counts for a simulated capture (segmentation
//! debugging aid).

use gp_kinematics::gestures::{GestureId, GestureSet};
use gp_kinematics::{Performance, UserProfile};
use gp_pipeline::Segmenter;
use gp_radar::{Backend, Environment, RadarConfig, RadarSimulator, Scene};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let profile = UserProfile::generate(0, 42);
    let mut rng = StdRng::seed_from_u64(
        std::env::args()
            .nth(2)
            .map(|v| v.parse().unwrap())
            .unwrap_or(1),
    );
    let perf = Performance::new(
        &profile,
        GestureSet::Asl15,
        GestureId(
            std::env::args()
                .nth(1)
                .map(|v| v.parse().unwrap())
                .unwrap_or(12),
        ),
        1.2,
        &mut rng,
    );
    let (gs, ge) = perf.gesture_interval();
    println!("gesture interval: {gs:.2}..{ge:.2} s");
    let scene = Scene::for_performance(perf, Environment::Office, 1);
    let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 1 ^ 0xF00D);
    let frames = sim.capture_scene(&scene);
    let counts: Vec<usize> = frames.iter().map(|f| f.len()).collect();
    println!("counts: {counts:?}");
    let segs = Segmenter::default().segment(&frames);
    println!("segments: {segs:?}");
}
