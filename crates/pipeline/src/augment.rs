//! Training-time data augmentation (paper §IV-B).
//!
//! Each gesture cloud is replicated with small Gaussian displacements on
//! every point — `×3` copies with `σ = 0.02 m` in the paper — which makes
//! the classifier robust to position jitter and unseen distances
//! (paper Fig. 12's with/without-DA comparison).

use gp_codec::{Decode, DecodeError, Encode, Value};
use gp_pointcloud::{PointCloud, Vec3};
use rand::Rng;

/// Augmentation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmenterConfig {
    /// Number of jittered copies per original sample.
    pub copies: usize,
    /// Standard deviation of the per-point displacement (m).
    pub sigma: f64,
}

impl Default for AugmenterConfig {
    fn default() -> Self {
        AugmenterConfig {
            copies: 3,
            sigma: 0.02,
        }
    }
}

impl Encode for AugmenterConfig {
    fn encode(&self) -> Value {
        Value::record([
            ("copies", self.copies.encode()),
            ("sigma", self.sigma.encode()),
        ])
    }
}

impl Decode for AugmenterConfig {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        Ok(AugmenterConfig {
            copies: value.get("copies")?,
            sigma: value.get("sigma")?,
        })
    }
}

/// The data-augmentation module.
#[derive(Debug, Clone, Default)]
pub struct Augmenter {
    config: AugmenterConfig,
}

impl Augmenter {
    /// Creates an augmenter.
    pub fn new(config: AugmenterConfig) -> Self {
        Augmenter { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AugmenterConfig {
        &self.config
    }

    /// Returns one jittered copy of `cloud`.
    pub fn jitter<R: Rng>(&self, cloud: &PointCloud, rng: &mut R) -> PointCloud {
        cloud
            .iter()
            .map(|p| {
                let mut q = *p;
                q.position += Vec3::new(
                    gaussian(rng) * self.config.sigma,
                    gaussian(rng) * self.config.sigma,
                    gaussian(rng) * self.config.sigma,
                );
                q
            })
            .collect()
    }

    /// Returns the augmented set: `copies` jittered versions of `cloud`
    /// (the original is *not* included, matching "this process is
    /// repeated to augment the data three times").
    pub fn augment<R: Rng>(&self, cloud: &PointCloud, rng: &mut R) -> Vec<PointCloud> {
        (0..self.config.copies)
            .map(|_| self.jitter(cloud, rng))
            .collect()
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_pointcloud::Point;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cloud() -> PointCloud {
        (0..30)
            .map(|i| Point::new(Vec3::new(i as f64 * 0.05, 1.2, 1.0), 0.7, 12.0))
            .collect()
    }

    #[test]
    fn produces_requested_copies() {
        let mut rng = StdRng::seed_from_u64(1);
        let copies = Augmenter::default().augment(&cloud(), &mut rng);
        assert_eq!(copies.len(), 3);
        for c in &copies {
            assert_eq!(c.len(), 30);
        }
    }

    #[test]
    fn jitter_is_small_but_nonzero() {
        let mut rng = StdRng::seed_from_u64(2);
        let original = cloud();
        let jittered = Augmenter::default().jitter(&original, &mut rng);
        let mut max_shift = 0.0f64;
        let mut total_shift = 0.0f64;
        for (a, b) in original.iter().zip(jittered.iter()) {
            let d = a.position.distance(b.position);
            max_shift = max_shift.max(d);
            total_shift += d;
        }
        assert!(total_shift > 0.0, "jitter must move points");
        // 3σ · √3 ≈ 0.104; allow some slack.
        assert!(max_shift < 0.2, "jitter too large: {max_shift}");
        let mean_shift = total_shift / original.len() as f64;
        assert!(
            (0.005..0.08).contains(&mean_shift),
            "mean shift {mean_shift}"
        );
    }

    #[test]
    fn jitter_preserves_doppler_and_snr() {
        let mut rng = StdRng::seed_from_u64(3);
        let original = cloud();
        let jittered = Augmenter::default().jitter(&original, &mut rng);
        for (a, b) in original.iter().zip(jittered.iter()) {
            assert_eq!(a.doppler, b.doppler);
            assert_eq!(a.snr, b.snr);
        }
    }

    #[test]
    fn zero_copies_supported() {
        let mut rng = StdRng::seed_from_u64(4);
        let aug = Augmenter::new(AugmenterConfig {
            copies: 0,
            sigma: 0.02,
        });
        assert!(aug.augment(&cloud(), &mut rng).is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Augmenter::default().jitter(&cloud(), &mut StdRng::seed_from_u64(9));
        let b = Augmenter::default().jitter(&cloud(), &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_cloud_augments_to_empty_clouds() {
        let mut rng = StdRng::seed_from_u64(5);
        let copies = Augmenter::default().augment(&PointCloud::new(), &mut rng);
        assert_eq!(copies.len(), 3);
        assert!(copies.iter().all(PointCloud::is_empty));
    }
}
