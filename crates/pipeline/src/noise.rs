//! Noise canceling: keep the main DBSCAN cluster (paper §IV-B).
//!
//! After static clutter removal there remain points from swaying
//! reflectors, multipath ghosts and other people. DBSCAN over the
//! aggregated gesture cloud groups points by density; the cluster with the
//! most points is the user (the *main cluster*), everything else is
//! discarded. Paper parameters: `D_max = 1 m`, `N_min = 4`.

use gp_codec::{Decode, DecodeError, Encode, Value};
use gp_pointcloud::dbscan::{dbscan, DbscanConfig};
use gp_pointcloud::{Clustering, PointCloud};

/// Noise-canceling parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseCancelerConfig {
    /// DBSCAN neighbourhood radius — the paper's `D_max` (m).
    pub max_distance: f64,
    /// DBSCAN minimum cluster cardinality — the paper's `N_min`.
    pub min_points: usize,
}

impl Default for NoiseCancelerConfig {
    fn default() -> Self {
        NoiseCancelerConfig {
            max_distance: 1.0,
            min_points: 4,
        }
    }
}

impl Encode for NoiseCancelerConfig {
    fn encode(&self) -> Value {
        Value::record([
            ("max_distance", self.max_distance.encode()),
            ("min_points", self.min_points.encode()),
        ])
    }
}

impl Decode for NoiseCancelerConfig {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        Ok(NoiseCancelerConfig {
            max_distance: value.get("max_distance")?,
            min_points: value.get("min_points")?,
        })
    }
}

impl NoiseCancelerConfig {
    fn as_dbscan(self) -> DbscanConfig {
        DbscanConfig {
            eps: self.max_distance,
            min_points: self.min_points,
        }
    }
}

/// The noise-canceling module.
#[derive(Debug, Clone, Default)]
pub struct NoiseCanceler {
    config: NoiseCancelerConfig,
}

impl NoiseCanceler {
    /// Creates a noise canceler.
    pub fn new(config: NoiseCancelerConfig) -> Self {
        NoiseCanceler { config }
    }

    /// Returns the main cluster of `cloud`, or an empty cloud if no
    /// cluster meets the density requirement.
    pub fn clean(&self, cloud: &PointCloud) -> PointCloud {
        gp_pointcloud::dbscan::main_cluster_of(cloud, &self.config.as_dbscan())
    }

    /// Exposes the full clustering (main cluster *and* the discarded
    /// ones) — used by the multi-person analysis of paper Fig. 15.
    pub fn clusters(&self, cloud: &PointCloud) -> Clustering {
        dbscan(cloud, &self.config.as_dbscan())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_pointcloud::{Point, Vec3};

    fn user_blob(n: usize, center: Vec3) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Point::new(
                    center
                        + Vec3::new(
                            (t * 0.7).sin() * 0.3,
                            (t * 1.1).cos() * 0.2,
                            (t * 1.7).sin() * 0.35,
                        ),
                    0.5,
                    20.0,
                )
            })
            .collect()
    }

    #[test]
    fn keeps_user_drops_far_ghosts() {
        let mut points = user_blob(40, Vec3::new(0.0, 1.2, 1.2));
        // Ghosts at stretched range.
        points.push(Point::new(Vec3::new(0.1, 3.4, 1.0), 0.5, 9.0));
        points.push(Point::new(Vec3::new(-0.2, 4.0, 1.3), 0.3, 8.5));
        let cleaned = NoiseCanceler::default().clean(&PointCloud::from_points(points));
        assert_eq!(cleaned.len(), 40);
        assert!(cleaned.iter().all(|p| p.position.y < 2.5));
    }

    #[test]
    fn separates_user_from_walker() {
        // Fig. 15a: a walker passes 1.5 m behind the user — its points
        // form their own cluster and must be discarded.
        let mut points = user_blob(40, Vec3::new(0.0, 1.2, 1.2));
        points.extend(user_blob(15, Vec3::new(-1.5, 3.2, 1.1)));
        let canceler = NoiseCanceler::default();
        let cleaned = canceler.clean(&PointCloud::from_points(points.clone()));
        assert_eq!(cleaned.len(), 40, "main cluster should be the user");
        let clustering = canceler.clusters(&PointCloud::from_points(points));
        assert!(
            clustering.cluster_count() >= 2,
            "walker should form its own cluster"
        );
    }

    #[test]
    fn empty_in_empty_out() {
        assert!(NoiseCanceler::default()
            .clean(&PointCloud::new())
            .is_empty());
    }

    #[test]
    fn sparse_noise_only_gives_empty() {
        let points = vec![
            Point::at(Vec3::new(0.0, 1.0, 1.0)),
            Point::at(Vec3::new(3.0, 2.0, 1.0)),
            Point::at(Vec3::new(-3.0, 4.0, 0.5)),
        ];
        let cleaned = NoiseCanceler::default().clean(&PointCloud::from_points(points));
        assert!(cleaned.is_empty());
    }

    #[test]
    fn close_interferer_merges_below_dbscan_resolution() {
        // The minimum distinguishable separation is governed by D_max
        // (paper §VII-1): another person closer than that merges into the
        // main cluster.
        let mut points = user_blob(40, Vec3::new(0.0, 1.2, 1.2));
        points.extend(user_blob(10, Vec3::new(0.8, 1.4, 1.2))); // 0.8 m away < D_max
        let cleaned = NoiseCanceler::default().clean(&PointCloud::from_points(points));
        assert_eq!(
            cleaned.len(),
            50,
            "sub-D_max interferer merges (expected limitation)"
        );
    }

    #[test]
    fn tighter_radius_separates_closer_interferers() {
        let mut points = user_blob(40, Vec3::new(0.0, 1.2, 1.2));
        points.extend(user_blob(10, Vec3::new(1.2, 1.4, 1.2)));
        let tight = NoiseCanceler::new(NoiseCancelerConfig {
            max_distance: 0.4,
            min_points: 4,
        });
        let cleaned = tight.clean(&PointCloud::from_points(points));
        assert_eq!(cleaned.len(), 40);
    }
}
