//! Sample types flowing between the pipeline and the classifiers.

use gp_pointcloud::PointCloud;

/// The output of preprocessing one gesture: a clean aggregated cloud plus
/// timing metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct GestureSample {
    /// Noise-cancelled aggregated gesture point cloud.
    pub cloud: PointCloud,
    /// Per-frame clouds of the segment, filtered to the neighbourhood of
    /// the main cluster (temporal view for sequence baselines).
    pub frame_clouds: Vec<PointCloud>,
    /// Segment length in frames (paper Fig. 13's "lasting time").
    pub duration_frames: usize,
    /// Index of the first frame of the segment in the capture.
    pub start_frame: usize,
}

/// A training/evaluation sample with its ground-truth labels.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledSample {
    /// The preprocessed gesture cloud.
    pub cloud: PointCloud,
    /// Per-frame clouds of the segment (temporal view).
    pub frame_clouds: Vec<PointCloud>,
    /// Segment length in frames.
    pub duration_frames: usize,
    /// Gesture class label.
    pub gesture: usize,
    /// User identity label.
    pub user: usize,
}

impl LabeledSample {
    /// Attaches labels to a [`GestureSample`].
    pub fn from_sample(sample: GestureSample, gesture: usize, user: usize) -> Self {
        LabeledSample {
            cloud: sample.cloud,
            frame_clouds: sample.frame_clouds,
            duration_frames: sample.duration_frames,
            gesture,
            user,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_pointcloud::{Point, Vec3};

    #[test]
    fn labeling_preserves_cloud() {
        let sample = GestureSample {
            cloud: PointCloud::from_points(vec![Point::at(Vec3::new(0.0, 1.0, 1.0))]),
            frame_clouds: vec![PointCloud::new(); 21],
            duration_frames: 21,
            start_frame: 30,
        };
        let labeled = LabeledSample::from_sample(sample.clone(), 4, 11);
        assert_eq!(labeled.cloud, sample.cloud);
        assert_eq!(labeled.duration_frames, 21);
        assert_eq!(labeled.gesture, 4);
        assert_eq!(labeled.user, 11);
    }
}
