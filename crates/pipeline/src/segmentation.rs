//! Parameter-adaptive sliding-window gesture segmentation (paper §IV-B).
//!
//! The segmenter watches the number of points per frame. A dynamic point
//! threshold `P_thr` is derived from the cumulative distribution of counts
//! over the trailing `N = 50` frames; a sliding detection window of
//! `n = 10` frames then classifies frames as motion/static, and a gesture
//! starts once at least `F_thr = 6` motion frames accumulate in the
//! window, ending when the window is all-static again.
//!
//! `F_thr = 6` (0.6 s of sustained motion at 10 fps) rather than a stricter
//! 8: multi-phase signs such as 'push' hold the hands still mid-gesture, and
//! the MTI clutter filter blanks those frames, so a sign's longest
//! uninterrupted motion burst is often only 6–7 frames. The end rule (a
//! fully static window) already bridges such intra-gesture pauses.

use gp_codec::{Decode, DecodeError, Encode, Value};
use gp_radar::Frame;
use std::collections::VecDeque;

/// Segmentation parameters (paper §V values as defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmenterConfig {
    /// Length `N` of the trailing window used to estimate the dynamic
    /// point-count threshold.
    pub threshold_window: usize,
    /// Length `n` of the sliding motion-detection window.
    pub motion_window: usize,
    /// Minimum motion frames `F_thr` in the window to accept a gesture
    /// start.
    pub min_motion_frames: usize,
    /// Absolute floor for the dynamic threshold (points per frame); keeps
    /// the detector sane during all-idle stretches.
    pub min_threshold: usize,
    /// Quantile pair `(low, high)` of the count distribution that anchors
    /// the dynamic threshold: `P_thr = lowq + spread_fraction·(highq − lowq)`.
    pub quantiles: (f64, f64),
    /// Fraction of the low→high quantile spread added to the low anchor.
    pub spread_fraction: f64,
}

impl Default for SegmenterConfig {
    fn default() -> Self {
        SegmenterConfig {
            threshold_window: 50,
            motion_window: 10,
            min_motion_frames: 6,
            min_threshold: 3,
            quantiles: (0.2, 0.95),
            spread_fraction: 0.35,
        }
    }
}

impl Encode for SegmenterConfig {
    fn encode(&self) -> Value {
        Value::record([
            ("threshold_window", self.threshold_window.encode()),
            ("motion_window", self.motion_window.encode()),
            ("min_motion_frames", self.min_motion_frames.encode()),
            ("min_threshold", self.min_threshold.encode()),
            ("quantiles", self.quantiles.encode()),
            ("spread_fraction", self.spread_fraction.encode()),
        ])
    }
}

impl Decode for SegmenterConfig {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        Ok(SegmenterConfig {
            threshold_window: value.get("threshold_window")?,
            motion_window: value.get("motion_window")?,
            min_motion_frames: value.get("min_motion_frames")?,
            min_threshold: value.get("min_threshold")?,
            quantiles: value.get("quantiles")?,
            spread_fraction: value.get("spread_fraction")?,
        })
    }
}

/// A detected gesture segment: frame indices `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GestureSegment {
    /// First motion frame (inclusive).
    pub start: usize,
    /// One past the last motion frame (exclusive).
    pub end: usize,
}

impl GestureSegment {
    /// Number of frames in the segment — the "lasting time" of paper
    /// Fig. 13.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the segment is empty (never produced by the segmenter).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

impl Encode for GestureSegment {
    fn encode(&self) -> Value {
        Value::record([("start", self.start.encode()), ("end", self.end.encode())])
    }
}

impl Decode for GestureSegment {
    fn decode(value: &Value) -> Result<Self, DecodeError> {
        Ok(GestureSegment {
            start: value.get("start")?,
            end: value.get("end")?,
        })
    }
}

/// The parameter-adaptive sliding-window segmenter.
#[derive(Debug, Clone, Default)]
pub struct Segmenter {
    config: SegmenterConfig,
}

impl Segmenter {
    /// Creates a segmenter.
    pub fn new(config: SegmenterConfig) -> Self {
        Segmenter { config }
    }

    /// The dynamic point threshold for a window of recent counts: anchors
    /// on the count distribution so it adapts to the environment's
    /// baseline clutter level.
    pub fn dynamic_threshold(&self, counts: &[usize]) -> usize {
        dynamic_threshold(&self.config, counts)
    }

    /// Segments a frame sequence into gesture intervals.
    ///
    /// This is the offline view of [`OnlineSegmenter`]: the whole
    /// recording is replayed through the incremental state machine, so
    /// batch runs and frame-by-frame streaming (`gp-serve`) produce the
    /// same boundaries by construction.
    pub fn segment(&self, frames: &[Frame]) -> Vec<GestureSegment> {
        let mut online = OnlineSegmenter::new(self.config.clone());
        let mut segments: Vec<GestureSegment> =
            frames.iter().filter_map(|f| online.push_frame(f)).collect();
        segments.extend(online.finish());
        segments
    }
}

/// The adaptive-threshold core shared by the offline and online
/// segmenters (see [`SegmenterConfig::quantiles`]).
fn dynamic_threshold(config: &SegmenterConfig, counts: &[usize]) -> usize {
    if counts.is_empty() {
        return config.min_threshold;
    }
    let mut sorted: Vec<usize> = counts.to_vec();
    sorted.sort_unstable();
    let q = |f: f64| -> f64 {
        let idx = (f * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx] as f64
    };
    let lo = q(config.quantiles.0);
    let hi = q(config.quantiles.1);
    // At least one point above the low anchor, so a flat idle
    // distribution (all counts equal) never classifies as motion.
    let thr = lo + (config.spread_fraction * (hi - lo)).max(1.0);
    (thr.ceil() as usize).max(config.min_threshold)
}

/// The incremental sliding-window segmenter: the same parameter-adaptive
/// state machine as [`Segmenter`], fed one frame at a time.
///
/// The offline algorithm is strictly causal — the threshold for frame `i`
/// uses only the trailing `threshold_window` counts and the motion window
/// only the trailing `motion_window` flags — so it ports to a streaming
/// state machine without approximation. [`OnlineSegmenter::push`] returns
/// a [`GestureSegment`] at the frame where the detector closes a gesture;
/// [`OnlineSegmenter::finish`] closes a gesture still open at stream end.
///
/// Memory is bounded: the state holds at most `threshold_window + 1`
/// counts and `motion_window` flags regardless of stream length, and
/// [`OnlineSegmenter::earliest_needed`] tells stream buffers (e.g. a
/// `gp-serve` session) which frames may still be referenced by a future
/// segment, so they can trim everything older.
#[derive(Debug, Clone, Default)]
pub struct OnlineSegmenter {
    config: SegmenterConfig,
    /// Trailing point counts feeding the adaptive threshold (≤ `N + 1`).
    counts: VecDeque<usize>,
    /// Trailing motion flags (≤ `n`).
    motion: VecDeque<bool>,
    /// Scratch buffer for the threshold quantiles.
    scratch: Vec<usize>,
    /// Index of the next frame to be pushed.
    next_index: usize,
    in_gesture: bool,
    start: usize,
    last_motion: usize,
}

impl OnlineSegmenter {
    /// Creates an online segmenter.
    pub fn new(config: SegmenterConfig) -> Self {
        OnlineSegmenter {
            config,
            ..OnlineSegmenter::default()
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SegmenterConfig {
        &self.config
    }

    /// Number of frames pushed so far.
    pub fn frames_seen(&self) -> usize {
        self.next_index
    }

    /// Whether the detector is currently inside a gesture.
    pub fn in_gesture(&self) -> bool {
        self.in_gesture
    }

    /// The earliest frame index a future segment can still reference.
    ///
    /// Stream buffers may drop all frames before this index: while idle,
    /// a future gesture start cannot reach further back than the motion
    /// window; while inside a gesture, the open segment's start frame is
    /// the bound.
    pub fn earliest_needed(&self) -> usize {
        if self.in_gesture {
            self.start
        } else {
            self.next_index.saturating_sub(self.config.motion_window)
        }
    }

    /// Feeds the next frame's point count; returns a segment when this
    /// frame closes one.
    pub fn push(&mut self, point_count: usize) -> Option<GestureSegment> {
        let i = self.next_index;
        self.next_index += 1;

        // Adaptive threshold over the trailing counts (same window the
        // offline pass uses: `counts[i - N ..= i]`).
        self.counts.push_back(point_count);
        if self.counts.len() > self.config.threshold_window + 1 {
            self.counts.pop_front();
        }
        self.scratch.clear();
        self.scratch.extend(self.counts.iter().copied());
        let is_motion = point_count >= dynamic_threshold(&self.config, &self.scratch);

        self.motion.push_back(is_motion);
        if self.motion.len() > self.config.motion_window {
            self.motion.pop_front();
        }
        let motion_count = self.motion.iter().filter(|m| **m).count();

        if !self.in_gesture {
            let needed = self.config.min_motion_frames.min(self.config.motion_window);
            if motion_count >= needed {
                self.in_gesture = true;
                // The gesture started at the first motion frame of the
                // current window.
                let w_lo = i + 1 - self.motion.len();
                self.start = w_lo + self.motion.iter().position(|m| *m).unwrap_or(0);
                self.last_motion = i;
            }
            None
        } else {
            if is_motion {
                self.last_motion = i;
            }
            if motion_count == 0 {
                // Entire window static: the gesture ended at the last
                // motion frame.
                self.in_gesture = false;
                Some(GestureSegment {
                    start: self.start,
                    end: self.last_motion + 1,
                })
            } else {
                None
            }
        }
    }

    /// Feeds the next frame; returns a segment when this frame closes one.
    pub fn push_frame(&mut self, frame: &Frame) -> Option<GestureSegment> {
        self.push(frame.len())
    }

    /// Closes a gesture still open at stream end (the offline pass's
    /// trailing-segment rule). Idempotent.
    pub fn finish(&mut self) -> Option<GestureSegment> {
        if self.in_gesture {
            self.in_gesture = false;
            Some(GestureSegment {
                start: self.start,
                end: self.last_motion + 1,
            })
        } else {
            None
        }
    }

    /// Resets all state for a fresh stream, keeping the configuration.
    pub fn reset(&mut self) {
        let config = self.config.clone();
        *self = OnlineSegmenter::new(config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_pointcloud::{Point, PointCloud, Vec3};

    /// Builds frames with the given per-frame point counts.
    fn frames_with_counts(counts: &[usize]) -> Vec<Frame> {
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let cloud: PointCloud = (0..c)
                    .map(|k| Point::new(Vec3::new(k as f64 * 0.05, 1.2, 1.0), 0.4, 15.0))
                    .collect();
                Frame::new(i as f64 * 0.1, cloud)
            })
            .collect()
    }

    fn pattern(idle: usize, burst: usize, tail: usize, level: usize) -> Vec<usize> {
        let mut v = vec![1; idle];
        v.extend(std::iter::repeat(level).take(burst));
        v.extend(std::iter::repeat(1).take(tail));
        v
    }

    #[test]
    fn detects_single_burst() {
        let counts = pattern(20, 20, 20, 12);
        let segs = Segmenter::default().segment(&frames_with_counts(&counts));
        assert_eq!(segs.len(), 1);
        let s = segs[0];
        // Start near frame 20, end near frame 40.
        assert!((18..=24).contains(&s.start), "start {}", s.start);
        assert!((38..=44).contains(&s.end), "end {}", s.end);
    }

    #[test]
    fn all_idle_yields_nothing() {
        let counts = vec![1usize; 80];
        let segs = Segmenter::default().segment(&frames_with_counts(&counts));
        assert!(segs.is_empty(), "{segs:?}");
    }

    #[test]
    fn all_empty_frames_yield_nothing() {
        let counts = vec![0usize; 80];
        let segs = Segmenter::default().segment(&frames_with_counts(&counts));
        assert!(segs.is_empty());
    }

    #[test]
    fn detects_two_bursts() {
        let mut counts = pattern(20, 20, 25, 12);
        counts.extend(std::iter::repeat(14).take(18));
        counts.extend(std::iter::repeat(1).take(20));
        let segs = Segmenter::default().segment(&frames_with_counts(&counts));
        assert_eq!(segs.len(), 2, "{segs:?}");
        assert!(segs[0].end <= segs[1].start);
    }

    #[test]
    fn short_blip_is_rejected() {
        // 4 motion frames < F_thr = 8.
        let counts = pattern(30, 4, 30, 15);
        let segs = Segmenter::default().segment(&frames_with_counts(&counts));
        assert!(segs.is_empty(), "{segs:?}");
    }

    #[test]
    fn gesture_at_sequence_end_is_closed() {
        let counts = pattern(30, 15, 0, 12);
        let segs = Segmenter::default().segment(&frames_with_counts(&counts));
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].end, 45);
    }

    #[test]
    fn adapts_to_noisy_baseline() {
        // Baseline of 4 points (noisy room) with bursts to 16: a fixed
        // low threshold would merge everything; the adaptive one doesn't.
        let mut counts = vec![4usize; 25];
        counts.extend(std::iter::repeat(16).take(20));
        counts.extend(std::iter::repeat(4).take(25));
        let segs = Segmenter::default().segment(&frames_with_counts(&counts));
        assert_eq!(segs.len(), 1, "{segs:?}");
        assert!(
            (23..=29).contains(&segs[0].start),
            "start {}",
            segs[0].start
        );
    }

    #[test]
    fn threshold_floor_respected() {
        let seg = Segmenter::default();
        assert_eq!(seg.dynamic_threshold(&[]), 3);
        assert_eq!(seg.dynamic_threshold(&[0, 0, 0, 0]), 3);
    }

    #[test]
    fn threshold_tracks_distribution() {
        let seg = Segmenter::default();
        let quiet = vec![1usize; 50];
        let mut active = vec![1usize; 25];
        active.extend(vec![20usize; 25]);
        assert!(seg.dynamic_threshold(&active) > seg.dynamic_threshold(&quiet));
    }

    #[test]
    fn segment_len() {
        let s = GestureSegment { start: 10, end: 32 };
        assert_eq!(s.len(), 22);
        assert!(!s.is_empty());
    }

    /// Replays `counts` through the online state machine the way a
    /// streaming caller would, including the end-of-stream flush.
    fn online_replay(config: SegmenterConfig, counts: &[usize]) -> Vec<GestureSegment> {
        let mut online = OnlineSegmenter::new(config);
        let mut segs: Vec<GestureSegment> = counts.iter().filter_map(|&c| online.push(c)).collect();
        segs.extend(online.finish());
        segs
    }

    #[test]
    fn online_matches_offline_on_varied_patterns() {
        let patterns: Vec<Vec<usize>> = vec![
            pattern(20, 20, 20, 12),
            pattern(30, 4, 30, 15),
            pattern(30, 15, 0, 12),
            vec![1usize; 80],
            vec![0usize; 80],
            {
                let mut v = pattern(20, 20, 25, 12);
                v.extend(std::iter::repeat(14).take(18));
                v.extend(std::iter::repeat(1).take(20));
                v
            },
            // Pseudo-random counts: exercises threshold adaptation.
            (0..200u64)
                .map(|i| ((i.wrapping_mul(0x9E3779B9) >> 27) % 17) as usize)
                .collect(),
        ];
        for counts in patterns {
            let frames = frames_with_counts(&counts);
            let offline = Segmenter::default().segment(&frames);
            let online = online_replay(SegmenterConfig::default(), &counts);
            assert_eq!(offline, online, "counts {counts:?}");
        }
    }

    #[test]
    fn online_state_is_bounded() {
        let cfg = SegmenterConfig::default();
        let mut online = OnlineSegmenter::new(cfg.clone());
        for i in 0..10_000usize {
            let c = if i % 97 < 20 { 14 } else { 1 };
            online.push(c);
            assert!(online.counts.len() <= cfg.threshold_window + 1);
            assert!(online.motion.len() <= cfg.motion_window);
        }
        assert_eq!(online.frames_seen(), 10_000);
    }

    #[test]
    fn earliest_needed_never_exceeds_open_segment_start() {
        let counts = pattern(30, 25, 30, 12);
        let mut online = OnlineSegmenter::new(SegmenterConfig::default());
        let mut segments = Vec::new();
        for &c in &counts {
            let needed_before = online.earliest_needed();
            if let Some(seg) = online.push(c) {
                assert!(
                    needed_before <= seg.start,
                    "buffer trimmed past a segment start: {needed_before} > {}",
                    seg.start
                );
                segments.push(seg);
            }
        }
        segments.extend(online.finish());
        assert_eq!(segments.len(), 1);
        // Idle tail: the bound advances with the stream again.
        assert!(online.earliest_needed() > segments[0].start);
    }

    #[test]
    fn reset_clears_state() {
        let counts = pattern(20, 20, 20, 12);
        let mut online = OnlineSegmenter::new(SegmenterConfig::default());
        let first: Vec<_> = counts.iter().filter_map(|&c| online.push(c)).collect();
        online.reset();
        assert_eq!(online.frames_seen(), 0);
        let second: Vec<_> = counts.iter().filter_map(|&c| online.push(c)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn longer_gesture_gives_longer_segment() {
        // Segment length must track the true motion duration (paper
        // Fig. 13 measures user speed through this).
        let short = pattern(25, 14, 25, 12);
        let long = pattern(25, 30, 25, 12);
        let s1 = Segmenter::default().segment(&frames_with_counts(&short))[0];
        let s2 = Segmenter::default().segment(&frames_with_counts(&long))[0];
        assert!(s2.len() > s1.len());
    }
}
