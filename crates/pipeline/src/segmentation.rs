//! Parameter-adaptive sliding-window gesture segmentation (paper §IV-B).
//!
//! The segmenter watches the number of points per frame. A dynamic point
//! threshold `P_thr` is derived from the cumulative distribution of counts
//! over the trailing `N = 50` frames; a sliding detection window of
//! `n = 10` frames then classifies frames as motion/static, and a gesture
//! starts once at least `F_thr = 6` motion frames accumulate in the
//! window, ending when the window is all-static again.
//!
//! `F_thr = 6` (0.6 s of sustained motion at 10 fps) rather than a stricter
//! 8: multi-phase signs such as 'push' hold the hands still mid-gesture, and
//! the MTI clutter filter blanks those frames, so a sign's longest
//! uninterrupted motion burst is often only 6–7 frames. The end rule (a
//! fully static window) already bridges such intra-gesture pauses.

use gp_radar::Frame;
use serde::{Deserialize, Serialize};

/// Segmentation parameters (paper §V values as defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmenterConfig {
    /// Length `N` of the trailing window used to estimate the dynamic
    /// point-count threshold.
    pub threshold_window: usize,
    /// Length `n` of the sliding motion-detection window.
    pub motion_window: usize,
    /// Minimum motion frames `F_thr` in the window to accept a gesture
    /// start.
    pub min_motion_frames: usize,
    /// Absolute floor for the dynamic threshold (points per frame); keeps
    /// the detector sane during all-idle stretches.
    pub min_threshold: usize,
    /// Quantile pair `(low, high)` of the count distribution that anchors
    /// the dynamic threshold: `P_thr = lowq + spread_fraction·(highq − lowq)`.
    pub quantiles: (f64, f64),
    /// Fraction of the low→high quantile spread added to the low anchor.
    pub spread_fraction: f64,
}

impl Default for SegmenterConfig {
    fn default() -> Self {
        SegmenterConfig {
            threshold_window: 50,
            motion_window: 10,
            min_motion_frames: 6,
            min_threshold: 3,
            quantiles: (0.2, 0.95),
            spread_fraction: 0.35,
        }
    }
}

/// A detected gesture segment: frame indices `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GestureSegment {
    /// First motion frame (inclusive).
    pub start: usize,
    /// One past the last motion frame (exclusive).
    pub end: usize,
}

impl GestureSegment {
    /// Number of frames in the segment — the "lasting time" of paper
    /// Fig. 13.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the segment is empty (never produced by the segmenter).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// The parameter-adaptive sliding-window segmenter.
#[derive(Debug, Clone, Default)]
pub struct Segmenter {
    config: SegmenterConfig,
}

impl Segmenter {
    /// Creates a segmenter.
    pub fn new(config: SegmenterConfig) -> Self {
        Segmenter { config }
    }

    /// The dynamic point threshold for a window of recent counts: anchors
    /// on the count distribution so it adapts to the environment's
    /// baseline clutter level.
    pub fn dynamic_threshold(&self, counts: &[usize]) -> usize {
        if counts.is_empty() {
            return self.config.min_threshold;
        }
        let mut sorted: Vec<usize> = counts.to_vec();
        sorted.sort_unstable();
        let q = |f: f64| -> f64 {
            let idx = (f * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx] as f64
        };
        let lo = q(self.config.quantiles.0);
        let hi = q(self.config.quantiles.1);
        // At least one point above the low anchor, so a flat idle
        // distribution (all counts equal) never classifies as motion.
        let thr = lo + (self.config.spread_fraction * (hi - lo)).max(1.0);
        (thr.ceil() as usize).max(self.config.min_threshold)
    }

    /// Segments a frame sequence into gesture intervals.
    pub fn segment(&self, frames: &[Frame]) -> Vec<GestureSegment> {
        let counts: Vec<usize> = frames.iter().map(Frame::len).collect();
        let n = counts.len();
        let cfg = &self.config;
        if n == 0 {
            return Vec::new();
        }

        // Motion flags from the adaptive threshold. The threshold for
        // frame i uses the trailing `threshold_window` counts (or all
        // frames available so far), so quiet environments lower it and
        // noisy ones raise it.
        let mut motion = vec![false; n];
        for i in 0..n {
            let lo = i.saturating_sub(cfg.threshold_window);
            let thr = self.dynamic_threshold(&counts[lo..=i]);
            motion[i] = counts[i] >= thr;
        }

        let mut segments = Vec::new();
        let mut in_gesture = false;
        let mut start = 0usize;
        let mut last_motion = 0usize;
        for i in 0..n {
            let w_lo = i.saturating_sub(cfg.motion_window.saturating_sub(1));
            let window = &motion[w_lo..=i];
            let motion_count = window.iter().filter(|m| **m).count();
            if !in_gesture {
                if motion_count >= cfg.min_motion_frames.min(cfg.motion_window) {
                    in_gesture = true;
                    // The gesture started at the first motion frame of
                    // the current window.
                    start = w_lo + window.iter().position(|m| *m).unwrap_or(0);
                    last_motion = i;
                }
            } else {
                if motion[i] {
                    last_motion = i;
                }
                if motion_count == 0 {
                    // Entire window static: the gesture ended at the last
                    // motion frame.
                    segments.push(GestureSegment {
                        start,
                        end: last_motion + 1,
                    });
                    in_gesture = false;
                }
            }
        }
        if in_gesture {
            segments.push(GestureSegment {
                start,
                end: last_motion + 1,
            });
        }
        segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_pointcloud::{Point, PointCloud, Vec3};

    /// Builds frames with the given per-frame point counts.
    fn frames_with_counts(counts: &[usize]) -> Vec<Frame> {
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let cloud: PointCloud = (0..c)
                    .map(|k| Point::new(Vec3::new(k as f64 * 0.05, 1.2, 1.0), 0.4, 15.0))
                    .collect();
                Frame::new(i as f64 * 0.1, cloud)
            })
            .collect()
    }

    fn pattern(idle: usize, burst: usize, tail: usize, level: usize) -> Vec<usize> {
        let mut v = vec![1; idle];
        v.extend(std::iter::repeat(level).take(burst));
        v.extend(std::iter::repeat(1).take(tail));
        v
    }

    #[test]
    fn detects_single_burst() {
        let counts = pattern(20, 20, 20, 12);
        let segs = Segmenter::default().segment(&frames_with_counts(&counts));
        assert_eq!(segs.len(), 1);
        let s = segs[0];
        // Start near frame 20, end near frame 40.
        assert!((18..=24).contains(&s.start), "start {}", s.start);
        assert!((38..=44).contains(&s.end), "end {}", s.end);
    }

    #[test]
    fn all_idle_yields_nothing() {
        let counts = vec![1usize; 80];
        let segs = Segmenter::default().segment(&frames_with_counts(&counts));
        assert!(segs.is_empty(), "{segs:?}");
    }

    #[test]
    fn all_empty_frames_yield_nothing() {
        let counts = vec![0usize; 80];
        let segs = Segmenter::default().segment(&frames_with_counts(&counts));
        assert!(segs.is_empty());
    }

    #[test]
    fn detects_two_bursts() {
        let mut counts = pattern(20, 20, 25, 12);
        counts.extend(std::iter::repeat(14).take(18));
        counts.extend(std::iter::repeat(1).take(20));
        let segs = Segmenter::default().segment(&frames_with_counts(&counts));
        assert_eq!(segs.len(), 2, "{segs:?}");
        assert!(segs[0].end <= segs[1].start);
    }

    #[test]
    fn short_blip_is_rejected() {
        // 4 motion frames < F_thr = 8.
        let counts = pattern(30, 4, 30, 15);
        let segs = Segmenter::default().segment(&frames_with_counts(&counts));
        assert!(segs.is_empty(), "{segs:?}");
    }

    #[test]
    fn gesture_at_sequence_end_is_closed() {
        let counts = pattern(30, 15, 0, 12);
        let segs = Segmenter::default().segment(&frames_with_counts(&counts));
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].end, 45);
    }

    #[test]
    fn adapts_to_noisy_baseline() {
        // Baseline of 4 points (noisy room) with bursts to 16: a fixed
        // low threshold would merge everything; the adaptive one doesn't.
        let mut counts = vec![4usize; 25];
        counts.extend(std::iter::repeat(16).take(20));
        counts.extend(std::iter::repeat(4).take(25));
        let segs = Segmenter::default().segment(&frames_with_counts(&counts));
        assert_eq!(segs.len(), 1, "{segs:?}");
        assert!(
            (23..=29).contains(&segs[0].start),
            "start {}",
            segs[0].start
        );
    }

    #[test]
    fn threshold_floor_respected() {
        let seg = Segmenter::default();
        assert_eq!(seg.dynamic_threshold(&[]), 3);
        assert_eq!(seg.dynamic_threshold(&[0, 0, 0, 0]), 3);
    }

    #[test]
    fn threshold_tracks_distribution() {
        let seg = Segmenter::default();
        let quiet = vec![1usize; 50];
        let mut active = vec![1usize; 25];
        active.extend(vec![20usize; 25]);
        assert!(seg.dynamic_threshold(&active) > seg.dynamic_threshold(&quiet));
    }

    #[test]
    fn segment_len() {
        let s = GestureSegment { start: 10, end: 32 };
        assert_eq!(s.len(), 22);
        assert!(!s.is_empty());
    }

    #[test]
    fn longer_gesture_gives_longer_segment() {
        // Segment length must track the true motion duration (paper
        // Fig. 13 measures user speed through this).
        let short = pattern(25, 14, 25, 12);
        let long = pattern(25, 30, 25, 12);
        let s1 = Segmenter::default().segment(&frames_with_counts(&short))[0];
        let s2 = Segmenter::default().segment(&frames_with_counts(&long))[0];
        assert!(s2.len() > s1.len());
    }
}
