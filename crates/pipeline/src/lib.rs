//! The GesturePrint data-preprocessing stage (paper §IV-B).
//!
//! Raw radar frames become training-ready gesture point clouds through
//! four modules, mirroring Fig. 4 of the paper:
//!
//! 1. **Gesture segmentation** ([`segmentation`]) — a parameter-adaptive
//!    sliding-window detector finds where gestures start and end from the
//!    per-frame point counts,
//! 2. **Noise canceling** ([`noise`]) — DBSCAN over the aggregated
//!    gesture cloud keeps only the main (body-related) cluster,
//! 3. **Data augmentation** ([`augment`]) — Gaussian point jitter applied
//!    at training time (×3 copies, σ = 0.02 m),
//! 4. [`Preprocessor`] — glues the stages together: frames in, clean
//!    per-gesture clouds out.
//!
//! # Example
//!
//! ```
//! use gp_pipeline::{Preprocessor, PreprocessorConfig};
//! use gp_pointcloud::{Point, PointCloud, Vec3};
//! use gp_radar::Frame;
//!
//! // Idle – burst of motion – idle: one segment comes out.
//! let mut frames = Vec::new();
//! for i in 0..60 {
//!     let n = if (20..40).contains(&i) { 12 } else { 1 };
//!     let cloud: PointCloud = (0..n)
//!         .map(|k| Point::new(Vec3::new(0.1 * k as f64, 1.2, 1.0), 0.5, 20.0))
//!         .collect();
//!     frames.push(Frame::new(i as f64 * 0.1, cloud));
//! }
//! let pre = Preprocessor::new(PreprocessorConfig::default());
//! let segments = pre.process(&frames);
//! assert_eq!(segments.len(), 1);
//! assert!(!segments[0].cloud.is_empty());
//! ```

pub mod augment;
pub mod noise;
pub mod sample;
pub mod segmentation;

pub use augment::{Augmenter, AugmenterConfig};
pub use noise::{NoiseCanceler, NoiseCancelerConfig};
pub use sample::{GestureSample, LabeledSample};
pub use segmentation::{GestureSegment, OnlineSegmenter, Segmenter, SegmenterConfig};

use gp_radar::Frame;

/// Configuration for the full preprocessing stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PreprocessorConfig {
    /// Segmentation parameters.
    pub segmenter: SegmenterConfig,
    /// Noise-canceling parameters.
    pub noise: NoiseCancelerConfig,
}

impl gp_codec::Encode for PreprocessorConfig {
    fn encode(&self) -> gp_codec::Value {
        gp_codec::Value::record([
            ("segmenter", self.segmenter.encode()),
            ("noise", self.noise.encode()),
        ])
    }
}

impl gp_codec::Decode for PreprocessorConfig {
    fn decode(value: &gp_codec::Value) -> Result<Self, gp_codec::DecodeError> {
        Ok(PreprocessorConfig {
            segmenter: value.get("segmenter")?,
            noise: value.get("noise")?,
        })
    }
}

/// The complete preprocessing pipeline: segmentation + aggregation +
/// noise canceling.
#[derive(Debug, Clone, Default)]
pub struct Preprocessor {
    config: PreprocessorConfig,
}

impl Preprocessor {
    /// Creates a preprocessor.
    pub fn new(config: PreprocessorConfig) -> Self {
        Preprocessor { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PreprocessorConfig {
        &self.config
    }

    /// Processes a frame sequence into per-gesture samples: segments the
    /// timeline, aggregates each segment's points, and removes noise
    /// clusters. Segments whose cloud is empty after noise canceling are
    /// dropped.
    pub fn process(&self, frames: &[Frame]) -> Vec<GestureSample> {
        let segmenter = Segmenter::new(self.config.segmenter.clone());
        segmenter
            .segment(frames)
            .into_iter()
            .filter_map(|seg| self.assemble(&frames[seg.start..seg.end], seg.start))
            .collect()
    }

    /// Assembles one detected segment's frames into a [`GestureSample`]:
    /// aggregates the clouds, removes noise clusters, and filters the
    /// per-frame views to the main cluster's neighbourhood.
    ///
    /// `start_frame` records the segment's absolute index in the capture.
    /// Returns `None` when nothing survives noise canceling (the caller
    /// drops such segments). Streaming callers (`gp-serve`) use this on
    /// segments emitted by [`OnlineSegmenter`]; [`Preprocessor::process`]
    /// uses it for every offline segment, so both paths share one
    /// assembly rule.
    pub fn assemble(&self, segment_frames: &[Frame], start_frame: usize) -> Option<GestureSample> {
        let canceler = NoiseCanceler::new(self.config.noise.clone());
        let aggregated = gp_radar::frame::aggregate(segment_frames);
        let clean = canceler.clean(&aggregated);
        if clean.is_empty() {
            return None;
        }
        // Per-frame temporal view: keep each frame's points that lie near
        // the main cluster.
        let centroid = clean.centroid().expect("non-empty");
        let frame_clouds: Vec<_> = segment_frames
            .iter()
            .map(|f| {
                f.cloud
                    .iter()
                    .filter(|p| p.position.distance(centroid) < 1.2)
                    .copied()
                    .collect()
            })
            .collect();
        Some(GestureSample {
            cloud: clean,
            frame_clouds,
            duration_frames: segment_frames.len(),
            start_frame,
        })
    }
}
