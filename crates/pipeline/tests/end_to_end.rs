//! End-to-end pipeline tests on simulated radar captures: performance →
//! radar frames → segmentation → noise canceling.
//!
//! Captures come from `gp-testkit` so every crate tests against the same
//! canonical scenes and seeds.

use gp_pipeline::{Preprocessor, PreprocessorConfig, Segmenter};
use gp_pointcloud::Vec3;
use gp_radar::scene::{SceneEntity, Walker};
use gp_radar::{Backend, Environment, RadarConfig, RadarSimulator, Scene};
use gp_testkit::{capture, performance, CANONICAL_GESTURE};

#[test]
fn segmentation_finds_the_gesture_interval() {
    let (perf, frames) = capture(0, CANONICAL_GESTURE, 1);
    let (gs, ge) = perf.gesture_interval();
    let segments = Segmenter::default().segment(&frames);
    assert_eq!(
        segments.len(),
        1,
        "expected exactly one gesture, got {segments:?}"
    );
    let seg = segments[0];
    let frame_rate = 10.0;
    let seg_start_s = seg.start as f64 / frame_rate;
    let seg_end_s = seg.end as f64 / frame_rate;
    assert!(
        (seg_start_s - gs).abs() < 0.8,
        "segment start {seg_start_s} vs truth {gs}"
    );
    assert!(
        (seg_end_s - ge).abs() < 1.0,
        "segment end {seg_end_s} vs truth {ge}"
    );
}

#[test]
fn preprocessing_yields_clean_user_cloud() {
    let (_, frames) = capture(0, CANONICAL_GESTURE, 2);
    let samples = Preprocessor::new(PreprocessorConfig::default()).process(&frames);
    assert_eq!(samples.len(), 1);
    let s = &samples[0];
    assert!(s.cloud.len() >= 20, "too few points: {}", s.cloud.len());
    // All points near the user's standing spot (x≈0, y≈0.3..2.0).
    for p in s.cloud.iter() {
        assert!(p.position.y < 2.6, "residual noise at {:?}", p.position);
        assert!(
            p.position.x.abs() < 1.2,
            "residual noise at {:?}",
            p.position
        );
    }
}

#[test]
fn walker_behind_user_is_removed() {
    let perf = performance(0, CANONICAL_GESTURE, 1.2, 3);
    let mut scene = Scene::for_performance(perf, Environment::MeetingRoom, 3);
    scene.push(SceneEntity::Walker(Walker {
        start: Vec3::new(-2.5, 3.0, 0.0),
        velocity: Vec3::new(1.0, 0.0, 0.0),
        height: 1.75,
        enter_time: 0.5,
    }));
    let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 99);
    let frames = sim.capture_scene(&scene);
    let samples = Preprocessor::new(PreprocessorConfig::default()).process(&frames);
    assert!(!samples.is_empty());
    // Main-cluster selection must keep the user (y≈1.2), not the walker
    // corridor (y≈3).
    let cloud = &samples[0].cloud;
    let centroid = cloud.centroid().unwrap();
    assert!(
        centroid.y < 2.2,
        "centroid dragged toward the walker: {centroid:?}"
    );
    let far = cloud.iter().filter(|p| p.position.y > 2.6).count();
    assert!(
        (far as f64) < 0.1 * cloud.len() as f64,
        "walker points leaked: {far}/{}",
        cloud.len()
    );
}

#[test]
fn different_gestures_give_different_durations() {
    // 'away' (2.2 s) vs 'zigzag' (2.8 s): mean segment lengths over a few
    // repetitions must reflect the difference (paper Fig. 13).
    let pre = Preprocessor::new(PreprocessorConfig::default());
    let mean_duration = |gesture: usize| -> f64 {
        let mut total = 0usize;
        let mut n = 0usize;
        for seed in 7..11 {
            let (_, frames) = capture(0, gesture, seed);
            if let Some(d) = pre.process(&frames).iter().map(|s| s.duration_frames).max() {
                total += d;
                n += 1;
            }
        }
        assert!(n > 0, "no segments for gesture {gesture}");
        total as f64 / n as f64
    };
    let da = mean_duration(4); // 'away'
    let db = mean_duration(14); // 'zigzag'
    assert!(
        db > da,
        "'zigzag' ({db:.1}) should outlast 'away' ({da:.1}) on average"
    );
}

#[test]
fn vertical_pat_survives_clutter_filtering() {
    // 'table' is almost purely vertical patting. Its radial velocity comes
    // only from the elbow-pivot arc in the pat primitive; without it the
    // clutter filter shreds the gesture into sub-second fragments. Guard
    // that each capture yields one dominant segment covering most of the
    // gesture rather than clutter-filter confetti.
    let pre = Preprocessor::new(PreprocessorConfig::default());
    for seed in 7..10 {
        let (perf, frames) = capture(0, 13, seed);
        let (gs, ge) = perf.gesture_interval();
        let truth_frames = (ge - gs) * 10.0;
        let samples = pre.process(&frames);
        let dominant = samples
            .iter()
            .map(|s| s.duration_frames)
            .max()
            .unwrap_or_else(|| panic!("no 'table' segment for seed {seed}"));
        assert!(
            dominant as f64 > 0.6 * truth_frames,
            "seed {seed}: dominant segment {dominant} frames vs gesture {truth_frames:.0}"
        );
        assert!(
            samples.len() <= 2,
            "seed {seed}: fragmented into {} segments",
            samples.len()
        );
    }
}

#[test]
fn repetitions_produce_similar_but_not_identical_clouds() {
    let pre = Preprocessor::new(PreprocessorConfig::default());
    let (_, f1) = capture(0, CANONICAL_GESTURE, 10);
    let (_, f2) = capture(0, CANONICAL_GESTURE, 13);
    let s1 = &pre.process(&f1)[0];
    let s2 = &pre.process(&f2)[0];
    assert_ne!(s1.cloud, s2.cloud);
    // But they overlap in space: Chamfer distance small.
    let cd = gp_pointcloud::metrics::chamfer(&s1.cloud, &s2.cloud);
    assert!(cd < 0.4, "same user+gesture should be close, cd={cd}");
}
