//! A timed gesture performance: rest → gesture → rest.
//!
//! [`Performance`] binds a [`UserProfile`] to a gesture trajectory and a
//! place in the room, applies the user's biometric transforms (amplitude,
//! speed, timing warp, biases, tremor) plus per-repetition variation, and
//! exposes the body pose / radar scatterers at any time instant. This is
//! the object the radar simulator animates.

use crate::gestures::{GestureId, GestureMotion, GestureSet};
use crate::path::{HandPath, REST_OFFSET};
use crate::profile::{Handedness, UserProfile};
use crate::scatter::{differentiate, Scatterer};
use crate::skeleton::{ArmPose, BodyPose};
use gp_pointcloud::Vec3;
use rand::Rng;

/// Placement and timing options for a performance.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceConfig {
    /// Distance from the radar to the user along `y` (m).
    pub distance: f64,
    /// Lateral offset of the user from the radar boresight (m).
    pub lateral_offset: f64,
    /// Idle time before the gesture starts (s).
    pub pre_idle: f64,
    /// Idle time after the gesture ends (s).
    pub post_idle: f64,
    /// External speed multiplier (1.0 = the user's natural speed). Used by
    /// the articulation-speed experiments (paper §VI-B3).
    pub speed_scale: f64,
}

impl Default for PerformanceConfig {
    fn default() -> Self {
        PerformanceConfig {
            distance: 1.2,
            lateral_offset: 0.0,
            pre_idle: 1.0,
            post_idle: 1.0,
            speed_scale: 1.0,
        }
    }
}

/// Per-repetition stochastic variation, drawn once per performance.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RepVariation {
    speed_mult: f64,
    amp_mult: f64,
    start_delay: f64,
    tremor_phase: [f64; 3],
    sway_phase: f64,
}

impl RepVariation {
    fn draw<R: Rng>(rng: &mut R) -> Self {
        RepVariation {
            speed_mult: rng.gen_range(0.90..1.10),
            amp_mult: rng.gen_range(0.95..1.05),
            start_delay: rng.gen_range(0.0..0.35),
            tremor_phase: [
                rng.gen_range(0.0..std::f64::consts::TAU),
                rng.gen_range(0.0..std::f64::consts::TAU),
                rng.gen_range(0.0..std::f64::consts::TAU),
            ],
            sway_phase: rng.gen_range(0.0..std::f64::consts::TAU),
        }
    }
}

/// One execution of one gesture by one user at one spot in the room.
#[derive(Debug, Clone)]
pub struct Performance {
    profile: UserProfile,
    motion: GestureMotion,
    config: PerformanceConfig,
    variation: RepVariation,
    torso_center: Vec3,
    torso_radius: f64,
    gesture_duration: f64,
}

impl Performance {
    /// Creates a performance at `distance` metres with default timing.
    ///
    /// The `rng` drives per-repetition variation only — two calls with the
    /// same arguments but different RNG states model two repetitions of
    /// the same gesture by the same user.
    pub fn new<R: Rng>(
        profile: &UserProfile,
        set: GestureSet,
        gesture: GestureId,
        distance: f64,
        rng: &mut R,
    ) -> Self {
        let config = PerformanceConfig {
            distance,
            ..PerformanceConfig::default()
        };
        Self::with_config(profile, set, gesture, config, rng)
    }

    /// Creates a performance with full placement/timing control.
    pub fn with_config<R: Rng>(
        profile: &UserProfile,
        set: GestureSet,
        gesture: GestureId,
        config: PerformanceConfig,
        rng: &mut R,
    ) -> Self {
        let mut motion = set.motion(gesture);
        // Left-handed users mirror single-arm gestures.
        if profile.handedness == Handedness::Left && motion.left.is_none() {
            motion.right = motion.right.mirrored();
        }
        let variation = RepVariation::draw(rng);
        let speed = profile.speed_factor * config.speed_scale * variation.speed_mult;
        let gesture_duration = motion.base_duration / speed.max(0.1);
        let torso_center = Vec3::new(
            config.lateral_offset,
            config.distance,
            profile.shoulder_height - 0.18,
        );
        Performance {
            profile: profile.clone(),
            motion,
            config,
            variation,
            torso_center,
            torso_radius: 0.16,
            gesture_duration,
        }
    }

    /// The user profile performing this gesture.
    pub fn profile(&self) -> &UserProfile {
        &self.profile
    }

    /// The gesture name.
    pub fn gesture_name(&self) -> &'static str {
        self.motion.name
    }

    /// Total timeline length: pre-idle + start delay + gesture + post-idle.
    pub fn total_duration(&self) -> f64 {
        self.config.pre_idle
            + self.variation.start_delay
            + self.gesture_duration
            + self.config.post_idle
    }

    /// The `[start, end)` interval of actual gesture motion (s).
    pub fn gesture_interval(&self) -> (f64, f64) {
        let start = self.config.pre_idle + self.variation.start_delay;
        (start, start + self.gesture_duration)
    }

    /// Body pose at time `t` seconds from the start of the timeline.
    pub fn pose_at(&self, t: f64) -> BodyPose {
        let (gs, ge) = self.gesture_interval();
        let phase = if t < gs {
            0.0
        } else if t >= ge {
            1.0
        } else {
            self.profile.warp_phase((t - gs) / self.gesture_duration)
        };

        // Torso sway (idle micro-motion) keeps static clutter realistic.
        let sway = self.profile.sway_amplitude;
        let torso = self.torso_center
            + Vec3::new(
                sway * (0.4 * std::f64::consts::TAU * t + self.variation.sway_phase).sin(),
                sway * 0.6
                    * (0.27 * std::f64::consts::TAU * t + self.variation.sway_phase * 0.7).cos(),
                0.0,
            );
        let shoulder_z = self.profile.shoulder_height;
        let head = Vec3::new(torso.x, torso.y, self.profile.height - 0.10);

        // The user faces the radar (−y direction), so the body frame maps
        // to the world as (x, y, z) → (−x, −y, z) relative to the torso.
        let right_shoulder = Vec3::new(
            torso.x - self.profile.shoulder_half_width,
            torso.y,
            shoulder_z,
        );
        let left_shoulder = Vec3::new(
            torso.x + self.profile.shoulder_half_width,
            torso.y,
            shoulder_z,
        );

        let right_target = self.wrist_world(&self.motion.right, phase, right_shoulder, t);
        let right = ArmPose::from_wrist_target(
            right_shoulder,
            right_target,
            self.profile.upper_arm,
            self.profile.forearm,
            self.profile.hand,
            self.profile.elbow_swivel,
        );

        let left_path_rest;
        let left_path: &HandPath = match &self.motion.left {
            Some(p) => p,
            None => {
                left_path_rest = crate::path::primitives::hold(REST_OFFSET);
                &left_path_rest
            }
        };
        // The off hand of a single-arm gesture stays at rest (phase fixed).
        let left_phase = if self.motion.left.is_some() {
            phase
        } else {
            0.0
        };
        let left_target = self.wrist_world(
            &left_path.mirrored(), // stored paths are right-hand frames
            left_phase,
            left_shoulder,
            t,
        );
        let left = ArmPose::from_wrist_target(
            left_shoulder,
            left_target,
            self.profile.upper_arm,
            self.profile.forearm,
            self.profile.hand,
            -self.profile.elbow_swivel,
        );

        BodyPose {
            torso_center: torso,
            head,
            right,
            left,
        }
    }

    /// Radar scatterers at time `t` (finite-difference velocities over
    /// 5 ms). Arm and hand scatterer RCS is scaled by the user's
    /// reflectivity signature.
    pub fn scatterers_at(&self, t: f64) -> Vec<Scatterer> {
        let dt = 0.005;
        let now = self.pose_at(t);
        let next = self.pose_at(t + dt);
        let mut scatterers = differentiate(&now, &next, dt, self.torso_radius);
        // The first 8 scatterers are torso + head; the rest are limbs.
        for s in scatterers.iter_mut().skip(8) {
            s.rcs *= self.profile.rcs_scale;
        }
        scatterers
    }

    fn wrist_world(&self, path: &HandPath, phase: f64, shoulder: Vec3, t: f64) -> Vec3 {
        let p = &self.profile;
        let amp = p.rom_scale * self.variation.amp_mult;
        let offset = path.sample(phase);
        // Body → world: user faces the radar, so body +x (user's right)
        // is world −x, and body +y (forward) is world −y.
        let scaled = Vec3::new(
            -offset.x * amp * p.lateral_rom * p.reach(),
            -offset.y * amp * p.reach(),
            offset.z * amp * p.reach(),
        );
        let bias = Vec3::new(-p.lateral_bias, -p.depth_bias, p.vertical_bias);
        let tremor = Vec3::new(
            (std::f64::consts::TAU * p.tremor_frequency * t + self.variation.tremor_phase[0]).sin(),
            (std::f64::consts::TAU * p.tremor_frequency * t + self.variation.tremor_phase[1]).sin(),
            (std::f64::consts::TAU * p.tremor_frequency * t + self.variation.tremor_phase[2]).sin(),
        ) * p.tremor_amplitude;
        shoulder + scaled + bias + tremor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_perf(user: usize, gesture: usize, seed: u64) -> Performance {
        let profile = UserProfile::generate(user, 42);
        let mut rng = StdRng::seed_from_u64(seed);
        Performance::new(
            &profile,
            GestureSet::Asl15,
            GestureId(gesture),
            1.2,
            &mut rng,
        )
    }

    #[test]
    fn timeline_structure() {
        let perf = make_perf(0, 12, 1);
        let (gs, ge) = perf.gesture_interval();
        assert!(gs >= 1.0, "pre-idle respected");
        assert!(ge > gs);
        assert!(perf.total_duration() >= ge + 1.0 - 1e-9);
    }

    #[test]
    fn rest_pose_before_and_after() {
        let perf = make_perf(0, 12, 1);
        let (gs, _) = perf.gesture_interval();
        let p0 = perf.pose_at(0.0);
        let p1 = perf.pose_at(gs * 0.5);
        // Hands should be near the hips and barely moving before start.
        let drift = p0.right.wrist.distance(p1.right.wrist);
        assert!(drift < 0.05, "rest drift {drift}");
        assert!(
            p0.right.wrist.z < p0.torso_center.z,
            "hand hangs below chest"
        );
    }

    #[test]
    fn gesture_moves_dominant_hand() {
        let perf = make_perf(0, 0, 1); // 'ahead' — forward punch
        let (gs, ge) = perf.gesture_interval();
        let rest = perf.pose_at(0.0).right.wrist;
        let mut min_y = f64::INFINITY;
        for i in 0..=50 {
            let t = gs + (ge - gs) * i as f64 / 50.0;
            min_y = min_y.min(perf.pose_at(t).right.wrist.y);
        }
        // Forward = toward the radar = smaller world y.
        assert!(
            min_y < rest.y - 0.25,
            "hand should approach the radar: {min_y} vs {}",
            rest.y
        );
    }

    #[test]
    fn single_arm_gesture_keeps_off_hand_at_rest() {
        let perf = make_perf(0, 14, 1); // 'zigzag' — single arm
        let (gs, ge) = perf.gesture_interval();
        let rest = perf.pose_at(0.0).left.wrist;
        let mid = perf.pose_at((gs + ge) / 2.0).left.wrist;
        assert!(
            rest.distance(mid) < 0.06,
            "off hand moved {}",
            rest.distance(mid)
        );
    }

    #[test]
    fn bimanual_gesture_moves_both_hands() {
        let perf = make_perf(0, 12, 1); // 'push' — bimanual
        let (gs, ge) = perf.gesture_interval();
        let rest = perf.pose_at(0.0);
        let mid = perf.pose_at(gs + (ge - gs) * 0.5);
        assert!(rest.right.wrist.distance(mid.right.wrist) > 0.15);
        assert!(rest.left.wrist.distance(mid.left.wrist) > 0.15);
    }

    #[test]
    fn different_users_trace_different_paths() {
        let a = make_perf(0, 12, 1);
        let b = make_perf(1, 12, 1);
        let (gs_a, ge_a) = a.gesture_interval();
        let (gs_b, ge_b) = b.gesture_interval();
        let mut max_gap = 0.0f64;
        for i in 0..=20 {
            let f = i as f64 / 20.0;
            let pa = a.pose_at(gs_a + (ge_a - gs_a) * f).right.wrist;
            let pb = b.pose_at(gs_b + (ge_b - gs_b) * f).right.wrist;
            max_gap = max_gap.max(pa.distance(pb));
        }
        assert!(max_gap > 0.03, "users too similar: {max_gap}");
    }

    #[test]
    fn repetitions_vary_but_resemble() {
        let a = make_perf(0, 12, 1);
        let b = make_perf(0, 12, 2);
        // Durations differ slightly (speed variation)...
        assert!(a.total_duration() != b.total_duration());
        let ratio = a.total_duration() / b.total_duration();
        // ...but not wildly.
        assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn speed_scale_shortens_gesture() {
        let profile = UserProfile::generate(0, 42);
        let mut rng = StdRng::seed_from_u64(5);
        let slow = Performance::with_config(
            &profile,
            GestureSet::Asl15,
            GestureId(0),
            PerformanceConfig {
                speed_scale: 0.5,
                ..PerformanceConfig::default()
            },
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(5);
        let fast = Performance::with_config(
            &profile,
            GestureSet::Asl15,
            GestureId(0),
            PerformanceConfig {
                speed_scale: 2.0,
                ..PerformanceConfig::default()
            },
            &mut rng,
        );
        let slow_len = {
            let (s, e) = slow.gesture_interval();
            e - s
        };
        let fast_len = {
            let (s, e) = fast.gesture_interval();
            e - s
        };
        assert!((slow_len / fast_len - 4.0).abs() < 1e-9);
    }

    #[test]
    fn scatterers_move_during_gesture() {
        let perf = make_perf(0, 12, 1);
        let (gs, ge) = perf.gesture_interval();
        // Peak speed over the middle of the gesture: any single instant may
        // fall in a hold phase ('push' pauses at full extension), but the
        // motion phases must show clear Doppler somewhere.
        let max_speed = (0..=20)
            .map(|i| gs + (ge - gs) * (0.2 + 0.6 * i as f64 / 20.0))
            .flat_map(|t| perf.scatterers_at(t))
            .map(|s| s.velocity.norm())
            .fold(0.0f64, f64::max);
        assert!(
            max_speed > 0.3,
            "expected visible Doppler, got {max_speed} m/s"
        );
        let idle = perf.scatterers_at(0.1);
        let idle_speed = idle
            .iter()
            .map(|s| s.velocity.norm())
            .fold(0.0f64, f64::max);
        assert!(
            idle_speed < 0.25,
            "idle should be slow, got {idle_speed} m/s"
        );
    }

    #[test]
    fn user_stands_at_configured_distance() {
        let profile = UserProfile::generate(0, 42);
        let mut rng = StdRng::seed_from_u64(5);
        let perf = Performance::new(
            &profile,
            GestureSet::MTransSee5,
            GestureId(0),
            3.0,
            &mut rng,
        );
        let pose = perf.pose_at(0.0);
        assert!((pose.torso_center.y - 3.0).abs() < 0.05);
    }

    #[test]
    fn left_handed_user_mirrors_single_arm() {
        // Find a left-handed user.
        let lefty = (0..200)
            .map(|id| UserProfile::generate(id, 13))
            .find(|p| p.handedness == Handedness::Left)
            .expect("some lefty in 200 users");
        let righty = UserProfile::generate(
            (0..200)
                .find(|&id| UserProfile::generate(id, 13).handedness == Handedness::Right)
                .unwrap(),
            13,
        );
        let mut rng = StdRng::seed_from_u64(5);
        // 'away' flicks outward to the user's right → world −x for
        // right-handers, +x for left-handers.
        let lp = Performance::new(&lefty, GestureSet::Asl15, GestureId(4), 1.2, &mut rng);
        let rp = Performance::new(&righty, GestureSet::Asl15, GestureId(4), 1.2, &mut rng);
        let sample_x = |perf: &Performance| {
            let (gs, ge) = perf.gesture_interval();
            perf.pose_at(gs + (ge - gs) * 0.6).right.wrist.x - perf.pose_at(0.0).torso_center.x
        };
        assert!(
            sample_x(&lp) * sample_x(&rp) < 0.0,
            "mirrored gestures should oppose in x"
        );
    }
}
