//! Radar scatterer sampling from body poses.
//!
//! An FMCW radar does not see joints — it sees reflected power from skin
//! and clothing. We approximate each body part as a small set of point
//! scatterers with radar cross-sections (RCS) roughly proportional to the
//! part's reflective area: the torso dominates, arms are weaker, hands are
//! weakest (which is exactly why mmWave gesture clouds are sparse and why
//! the paper needs careful preprocessing).

use crate::skeleton::{ArmPose, BodyPose};
use gp_pointcloud::Vec3;

/// A point reflector with motion state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scatterer {
    /// World position (m).
    pub position: Vec3,
    /// World velocity (m/s).
    pub velocity: Vec3,
    /// Radar cross-section (linear, arbitrary units; torso ≈ 1).
    pub rcs: f64,
}

impl Scatterer {
    /// A static scatterer.
    pub fn fixed(position: Vec3, rcs: f64) -> Self {
        Scatterer {
            position,
            velocity: Vec3::ZERO,
            rcs,
        }
    }
}

/// Relative RCS of body parts (torso = 1.0).
pub mod rcs {
    /// Torso scatterer RCS.
    pub const TORSO: f64 = 1.0;
    /// Head scatterer RCS.
    pub const HEAD: f64 = 0.45;
    /// Upper-arm scatterer RCS.
    pub const UPPER_ARM: f64 = 0.30;
    /// Forearm scatterer RCS.
    pub const FOREARM: f64 = 0.22;
    /// Hand scatterer RCS.
    pub const HAND: f64 = 0.12;
}

/// Samples the scatterer *positions* of a pose (no velocities).
///
/// The layout is deterministic so that differencing two poses gives
/// scatterer-wise correspondence: torso ring + belly (6), head (2), and
/// per arm: 3 upper-arm + 4 forearm + 1 wrist + 1 elbow + 3 hand glint
/// centres, i.e. 12 per arm and 32 in total. A human is an extended
/// target — the number and spread of glint centres is what gives mmWave
/// gesture clouds their characteristic multi-point-per-frame texture.
pub fn sample_positions(pose: &BodyPose, torso_radius: f64) -> Vec<(Vec3, f64)> {
    let mut out = Vec::with_capacity(32);

    // Torso: a ring of 5 scatterers around the chest centre plus belly.
    for k in 0..5 {
        let ang = std::f64::consts::PI * (k as f64 / 4.0) - std::f64::consts::FRAC_PI_2;
        out.push((
            pose.torso_center
                + Vec3::new(
                    ang.sin() * torso_radius,
                    ang.cos() * torso_radius * 0.5,
                    0.0,
                ),
            rcs::TORSO,
        ));
    }
    out.push((pose.torso_center + Vec3::new(0.0, 0.0, -0.25), rcs::TORSO));

    // Head.
    out.push((pose.head, rcs::HEAD));
    out.push((pose.head + Vec3::new(0.0, 0.0, -0.10), rcs::HEAD));

    for arm in [&pose.right, &pose.left] {
        sample_arm(arm, &mut out);
    }
    out
}

fn sample_arm(arm: &ArmPose, out: &mut Vec<(Vec3, f64)>) {
    // Upper arm: 3 points.
    for t in [0.25, 0.55, 0.85] {
        out.push((arm.shoulder.lerp(arm.elbow, t), rcs::UPPER_ARM));
    }
    // Elbow glint (joints reflect strongly).
    out.push((arm.elbow, rcs::UPPER_ARM));
    // Forearm: 4 points.
    for t in [0.2, 0.45, 0.7, 0.9] {
        out.push((arm.elbow.lerp(arm.wrist, t), rcs::FOREARM));
    }
    // Wrist + hand: 4 points.
    out.push((arm.wrist, rcs::HAND));
    out.push((arm.wrist.lerp(arm.hand_tip, 0.4), rcs::HAND));
    out.push((arm.wrist.lerp(arm.hand_tip, 0.75), rcs::HAND));
    out.push((arm.hand_tip, rcs::HAND));
}

/// Builds scatterers with velocities by finite-differencing two poses
/// `dt` seconds apart.
///
/// # Panics
///
/// Panics if `dt` is not strictly positive.
pub fn differentiate(
    pose_now: &BodyPose,
    pose_next: &BodyPose,
    dt: f64,
    torso_radius: f64,
) -> Vec<Scatterer> {
    assert!(dt > 0.0, "dt must be positive");
    let now = sample_positions(pose_now, torso_radius);
    let next = sample_positions(pose_next, torso_radius);
    now.into_iter()
        .zip(next)
        .map(|((p, rcs), (pn, _))| Scatterer {
            position: p,
            velocity: (pn - p) * (1.0 / dt),
            rcs,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::ArmPose;

    fn test_pose(wrist_y: f64) -> BodyPose {
        let torso = Vec3::new(0.0, 2.0, 1.1);
        let right_shoulder = Vec3::new(-0.2, 2.0, 1.35);
        let left_shoulder = Vec3::new(0.2, 2.0, 1.35);
        BodyPose {
            torso_center: torso,
            head: Vec3::new(0.0, 2.0, 1.62),
            right: ArmPose::from_wrist_target(
                right_shoulder,
                Vec3::new(-0.2, wrist_y, 1.2),
                0.31,
                0.25,
                0.18,
                0.1,
            ),
            left: ArmPose::from_wrist_target(
                left_shoulder,
                Vec3::new(0.2, 2.1, 0.8),
                0.31,
                0.25,
                0.18,
                0.1,
            ),
        }
    }

    #[test]
    fn sample_count_is_fixed() {
        let pose = test_pose(1.6);
        assert_eq!(sample_positions(&pose, 0.15).len(), 32);
    }

    #[test]
    fn torso_outweighs_hand() {
        let pose = test_pose(1.6);
        let samples = sample_positions(&pose, 0.15);
        let max_rcs = samples.iter().map(|s| s.1).fold(0.0f64, f64::max);
        let min_rcs = samples.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
        assert_eq!(max_rcs, rcs::TORSO);
        assert_eq!(min_rcs, rcs::HAND);
    }

    #[test]
    fn static_pose_has_zero_velocity() {
        let pose = test_pose(1.6);
        let scatterers = differentiate(&pose, &pose, 0.01, 0.15);
        for s in &scatterers {
            assert_eq!(s.velocity, Vec3::ZERO);
        }
    }

    #[test]
    fn moving_wrist_gets_velocity() {
        let a = test_pose(1.7);
        let b = test_pose(1.6); // wrist moved 0.1 m toward the radar
        let scatterers = differentiate(&a, &b, 0.1, 0.15);
        // Hand scatterers of the right arm are at indices 8..16 region;
        // just assert some scatterer reaches ~1 m/s while torso stays slow.
        let max_speed = scatterers
            .iter()
            .map(|s| s.velocity.norm())
            .fold(0.0f64, f64::max);
        assert!(max_speed > 0.5, "expected fast hand, got {max_speed}");
        let torso_speed = scatterers[0].velocity.norm();
        assert!(torso_speed < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        let pose = test_pose(1.6);
        differentiate(&pose, &pose, 0.0, 0.15);
    }

    #[test]
    fn scatterers_near_body() {
        let pose = test_pose(1.6);
        for (p, _) in sample_positions(&pose, 0.15) {
            assert!(
                p.distance(pose.torso_center) < 1.2,
                "scatterer too far: {p:?}"
            );
        }
    }
}
