//! The shoulder–elbow–wrist kinematic chain.
//!
//! Gestures specify *wrist* trajectories; the elbow position follows from
//! a standard two-link inverse-kinematics solve with a user-specific
//! swivel angle (some people gesture with the elbow tucked, others flared
//! — a visible biometric in side-view point clouds).

use gp_pointcloud::Vec3;

/// The pose of one arm in world coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArmPose {
    /// Shoulder joint.
    pub shoulder: Vec3,
    /// Elbow joint.
    pub elbow: Vec3,
    /// Wrist joint.
    pub wrist: Vec3,
    /// Fingertip (straight-hand extension of the forearm).
    pub hand_tip: Vec3,
}

/// The pose of the whole upper body in world coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodyPose {
    /// Torso reference point (chest centre).
    pub torso_center: Vec3,
    /// Head centre.
    pub head: Vec3,
    /// Right arm.
    pub right: ArmPose,
    /// Left arm.
    pub left: ArmPose,
}

/// Solves the elbow position for a two-link arm.
///
/// * `shoulder`, `wrist` — joint positions in world coordinates,
/// * `upper`, `fore` — segment lengths (m),
/// * `swivel` — rotation of the elbow around the shoulder→wrist axis
///   (radians); `0` places the elbow at its lowest (most natural) point.
///
/// If the wrist is out of reach it is pulled back onto the reachable
/// sphere; if it is degenerate (at the shoulder) the arm folds straight
/// down. The returned tuple is `(elbow, clamped_wrist)`.
pub fn solve_elbow(
    shoulder: Vec3,
    wrist: Vec3,
    upper: f64,
    fore: f64,
    swivel: f64,
) -> (Vec3, Vec3) {
    let max_reach = (upper + fore) * 0.999;
    let min_reach = (upper - fore).abs() * 1.001 + 1e-6;
    let mut delta = wrist - shoulder;
    let mut d = delta.norm();
    if d < 1e-9 {
        // Degenerate: fold the arm straight down.
        d = min_reach.max(1e-3);
        delta = Vec3::new(0.0, 0.0, -d);
    }
    let d_clamped = d.clamp(min_reach, max_reach);
    let dir = delta * (1.0 / d);
    let wrist_c = shoulder + dir * d_clamped;

    // Distance from the shoulder, along the axis, of the elbow circle.
    let a = (upper * upper - fore * fore + d_clamped * d_clamped) / (2.0 * d_clamped);
    let r2 = upper * upper - a * a;
    let r = r2.max(0.0).sqrt();

    // Basis perpendicular to the axis with `v` pointing as far "down" as
    // possible, so swivel = 0 drops the elbow naturally.
    let down = Vec3::new(0.0, 0.0, -1.0);
    let mut v = down - dir * down.dot(dir);
    if v.norm() < 1e-6 {
        // Axis is vertical; fall back to pointing toward the body rear.
        v = Vec3::new(0.0, 1.0, 0.0) - dir * Vec3::new(0.0, 1.0, 0.0).dot(dir);
    }
    let v = v.normalized();
    let w = dir.cross(v);
    let elbow = shoulder + dir * a + (v * swivel.cos() + w * swivel.sin()) * r;
    (elbow, wrist_c)
}

impl ArmPose {
    /// Builds an arm pose from a wrist target using [`solve_elbow`] and a
    /// straight-hand extension of length `hand`.
    pub fn from_wrist_target(
        shoulder: Vec3,
        wrist_target: Vec3,
        upper: f64,
        fore: f64,
        hand: f64,
        swivel: f64,
    ) -> ArmPose {
        let (elbow, wrist) = solve_elbow(shoulder, wrist_target, upper, fore, swivel);
        let fore_dir = (wrist - elbow).normalized();
        let hand_tip = wrist + fore_dir * hand;
        ArmPose {
            shoulder,
            elbow,
            wrist,
            hand_tip,
        }
    }

    /// Sum of segment-length errors against the given limb lengths; used
    /// by tests to check IK consistency.
    pub fn segment_error(&self, upper: f64, fore: f64) -> f64 {
        (self.shoulder.distance(self.elbow) - upper).abs()
            + (self.elbow.distance(self.wrist) - fore).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UPPER: f64 = 0.31;
    const FORE: f64 = 0.25;

    #[test]
    fn ik_preserves_segment_lengths() {
        let shoulder = Vec3::new(0.2, 2.0, 1.4);
        for target in [
            Vec3::new(0.2, 1.6, 1.4),
            Vec3::new(0.5, 2.0, 1.2),
            Vec3::new(0.2, 2.0, 0.9),
            Vec3::new(-0.1, 1.7, 1.6),
        ] {
            let pose = ArmPose::from_wrist_target(shoulder, target, UPPER, FORE, 0.18, 0.2);
            assert!(
                pose.segment_error(UPPER, FORE) < 1e-9,
                "segment error too large for target {target:?}"
            );
        }
    }

    #[test]
    fn reachable_wrist_is_hit_exactly() {
        let shoulder = Vec3::new(0.0, 0.0, 1.4);
        let target = Vec3::new(0.2, 0.3, 1.2); // well within reach
        let pose = ArmPose::from_wrist_target(shoulder, target, UPPER, FORE, 0.18, 0.0);
        assert!(pose.wrist.distance(target) < 1e-9);
    }

    #[test]
    fn unreachable_wrist_is_clamped_to_sphere() {
        let shoulder = Vec3::new(0.0, 0.0, 1.4);
        let target = Vec3::new(0.0, 5.0, 1.4); // far out of reach
        let pose = ArmPose::from_wrist_target(shoulder, target, UPPER, FORE, 0.18, 0.0);
        let reach = pose.wrist.distance(shoulder);
        assert!(reach <= UPPER + FORE + 1e-9);
        assert!(reach >= (UPPER + FORE) * 0.99);
        // Direction preserved.
        let dir = (pose.wrist - shoulder).normalized();
        assert!((dir.y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_swivel_drops_elbow() {
        let shoulder = Vec3::new(0.0, 0.0, 1.4);
        let target = Vec3::new(0.0, 0.4, 1.4); // horizontal reach forward
        let (elbow, _) = solve_elbow(shoulder, target, UPPER, FORE, 0.0);
        assert!(elbow.z < shoulder.z, "elbow should hang below the axis");
    }

    #[test]
    fn swivel_rotates_elbow() {
        let shoulder = Vec3::new(0.0, 0.0, 1.4);
        let target = Vec3::new(0.0, 0.4, 1.4);
        let (e0, _) = solve_elbow(shoulder, target, UPPER, FORE, 0.0);
        let (e1, _) = solve_elbow(shoulder, target, UPPER, FORE, 0.8);
        assert!(e0.distance(e1) > 0.01);
        // Both still satisfy the segment constraints.
        for e in [e0, e1] {
            assert!((shoulder.distance(e) - UPPER).abs() < 1e-9);
            assert!((target.distance(e) - FORE).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_target_at_shoulder() {
        let shoulder = Vec3::new(0.0, 0.0, 1.4);
        let (elbow, wrist) = solve_elbow(shoulder, shoulder, UPPER, FORE, 0.0);
        assert!((shoulder.distance(elbow) - UPPER).abs() < 1e-9);
        assert!((wrist.distance(elbow) - FORE).abs() < 1e-6);
    }

    #[test]
    fn hand_tip_extends_forearm() {
        let shoulder = Vec3::new(0.0, 0.0, 1.4);
        let target = Vec3::new(0.1, 0.35, 1.3);
        let hand = 0.18;
        let pose = ArmPose::from_wrist_target(shoulder, target, UPPER, FORE, hand, 0.0);
        assert!((pose.hand_tip.distance(pose.wrist) - hand).abs() < 1e-9);
        // Collinear with the forearm.
        let a = (pose.wrist - pose.elbow).normalized();
        let b = (pose.hand_tip - pose.wrist).normalized();
        assert!(a.distance(b) < 1e-9);
    }
}
