//! Human arm kinematics and gesture-trajectory synthesis.
//!
//! GesturePrint's identifiability signal is *behavioural biometrics
//! embedded in gesture motion*: arm geometry, motion speed, range of
//! motion, and unconscious habits (paper §III). This crate synthesises that
//! signal from first principles so the radar simulator in `gp-radar` can
//! reproduce the paper's experiments without human participants:
//!
//! * [`UserProfile`] — per-user biometric parameters (limb lengths drawn
//!   from height, preferred speed, range-of-motion scaling, tremor, timing
//!   skew, elbow swivel, rest posture) generated deterministically from a
//!   user id and seed,
//! * [`gestures`] — trajectory generators for the four gesture vocabularies
//!   used in the paper's evaluation: the 15-sign ASL set (self-collected
//!   dataset), Pantomime-style 21, mHomeGes-style 10, and mTransSee-style 5,
//! * [`skeleton`] — shoulder–elbow–wrist kinematic chain with a two-link
//!   inverse-kinematics solve for the elbow,
//! * [`scatter`] — converts body poses into radar scatterers (position,
//!   velocity, radar cross-section),
//! * [`performance`] — a timed performance: rest → gesture → rest, with
//!   per-repetition variation, yielding scatterer snapshots at any time.
//!
//! # Example
//!
//! ```
//! use gp_kinematics::gestures::{GestureSet, GestureId};
//! use gp_kinematics::{Performance, UserProfile};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let profile = UserProfile::generate(3, 42);
//! let mut rng = StdRng::seed_from_u64(7);
//! let perf = Performance::new(
//!     &profile,
//!     GestureSet::Asl15,
//!     GestureId(12), // 'push'
//!     1.2,           // distance from the radar (m)
//!     &mut rng,
//! );
//! let scatterers = perf.scatterers_at(perf.total_duration() * 0.5);
//! assert!(!scatterers.is_empty());
//! ```

pub mod gestures;
pub mod path;
pub mod performance;
pub mod profile;
pub mod scatter;
pub mod skeleton;

pub use performance::Performance;
pub use profile::UserProfile;
pub use scatter::Scatterer;
pub use skeleton::{ArmPose, BodyPose};
