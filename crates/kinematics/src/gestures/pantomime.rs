//! Pantomime-style vocabulary: 21 self-defined gestures — 9 easy
//! single-arm gestures and 12 bimanual complex gestures (paper §VI-A).
//!
//! The public Pantomime dataset does not publish trajectory definitions,
//! so these are representative mid-air gestures of matching arity and
//! complexity.

use super::GestureMotion;
use crate::path::{primitives, HandPath};
use gp_pointcloud::Vec3;

pub(super) fn motion(index: usize) -> GestureMotion {
    match index {
        // --- 9 easy single-arm gestures ----------------------------------
        0 => GestureMotion {
            name: "swipe left",
            right: primitives::swipe(Vec3::new(0.45, 0.55, 0.05), Vec3::new(-0.35, 0.55, 0.05)),
            left: None,
            base_duration: 2.3,
        },
        1 => GestureMotion {
            name: "swipe right",
            right: primitives::swipe(Vec3::new(-0.35, 0.55, 0.05), Vec3::new(0.45, 0.55, 0.05)),
            left: None,
            base_duration: 2.3,
        },
        2 => GestureMotion {
            name: "swipe up",
            right: primitives::swipe(Vec3::new(0.10, 0.58, -0.30), Vec3::new(0.10, 0.58, 0.38)),
            left: None,
            base_duration: 2.2,
        },
        3 => GestureMotion {
            name: "swipe down",
            right: primitives::swipe(Vec3::new(0.10, 0.58, 0.38), Vec3::new(0.10, 0.58, -0.30)),
            left: None,
            base_duration: 2.2,
        },
        4 => GestureMotion {
            name: "push forward",
            right: primitives::out_and_back(Vec3::new(0.12, 0.90, 0.04)),
            left: None,
            base_duration: 2.2,
        },
        5 => GestureMotion {
            name: "pull back",
            right: HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.25, 0.12, 0.85, 0.02),
                (0.60, 0.12, 0.30, -0.05),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            left: None,
            base_duration: 2.2,
        },
        6 => GestureMotion {
            name: "circle clockwise",
            right: primitives::frontal_circle(Vec3::new(0.10, 0.58, 0.08), 0.26, true),
            left: None,
            base_duration: 2.2,
        },
        7 => GestureMotion {
            name: "circle counter-clockwise",
            right: primitives::frontal_circle(Vec3::new(0.10, 0.58, 0.08), 0.26, false),
            left: None,
            base_duration: 2.2,
        },
        8 => GestureMotion {
            name: "wave",
            right: primitives::wave(Vec3::new(0.15, 0.55, 0.30), 0.28, 3),
            left: None,
            base_duration: 2.8,
        },
        // --- 12 bimanual complex gestures ---------------------------------
        9 => bimanual_symmetric(
            "lateral raise",
            HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.40, 0.70, 0.25, 0.05),
                (0.60, 0.70, 0.25, 0.05),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            2.4,
        ),
        10 => bimanual_symmetric(
            "frontal raise",
            HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.40, 0.15, 0.75, 0.30),
                (0.60, 0.15, 0.75, 0.30),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            2.4,
        ),
        11 => bimanual_symmetric(
            "both push",
            primitives::out_and_back(Vec3::new(0.20, 0.88, 0.02)),
            2.2,
        ),
        12 => bimanual_symmetric(
            "both pull",
            HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.25, 0.18, 0.85, 0.02),
                (0.60, 0.18, 0.28, -0.06),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            2.2,
        ),
        13 => bimanual_symmetric(
            "clap",
            HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.30, 0.35, 0.55, 0.00),
                (0.45, 0.04, 0.58, 0.00),
                (0.58, 0.30, 0.55, 0.00),
                (0.70, 0.04, 0.58, 0.00),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            2.6,
        ),
        14 => bimanual_symmetric(
            "open arms",
            HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.30, 0.08, 0.60, 0.02),
                (0.62, 0.62, 0.40, 0.04),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            2.3,
        ),
        15 => bimanual_symmetric(
            "close arms",
            HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.30, 0.62, 0.40, 0.04),
                (0.62, 0.08, 0.60, 0.02),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            2.3,
        ),
        16 => bimanual_symmetric(
            "double pat",
            primitives::pat(Vec3::new(0.28, 0.55, 0.02), Vec3::new(0.28, 0.55, -0.20), 2),
            2.7,
        ),
        17 => bimanual_symmetric(
            "lift",
            HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.30, 0.25, 0.55, -0.35),
                (0.62, 0.25, 0.55, 0.40),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            2.5,
        ),
        18 => bimanual_symmetric(
            "throw",
            HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.30, 0.20, 0.25, 0.35),
                (0.55, 0.25, 0.92, 0.10),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            2.1,
        ),
        19 => GestureMotion {
            name: "cross swing",
            // Arms swing in opposite phases across the body.
            right: primitives::wave(Vec3::new(0.10, 0.55, 0.05), 0.50, 2),
            left: Some(primitives::wave(Vec3::new(-0.10, 0.55, 0.05), 0.50, 2)),
            base_duration: 3.0,
        },
        20 => GestureMotion {
            name: "steering",
            // Hands hold an imaginary wheel and rotate it.
            right: primitives::frontal_circle(Vec3::new(0.0, 0.60, 0.05), 0.24, true),
            left: Some(primitives::frontal_circle(
                Vec3::new(0.0, 0.60, 0.05),
                0.24,
                true,
            )),
            base_duration: 2.4,
        },
        other => unreachable!("Pantomime-21 index out of range: {other}"),
    }
}

fn bimanual_symmetric(name: &'static str, right: HandPath, base_duration: f64) -> GestureMotion {
    let left = right.mirrored();
    GestureMotion {
        name,
        right,
        left: Some(left),
        base_duration,
    }
}
