//! mTransSee-style vocabulary: 5 self-defined arm motions (paper §VI-A),
//! single-arm, used across 13 anchor distances from 1.2 m to 4.8 m.

use super::GestureMotion;
use crate::path::{primitives, HandPath};
use gp_pointcloud::Vec3;

pub(super) fn motion(index: usize) -> GestureMotion {
    match index {
        0 => GestureMotion {
            name: "push",
            right: primitives::out_and_back(Vec3::new(0.12, 0.90, 0.03)),
            left: None,
            base_duration: 2.2,
        },
        1 => GestureMotion {
            name: "pull",
            right: HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.25, 0.14, 0.86, 0.03),
                (0.60, 0.14, 0.28, -0.06),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            left: None,
            base_duration: 2.2,
        },
        2 => GestureMotion {
            name: "left slide",
            right: primitives::swipe(Vec3::new(0.48, 0.55, 0.06), Vec3::new(-0.38, 0.55, 0.06)),
            left: None,
            base_duration: 2.2,
        },
        3 => GestureMotion {
            name: "right slide",
            right: primitives::swipe(Vec3::new(-0.38, 0.55, 0.06), Vec3::new(0.48, 0.55, 0.06)),
            left: None,
            base_duration: 2.2,
        },
        4 => GestureMotion {
            name: "lift",
            right: HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.32, 0.15, 0.55, -0.30),
                (0.60, 0.15, 0.55, 0.45),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            left: None,
            base_duration: 2.3,
        },
        other => unreachable!("mTransSee-5 index out of range: {other}"),
    }
}
