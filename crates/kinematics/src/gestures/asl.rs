//! The 15 ASL signs of the self-collected GesturePrint dataset
//! (paper Fig. 9): 'ahead', 'and', 'another', 'appoint', 'away',
//! 'connect', 'cross', 'every Sunday', 'face', 'finish', 'forget',
//! 'front', 'push', 'table', 'zigzag'.
//!
//! Trajectories are stylised reconstructions of the cited ASLLVD signs:
//! what matters for the reproduction is that each sign has a distinct,
//! repeatable spatio-temporal envelope mixing hand/forearm/elbow/arm
//! motion, with the paper's 9-single / 6-bimanual split.

use super::GestureMotion;
use crate::path::{primitives, HandPath};
use gp_pointcloud::Vec3;

pub(super) fn motion(index: usize) -> GestureMotion {
    match index {
        // --- single-arm signs -------------------------------------------
        0 => GestureMotion {
            name: "ahead",
            // Fist advances straight ahead from the chest.
            right: primitives::out_and_back(Vec3::new(0.08, 0.85, 0.02)),
            left: None,
            base_duration: 2.2,
        },
        1 => GestureMotion {
            name: "and",
            // Open hand sweeps right-to-left, closing toward the body.
            right: primitives::swipe(Vec3::new(0.42, 0.55, -0.04), Vec3::new(-0.12, 0.42, -0.08)),
            left: None,
            base_duration: 2.2,
        },
        2 => GestureMotion {
            name: "another",
            // Thumb-up hand arcs up and outward.
            right: HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.30, 0.12, 0.50, -0.22),
                (0.62, 0.45, 0.48, 0.16),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            left: None,
            base_duration: 2.2,
        },
        3 => GestureMotion {
            name: "appoint",
            // Index pokes forward then retracts sharply.
            right: HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.28, 0.10, 0.55, 0.05),
                (0.45, 0.10, 0.82, 0.06),
                (0.62, 0.12, 0.50, -0.04),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            left: None,
            base_duration: 2.3,
        },
        4 => GestureMotion {
            name: "away",
            // Hand flicks outward to the side and up.
            right: primitives::swipe(Vec3::new(0.18, 0.50, 0.00), Vec3::new(0.62, 0.42, 0.26)),
            left: None,
            base_duration: 2.2,
        },
        5 => GestureMotion {
            name: "connect",
            // Both hands travel inward and meet at the chest centre.
            right: HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.30, 0.38, 0.52, -0.10),
                (0.55, 0.06, 0.58, -0.05),
                (0.68, 0.06, 0.58, -0.05),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            left: Some(
                HandPath::from_tuples(&[
                    (0.0, 0.05, 0.12, -0.92),
                    (0.30, 0.38, 0.52, -0.10),
                    (0.55, 0.06, 0.58, -0.05),
                    (0.68, 0.06, 0.58, -0.05),
                    (1.0, 0.05, 0.12, -0.92),
                ])
                .mirrored(),
            ),
            base_duration: 2.4,
        },
        6 => GestureMotion {
            name: "cross",
            // Forearms cross in front of the torso.
            right: HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.32, 0.30, 0.52, 0.02),
                (0.60, -0.28, 0.55, -0.06),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            left: Some(
                HandPath::from_tuples(&[
                    (0.0, 0.05, 0.12, -0.92),
                    (0.32, 0.30, 0.52, -0.10),
                    (0.60, -0.28, 0.55, 0.06),
                    (1.0, 0.05, 0.12, -0.92),
                ])
                .mirrored(),
            ),
            base_duration: 2.3,
        },
        7 => GestureMotion {
            name: "every Sunday",
            // Both hands roll forward in parallel sagittal circles.
            right: primitives::sagittal_circle(Vec3::new(0.22, 0.55, 0.05), 0.24, false),
            left: Some(
                primitives::sagittal_circle(Vec3::new(0.22, 0.55, 0.05), 0.24, false).mirrored(),
            ),
            base_duration: 2.6,
        },
        8 => GestureMotion {
            name: "face",
            // Index circles in front of the face.
            right: primitives::frontal_circle(Vec3::new(0.04, 0.52, 0.38), 0.17, true),
            left: None,
            base_duration: 2.2,
        },
        9 => GestureMotion {
            name: "finish",
            // Both hands flip outward from the centre.
            right: HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.30, 0.12, 0.55, 0.06),
                (0.58, 0.48, 0.48, -0.06),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            left: Some(
                HandPath::from_tuples(&[
                    (0.0, 0.05, 0.12, -0.92),
                    (0.30, 0.12, 0.55, 0.06),
                    (0.58, 0.48, 0.48, -0.06),
                    (1.0, 0.05, 0.12, -0.92),
                ])
                .mirrored(),
            ),
            base_duration: 2.2,
        },
        10 => GestureMotion {
            name: "forget",
            // Flat hand wipes across the forehead.
            right: primitives::swipe(Vec3::new(-0.16, 0.42, 0.44), Vec3::new(0.32, 0.42, 0.40)),
            left: None,
            base_duration: 2.2,
        },
        11 => GestureMotion {
            name: "front",
            // Flat hand drops vertically in front of the body.
            right: HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.30, 0.06, 0.60, 0.30),
                (0.62, 0.06, 0.60, -0.26),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            left: None,
            base_duration: 2.3,
        },
        12 => GestureMotion {
            name: "push",
            // Both palms push forward together.
            right: HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.28, 0.20, 0.42, 0.02),
                (0.52, 0.22, 0.88, 0.02),
                (0.64, 0.22, 0.88, 0.02),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            left: Some(
                HandPath::from_tuples(&[
                    (0.0, 0.05, 0.12, -0.92),
                    (0.28, 0.20, 0.42, 0.02),
                    (0.52, 0.22, 0.88, 0.02),
                    (0.64, 0.22, 0.88, 0.02),
                    (1.0, 0.05, 0.12, -0.92),
                ])
                .mirrored(),
            ),
            base_duration: 2.2,
        },
        13 => GestureMotion {
            name: "table",
            // Horizontal forearms pat downward twice.
            right: primitives::pat(
                Vec3::new(0.26, 0.52, -0.02),
                Vec3::new(0.26, 0.52, -0.18),
                2,
            ),
            left: Some(
                primitives::pat(
                    Vec3::new(0.26, 0.52, -0.02),
                    Vec3::new(0.26, 0.52, -0.18),
                    2,
                )
                .mirrored(),
            ),
            base_duration: 2.8,
        },
        14 => GestureMotion {
            name: "zigzag",
            // Hand traces a descending zigzag.
            right: primitives::zigzag(Vec3::new(0.10, 0.58, 0.28), 0.42, 0.52, 4),
            left: None,
            base_duration: 2.8,
        },
        other => unreachable!("ASL-15 index out of range: {other}"),
    }
}
