//! mHomeGes-style vocabulary: 10 self-defined large arm movements
//! (paper §VI-A), all single-arm, designed for smart-home control at
//! living-room distances.

use super::GestureMotion;
use crate::path::{primitives, HandPath};
use gp_pointcloud::Vec3;

pub(super) fn motion(index: usize) -> GestureMotion {
    match index {
        0 => GestureMotion {
            name: "arm raise",
            right: HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.40, 0.12, 0.45, 0.72),
                (0.60, 0.12, 0.45, 0.72),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            left: None,
            base_duration: 2.2,
        },
        1 => GestureMotion {
            name: "arm drop",
            right: HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.28, 0.12, 0.45, 0.70),
                (0.62, 0.15, 0.50, -0.55),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            left: None,
            base_duration: 2.2,
        },
        2 => GestureMotion {
            name: "push forward",
            right: primitives::out_and_back(Vec3::new(0.15, 0.92, 0.05)),
            left: None,
            base_duration: 2.2,
        },
        3 => GestureMotion {
            name: "pull back",
            right: HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.25, 0.15, 0.88, 0.05),
                (0.62, 0.15, 0.25, -0.08),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            left: None,
            base_duration: 2.2,
        },
        4 => GestureMotion {
            name: "left swing",
            right: primitives::swipe(Vec3::new(0.55, 0.50, 0.10), Vec3::new(-0.45, 0.50, 0.10)),
            left: None,
            base_duration: 2.2,
        },
        5 => GestureMotion {
            name: "right swing",
            right: primitives::swipe(Vec3::new(-0.45, 0.50, 0.10), Vec3::new(0.55, 0.50, 0.10)),
            left: None,
            base_duration: 2.2,
        },
        6 => GestureMotion {
            name: "arm circle",
            right: primitives::frontal_circle(Vec3::new(0.12, 0.55, 0.10), 0.32, false),
            left: None,
            base_duration: 2.4,
        },
        7 => GestureMotion {
            name: "wave hand",
            right: primitives::wave(Vec3::new(0.18, 0.52, 0.35), 0.30, 3),
            left: None,
            base_duration: 2.8,
        },
        8 => GestureMotion {
            name: "forward punch",
            right: HandPath::from_tuples(&[
                (0.0, 0.05, 0.12, -0.92),
                (0.30, 0.15, 0.30, 0.00),
                (0.46, 0.15, 0.95, 0.04),
                (0.60, 0.15, 0.35, -0.02),
                (1.0, 0.05, 0.12, -0.92),
            ]),
            left: None,
            base_duration: 2.2,
        },
        9 => GestureMotion {
            name: "diagonal slash",
            right: primitives::swipe(Vec3::new(-0.30, 0.52, 0.45), Vec3::new(0.45, 0.55, -0.35)),
            left: None,
            base_duration: 2.2,
        },
        other => unreachable!("mHomeGes-10 index out of range: {other}"),
    }
}
