//! Gesture vocabularies for the four evaluation datasets.
//!
//! Each gesture is a [`GestureMotion`]: a named wrist trajectory for the
//! dominant hand, an optional second trajectory for bimanual gestures, and
//! a nominal duration. The four sets mirror the datasets in paper Tab. I:
//!
//! * [`GestureSet::Asl15`] — the self-collected GesturePrint dataset's 15
//!   ASL signs (paper Fig. 9; 9 single-arm + 6 bimanual),
//! * [`GestureSet::Pantomime21`] — Pantomime-style 21 self-defined
//!   gestures (9 easy single-arm + 12 bimanual complex),
//! * [`GestureSet::MHomeGes10`] — mHomeGes-style 10 large arm movements,
//! * [`GestureSet::MTransSee5`] — mTransSee-style 5 arm motions.

use crate::path::HandPath;

mod asl;
mod mhomeges;
mod mtranssee;
mod pantomime;

/// Index of a gesture within a [`GestureSet`] (also its class label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GestureId(pub usize);

/// One of the four gesture vocabularies used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GestureSet {
    /// 15 ASL signs (self-collected GesturePrint dataset).
    Asl15,
    /// 21 self-defined gestures (Pantomime dataset style).
    Pantomime21,
    /// 10 large arm movements (mHomeGes dataset style).
    MHomeGes10,
    /// 5 arm motions (mTransSee dataset style).
    MTransSee5,
}

/// A fully specified gesture trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct GestureMotion {
    /// Human-readable gesture name.
    pub name: &'static str,
    /// Dominant-hand wrist path.
    pub right: HandPath,
    /// Off-hand wrist path for bimanual gestures.
    pub left: Option<HandPath>,
    /// Nominal execution time in seconds at unit speed factor.
    pub base_duration: f64,
}

impl GestureMotion {
    /// Whether both arms move.
    pub fn is_bimanual(&self) -> bool {
        self.left.is_some()
    }
}

impl gp_codec::Encode for GestureSet {
    fn encode(&self) -> gp_codec::Value {
        gp_codec::Value::Str(self.tag().to_owned())
    }
}

impl gp_codec::Decode for GestureSet {
    fn decode(value: &gp_codec::Value) -> Result<Self, gp_codec::DecodeError> {
        let tag = value.as_str()?;
        GestureSet::ALL
            .into_iter()
            .find(|s| s.tag() == tag)
            .ok_or_else(|| gp_codec::DecodeError::new(format!("unknown gesture set '{tag}'")))
    }
}

impl GestureSet {
    /// Stable serialization tag (persisted in artifacts; do not rename).
    pub fn tag(self) -> &'static str {
        match self {
            GestureSet::Asl15 => "asl15",
            GestureSet::Pantomime21 => "pantomime21",
            GestureSet::MHomeGes10 => "mhomeges10",
            GestureSet::MTransSee5 => "mtranssee5",
        }
    }

    /// All four sets, in paper Tab. I order.
    pub const ALL: [GestureSet; 4] = [
        GestureSet::Asl15,
        GestureSet::Pantomime21,
        GestureSet::MHomeGes10,
        GestureSet::MTransSee5,
    ];

    /// Number of gestures in the vocabulary.
    pub fn gesture_count(self) -> usize {
        match self {
            GestureSet::Asl15 => 15,
            GestureSet::Pantomime21 => 21,
            GestureSet::MHomeGes10 => 10,
            GestureSet::MTransSee5 => 5,
        }
    }

    /// Display name of the set.
    pub fn name(self) -> &'static str {
        match self {
            GestureSet::Asl15 => "ASL-15 (GesturePrint)",
            GestureSet::Pantomime21 => "Pantomime-21",
            GestureSet::MHomeGes10 => "mHomeGes-10",
            GestureSet::MTransSee5 => "mTransSee-5",
        }
    }

    /// Iterates over all gesture ids in the set.
    pub fn gesture_ids(self) -> impl Iterator<Item = GestureId> {
        (0..self.gesture_count()).map(GestureId)
    }

    /// Name of gesture `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the set.
    pub fn gesture_name(self, id: GestureId) -> &'static str {
        self.motion(id).name
    }

    /// Builds the trajectory of gesture `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the set.
    pub fn motion(self, id: GestureId) -> GestureMotion {
        let n = self.gesture_count();
        assert!(id.0 < n, "{:?} has {n} gestures, got index {}", self, id.0);
        match self {
            GestureSet::Asl15 => asl::motion(id.0),
            GestureSet::Pantomime21 => pantomime::motion(id.0),
            GestureSet::MHomeGes10 => mhomeges::motion(id.0),
            GestureSet::MTransSee5 => mtranssee::motion(id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper_table1() {
        assert_eq!(GestureSet::Asl15.gesture_count(), 15);
        assert_eq!(GestureSet::Pantomime21.gesture_count(), 21);
        assert_eq!(GestureSet::MHomeGes10.gesture_count(), 10);
        assert_eq!(GestureSet::MTransSee5.gesture_count(), 5);
    }

    #[test]
    fn all_motions_construct() {
        for set in GestureSet::ALL {
            for id in set.gesture_ids() {
                let m = set.motion(id);
                assert!(!m.name.is_empty());
                assert!(m.base_duration > 0.5 && m.base_duration < 5.0, "{}", m.name);
            }
        }
    }

    #[test]
    fn names_unique_within_set() {
        for set in GestureSet::ALL {
            let mut names: Vec<&str> = set.gesture_ids().map(|id| set.gesture_name(id)).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before, "duplicate names in {set:?}");
        }
    }

    #[test]
    fn asl_has_nine_single_and_six_bimanual() {
        let set = GestureSet::Asl15;
        let bimanual = set
            .gesture_ids()
            .filter(|&id| set.motion(id).is_bimanual())
            .count();
        assert_eq!(bimanual, 6, "paper: 6 bimanual ASL gestures");
        assert_eq!(set.gesture_count() - bimanual, 9);
    }

    #[test]
    fn pantomime_has_nine_single_and_twelve_bimanual() {
        let set = GestureSet::Pantomime21;
        let bimanual = set
            .gesture_ids()
            .filter(|&id| set.motion(id).is_bimanual())
            .count();
        assert_eq!(bimanual, 12, "paper: 12 bimanual complex gestures");
    }

    #[test]
    fn motions_move_the_hand() {
        // Every gesture should produce a path with meaningful travel.
        for set in GestureSet::ALL {
            for id in set.gesture_ids() {
                let m = set.motion(id);
                assert!(
                    m.right.arc_length(100) > 0.3,
                    "{} barely moves ({})",
                    m.name,
                    m.right.arc_length(100)
                );
            }
        }
    }

    #[test]
    fn gestures_are_pairwise_distinct() {
        // Sample each ASL gesture at mid-motion and check trajectories are
        // not identical (gesture recognition would be ill-posed otherwise).
        let set = GestureSet::Asl15;
        let samples: Vec<_> = set
            .gesture_ids()
            .map(|id| {
                let m = set.motion(id);
                (0..10)
                    .map(|i| m.right.sample(0.25 + 0.05 * i as f64))
                    .collect::<Vec<_>>()
            })
            .collect();
        for i in 0..samples.len() {
            for j in i + 1..samples.len() {
                let max_gap = samples[i]
                    .iter()
                    .zip(&samples[j])
                    .map(|(a, b)| a.distance(*b))
                    .fold(0.0f64, f64::max);
                assert!(max_gap > 0.01, "gestures {i} and {j} look identical");
            }
        }
    }

    #[test]
    #[should_panic(expected = "gestures")]
    fn out_of_range_id_panics() {
        GestureSet::MTransSee5.motion(GestureId(5));
    }
}
